"""Rendering-equivalence validation across acceleration structures."""

from conftest import run_once

from repro.eval import experiments


def bench_quality_equivalence(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.quality_equivalence))
    for row in result.rows:
        assert row[1] == float("inf"), "exact primitives must match bitwise"
        assert row[2] > 24.0, "proxy family must render equivalent quality"
        assert row[4] == "yes", "GRTX-HW must be lossless"
