"""Ablations beyond the paper's figures: prefetcher and BVH width."""

from conftest import run_once

from repro.eval import experiments


def bench_ablation_prefetcher(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_prefetch))
    for row in result.rows:
        l1_on, l1_off = row[1], row[2]
        # The Section V-A prefetcher exists to raise L1 hit rates.
        assert l1_on >= l1_off


def bench_ablation_bvh_width(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_bvh_width))
    heights = [row[1] for row in result.rows]
    # Wider nodes give shallower trees.
    assert heights[0] >= heights[-1]
