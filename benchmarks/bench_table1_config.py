"""Table I: simulation configuration."""

from conftest import run_once

from repro.eval import experiments


def bench_table1_simulation_config(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.table1))
    assert result.rows
