"""Chaos-layer overhead gate + seeded fault drill (standalone script).

Three measurements, matching the ``repro.chaos`` subsystem's claims:

1. **Idle overhead** — the same serve flow timed with chaos fully
   disarmed and with a schedule armed whose entries can never fire
   (hit numbers no run reaches). Arming the layer turns every
   ``chaos.point`` probe from the disarmed fast path (one global read)
   into real schedule matching, so this is the *worst* case a
   production process pays for carrying the instrumentation; ``--check``
   gates it at ``--max-overhead-pct`` (default 1%). Both variants must
   produce bit-identical images (fatal regardless of ``--check``).
2. **Probe cost** — per-call nanoseconds of ``chaos.point`` disarmed
   and armed-but-never-matching, measured over a tight loop. The
   disarmed number is the one every always-on call site pays.
3. **Seeded drill** — :func:`repro.chaosdrill.run_drill` end to end:
   injected SIGKILL, SIGSTOP hang, corrupt cache entry, spool OSError,
   and a quarantined poison task, with bit-identical frames and
   ``repro doctor`` attribution. ``--check`` fails on any violated
   expectation.

Unlike the figure benchmarks in this directory (which run under
``pytest --benchmark-only``), this is a plain script::

    python benchmarks/bench_chaos.py --check --max-overhead-pct 1

Results are printed as tables and written machine-readable to
``benchmarks/results/BENCH_chaos.json`` (``--out`` overrides).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from bench_schema import write_bench_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Armed-but-inert schedule: every entry targets an invocation count no
#: benchmark run reaches, so the full matching path runs and nothing
#: fires. One entry per hot-path point the serve flow actually probes.
IDLE_SCHEDULE = (
    "serve.request=slow(60)@999999999;"
    "registry.disk_load=corrupt@999999999;"
    "registry.disk_save=oserror@999999999;"
    "flight.spool=oserror@999999999"
)


def _parse(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="chaos-layer overhead gate + seeded fault drill")
    parser.add_argument("--scene", default="train")
    parser.add_argument("--size", type=int, default=32,
                        help="frame width=height (default 32)")
    parser.add_argument("--scale", type=float, default=1 / 2000.0)
    parser.add_argument("--trials", type=int, default=5,
                        help="interleaved rounds per variant, best taken "
                             "(default 5)")
    parser.add_argument("--probe-calls", type=int, default=200_000,
                        help="chaos.point calls per probe-cost loop")
    parser.add_argument("--max-overhead-pct", type=float, default=1.0,
                        help="armed-idle slowdown allowed by --check")
    parser.add_argument("--drill-frames", type=int, default=5,
                        help="frames the seeded drill renders")
    parser.add_argument("--skip-drill", action="store_true",
                        help="measure overhead only (fast smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when overhead exceeds the gate "
                             "or the drill violates an expectation")
    parser.add_argument("--out",
                        default=str(RESULTS_DIR / "BENCH_chaos.json"),
                        help="machine-readable results path")
    return parser.parse_args(argv)


def measure_idle_overhead(args: argparse.Namespace) -> dict:
    """Best-of-``trials`` serve wall-clock, disarmed vs armed-idle.

    ``frame_cache_size=1`` with two alternating requests defeats the
    finished-frame cache, so every render walks the full request path
    (and its chaos probes); images must stay bit-identical.
    """
    import repro.chaos as chaos
    from repro.serve import RenderRequest, RenderServer, SceneRef

    requests = [
        RenderRequest(scene=SceneRef(name=args.scene, scale=args.scale,
                                     seed=index),
                      width=args.size, height=args.size)
        for index in range(2)
    ]

    def run(server) -> tuple[float, list[np.ndarray]]:
        t0 = time.perf_counter()
        images = [server.render(r).image for r in requests]
        return time.perf_counter() - t0, images

    chaos.reset()
    with RenderServer(workers=1, frame_cache_size=1) as server:
        reference = run(server)[1]  # warm-up doubles as reference

        def run_disarmed() -> tuple[float, list[np.ndarray]]:
            chaos.configure(spec="")
            return run(server)

        def run_armed_idle() -> tuple[float, list[np.ndarray]]:
            chaos.configure(spec=IDLE_SCHEDULE)
            return run(server)

        variants = [("disarmed", run_disarmed), ("armed", run_armed_idle)]
        best = {name: float("inf") for name, _ in variants}
        identical = True
        try:
            # Interleave variants (rotating order each round) so a load
            # burst on a shared host hits whichever variant is up, not
            # one variant's whole block.
            for round_index in range(args.trials):
                rot = round_index % len(variants)
                for name, runner in variants[rot:] + variants[:rot]:
                    t, images = runner()
                    best[name] = min(best[name], t)
                    identical &= all(np.array_equal(image, ref)
                                     for image, ref in zip(images, reference))
        finally:
            chaos.reset()

    overhead_pct = ((best["armed"] / best["disarmed"] - 1.0) * 100.0
                    if best["disarmed"] else 0.0)
    return {
        "frame": f"{args.size}x{args.size}",
        "renders_per_trial": len(requests),
        "trials": args.trials,
        "idle_schedule": IDLE_SCHEDULE,
        "t_disarmed_s": best["disarmed"],
        "t_armed_s": best["armed"],
        "overhead_pct": overhead_pct,
        "images_identical": identical,
    }


def measure_probe_cost(args: argparse.Namespace) -> dict:
    """Per-call nanoseconds of ``chaos.point``, disarmed and armed-idle."""
    import repro.chaos as chaos

    calls = max(1, args.probe_calls)

    def loop() -> float:
        point = chaos.point
        t0 = time.perf_counter()
        for _ in range(calls):
            point("serve.request")
        return (time.perf_counter() - t0) / calls * 1e9

    chaos.reset()
    try:
        chaos.configure(spec="")
        disarmed_ns = min(loop() for _ in range(3))
        chaos.configure(spec=IDLE_SCHEDULE)
        armed_ns = min(loop() for _ in range(3))
    finally:
        chaos.reset()
    return {
        "calls": calls,
        "disarmed_ns_per_call": disarmed_ns,
        "armed_idle_ns_per_call": armed_ns,
    }


def main(argv: list[str] | None = None) -> int:
    from repro.eval.report import format_table

    args = _parse(argv)
    failures: list[str] = []

    overhead = measure_idle_overhead(args)
    probes = measure_probe_cost(args)
    drill = None
    if not args.skip_drill:
        from repro.chaosdrill import run_drill

        drill = run_drill(scene=args.scene, size=args.size,
                          frames=args.drill_frames)

    print(format_table(
        f"chaos 1/3: idle overhead ({args.scene} {overhead['frame']}, "
        f"best of {args.trials} rounds)",
        ["disarmed (s/round)", "armed idle (s/round)", "overhead",
         "images identical"],
        [[f"{overhead['t_disarmed_s']:.3f}", f"{overhead['t_armed_s']:.3f}",
          f"{overhead['overhead_pct']:+.2f}%",
          "yes" if overhead["images_identical"] else "NO"]],
    ))
    print()
    print(format_table(
        f"chaos 2/3: probe cost ({probes['calls']} calls/loop, best of 3)",
        ["disarmed (ns/call)", "armed idle (ns/call)"],
        [[f"{probes['disarmed_ns_per_call']:.0f}",
          f"{probes['armed_idle_ns_per_call']:.0f}"]],
    ))
    print()
    if drill is None:
        print("chaos 3/3: seeded drill skipped (--skip-drill)")
    else:
        pool = drill["pool"]
        print(format_table(
            f"chaos 3/3: seeded drill ({drill['frames']} frames, "
            f"seed {drill['seed']}, {drill['elapsed_s']}s)",
            ["bit identical", "crashes", "deadline kills", "quarantined",
             "cache rejects", "faults attributed", "violations"],
            [["yes" if drill["bit_identical"] else "NO",
              pool.get("crashes"), pool.get("deadline_kills"),
              pool.get("quarantined"),
              drill["registry"].get("disk_rejects"),
              len(drill["attributed_faults"]),
              len(drill["failures"])]],
        ))

    # Pixel parity is fatal regardless of --check: instrumentation that
    # changes the image is broken, not slow.
    if not overhead["images_identical"]:
        print("FATAL: armed-idle render produced different pixels",
              file=sys.stderr)
        return 1
    if overhead["overhead_pct"] > args.max_overhead_pct:
        failures.append(
            f"armed-idle overhead {overhead['overhead_pct']:.2f}% exceeds "
            f"{args.max_overhead_pct:.2f}%")
    if drill is not None:
        failures.extend(f"drill: {violation}"
                        for violation in drill["failures"])

    sections = {"overhead": overhead, "probe_cost": probes,
                "failures": failures}
    if drill is not None:
        sections["drill"] = {
            "ok": drill["ok"],
            "elapsed_s": drill["elapsed_s"],
            "schedule": drill["schedule"],
            "seed": drill["seed"],
            "bit_identical": drill["bit_identical"],
            "pool": drill["pool"],
            "registry": drill["registry"],
            "attributed_faults": drill["attributed_faults"],
            "incident_reasons": drill["incident_reasons"],
        }
    out = write_bench_json(
        args.out, "chaos",
        config={"scene": args.scene, "size": args.size, "scale": args.scale,
                "trials": args.trials, "probe_calls": args.probe_calls,
                "max_overhead_pct": args.max_overhead_pct,
                "drill_frames": args.drill_frames,
                "skip_drill": args.skip_drill},
        sections=sections)
    print(f"\nresults: {out}")

    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if args.check else 0
    print("checks passed" if args.check else "checks not gated (--check off)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
