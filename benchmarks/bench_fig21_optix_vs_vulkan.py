"""Figure 21: OptiX-style payload k-buffer vs Vulkan-style SoA buffer."""

from conftest import run_once

from repro.eval import experiments


def bench_fig21_optix_vs_vulkan(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig21))
    for row in result.rows:
        ratio = row[3]
        # Paper: the two implementations perform similarly.
        assert 0.7 < ratio < 1.5
