"""Observability overhead + trace validity gate (standalone script).

Two measurements, matching the ``repro.obs`` subsystem's claims:

1. **Instrumentation overhead** — the same frame rendered repeatedly
   with tracing off vs tracing on (span events streamed to a real file),
   best-of-``--trials`` wall-clock each. The images must be
   bit-identical (fatal regardless of ``--check``: instrumentation may
   never change a pixel), and ``--check`` gates the slowdown at
   ``--max-overhead-pct`` (default 3%).
2. **Trace validity** — a small serve flow (tile-pooled
   :class:`~repro.serve.RenderServer`, repeated + fresh requests) run
   with tracing on. The resulting JSON-lines file must validate against
   the Chrome ``about:tracing`` event schema with zero errors, and must
   contain spans from every layer of one request: server admission,
   render, tile scheduling, the worker process, and the engine — worker
   spans prove the cross-process ride-back path works. The merged
   registry must hold worker-side tile timings for the same reason.

Unlike the figure benchmarks in this directory (which run under
``pytest --benchmark-only``), this is a plain script::

    python benchmarks/bench_obs.py --check --max-overhead-pct 3

Results are printed as tables and written machine-readable to
``benchmarks/results/BENCH_obs.json`` (``--out`` overrides).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _parse(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="observability overhead gate + trace validity")
    parser.add_argument("--scene", default="train")
    parser.add_argument("--size", type=int, default=32,
                        help="frame width=height (default 32)")
    parser.add_argument("--scale", type=float, default=1 / 2000.0)
    parser.add_argument("--proxy", default="tlas+sphere")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the serve-flow trace "
                             "(0 = auto, honors REPRO_WORKERS)")
    parser.add_argument("--frames", type=int, default=3,
                        help="renders per timed trial (default 3)")
    parser.add_argument("--trials", type=int, default=3,
                        help="timed trials per variant, best taken (default 3)")
    parser.add_argument("--max-overhead-pct", type=float, default=3.0,
                        help="tracing-on slowdown allowed by --check")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when overhead exceeds the gate "
                             "or the trace file fails validation")
    parser.add_argument("--out", default=str(RESULTS_DIR / "BENCH_obs.json"),
                        help="machine-readable results path")
    return parser.parse_args(argv)


def measure_overhead(args: argparse.Namespace, trace_path: str) -> dict:
    """Best-of-``trials`` render wall-clock, tracing off vs on."""
    from repro.eval.harness import build_structure_for
    from repro.gaussians import make_workload
    from repro.obs import start_tracing, stop_tracing
    from repro.render import GaussianRayTracer, default_camera_for
    from repro.rt import TraceConfig

    cloud = make_workload(args.scene, scale=args.scale)
    structure = build_structure_for(cloud, args.proxy)
    renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8))
    camera = default_camera_for(cloud, args.size, args.size)

    image_off = renderer.render(camera).image  # warm-up doubles as reference

    def timed() -> tuple[float, np.ndarray]:
        t0 = time.perf_counter()
        for _ in range(args.frames):
            image = renderer.render(camera).image
        return time.perf_counter() - t0, image

    best_off = best_on = float("inf")
    image_on = None
    # Interleave the variants so drift (thermal, competing load) hits
    # both sides instead of biasing one.
    for _ in range(args.trials):
        t, image = timed()
        best_off = min(best_off, t)
        assert np.array_equal(image, image_off)
        start_tracing(trace_path)
        try:
            t, image_on = timed()
        finally:
            stop_tracing()
        best_on = min(best_on, t)

    identical = bool(np.array_equal(image_on, image_off))
    overhead_pct = (best_on / best_off - 1.0) * 100.0 if best_off else 0.0
    return {
        "frame": f"{args.size}x{args.size}",
        "frames_per_trial": args.frames,
        "trials": args.trials,
        "t_off_s": best_off,
        "t_on_s": best_on,
        "overhead_pct": overhead_pct,
        "images_identical": identical,
    }


#: Spans one traced serve request must produce, layer by layer. The
#: worker.* names prove worker-process events rode back with results.
REQUIRED_SPANS = {"serve.request", "serve.render", "tiles.render"}
REQUIRED_POOLED_SPANS = {"worker.tile", "rt.scalar.trace"}


def trace_serve_flow(args: argparse.Namespace, trace_path: str) -> dict:
    """Run a pooled serve flow with tracing on; validate the file."""
    from repro.obs import get_registry, start_tracing, stop_tracing, validate_trace_file
    from repro.serve import RenderRequest, RenderServer

    tile = max(4, args.size // 2)
    request = RenderRequest(scene=args.scene, scale=args.scale,
                            width=args.size, height=args.size)
    start_tracing(trace_path)
    try:
        with RenderServer(workers=args.workers,
                          tile_size=(tile, tile)) as server:
            first = server.render(request)
            repeat = server.render(request)  # frame-cache hit
            fresh = server.render(RenderRequest(
                scene=args.scene, scale=args.scale,
                width=args.size, height=args.size, k=4))
    finally:
        stop_tracing()
    assert repeat.frame_cache_hit and not first.frame_cache_hit
    assert fresh.image.shape == first.image.shape

    report = validate_trace_file(trace_path)
    pooled = args.workers != 1
    required = REQUIRED_SPANS | (REQUIRED_POOLED_SPANS if pooled else set())
    missing = sorted(required - report["names"])
    worker_hist = get_registry().histogram("worker.tile_seconds")
    return {
        "workers": args.workers,
        "events": report["events"],
        "validation_errors": report["errors"][:10],
        "span_names": sorted(report["names"]),
        "missing_spans": missing,
        "worker_tile_samples": worker_hist.count if worker_hist else 0,
    }


def main(argv: list[str] | None = None) -> int:
    from repro.eval.report import format_table

    args = _parse(argv)
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        overhead = measure_overhead(args, str(Path(tmp) / "overhead.jsonl"))
        serve_trace_path = Path(tmp) / "serve_trace.jsonl"
        trace = trace_serve_flow(args, str(serve_trace_path))

    print(format_table(
        f"obs 1/2: instrumentation overhead ({args.scene} {overhead['frame']}, "
        f"{args.frames} frame(s)/trial, best of {args.trials})",
        ["tracing off (s)", "tracing on (s)", "overhead", "images identical"],
        [[f"{overhead['t_off_s']:.3f}", f"{overhead['t_on_s']:.3f}",
          f"{overhead['overhead_pct']:+.2f}%",
          "yes" if overhead["images_identical"] else "NO"]],
    ))
    print()
    print(format_table(
        f"obs 2/2: serve-flow trace validity ({trace['workers']} worker(s))",
        ["events", "validation errors", "missing spans",
         "worker tile samples"],
        [[trace["events"], len(trace["validation_errors"]),
          ", ".join(trace["missing_spans"]) or "none",
          trace["worker_tile_samples"]]],
    ))
    print()
    print(f"spans seen: {', '.join(trace['span_names'])}")

    # Pixel parity is fatal regardless of --check: instrumentation that
    # changes the image is broken, not slow.
    if not overhead["images_identical"]:
        print("FATAL: traced render produced different pixels", file=sys.stderr)
        return 1
    if trace["validation_errors"]:
        failures.append(
            f"trace file has {len(trace['validation_errors'])} invalid "
            f"event(s): {trace['validation_errors'][0]}")
    if trace["missing_spans"]:
        failures.append(f"missing spans: {', '.join(trace['missing_spans'])}")
    if args.workers != 1 and trace["worker_tile_samples"] < 1:
        failures.append("no worker-side tile timings reached the parent")
    if overhead["overhead_pct"] > args.max_overhead_pct:
        failures.append(
            f"overhead {overhead['overhead_pct']:.2f}% exceeds "
            f"{args.max_overhead_pct:.2f}%")

    out = Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps({
        "benchmark": "obs",
        "created_unix": time.time(),
        "config": {"scene": args.scene, "size": args.size,
                   "scale": args.scale, "proxy": args.proxy,
                   "workers": args.workers, "frames": args.frames,
                   "trials": args.trials,
                   "max_overhead_pct": args.max_overhead_pct},
        "overhead": overhead,
        "trace": trace,
        "failures": failures,
    }, indent=2, sort_keys=True) + "\n")
    print(f"\nresults: {out}")

    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if args.check else 0
    print("checks passed" if args.check else "checks not gated (--check off)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
