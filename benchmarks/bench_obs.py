"""Observability overhead + trace validity gate (standalone script).

Three measurements, matching the ``repro.obs`` subsystem's claims:

1. **Instrumentation overhead** — the same frame rendered repeatedly
   with everything off, with the always-on flight recorder, and with
   full tracing (span events streamed to a real file),
   best-of-``--trials`` wall-clock each. The images must be
   bit-identical (fatal regardless of ``--check``: instrumentation may
   never change a pixel), and ``--check`` gates both slowdowns at
   ``--max-overhead-pct`` (default 3%) — the flight recorder ships
   enabled, so its overhead bound is the one users actually pay.
2. **Trace validity** — a small serve flow (tile-pooled
   :class:`~repro.serve.RenderServer`, repeated + fresh requests) run
   with tracing on. The resulting JSON-lines file must validate against
   the Chrome ``about:tracing`` event schema with zero errors, and must
   contain spans from every layer of one request: server admission,
   render, tile scheduling, the worker process, and the engine — worker
   spans prove the cross-process ride-back path works. The merged
   registry must hold worker-side tile timings for the same reason.
3. **Forced-crash forensics drill** — a pool worker is SIGKILL'd
   mid-task; the drill asserts the incident bundle lands on disk,
   validates against the bundle schema, contains the dead worker's
   spooled checkpoint, and that ``repro doctor`` names the culprit.

Unlike the figure benchmarks in this directory (which run under
``pytest --benchmark-only``), this is a plain script::

    python benchmarks/bench_obs.py --check --max-overhead-pct 3

Results are printed as tables and written machine-readable to
``benchmarks/results/BENCH_obs.json`` (``--out`` overrides).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from bench_schema import write_bench_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _parse(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="observability overhead gate + trace validity")
    parser.add_argument("--scene", default="train")
    parser.add_argument("--size", type=int, default=32,
                        help="frame width=height (default 32)")
    parser.add_argument("--scale", type=float, default=1 / 2000.0)
    parser.add_argument("--proxy", default="tlas+sphere")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the serve-flow trace "
                             "(0 = auto, honors REPRO_WORKERS)")
    parser.add_argument("--frames", type=int, default=3,
                        help="renders per timed trial (default 3)")
    parser.add_argument("--trials", type=int, default=5,
                        help="interleaved rounds multiplier: trials*frames "
                             "single-frame rounds per variant, best taken "
                             "(default 5)")
    parser.add_argument("--max-overhead-pct", type=float, default=3.0,
                        help="tracing-on slowdown allowed by --check")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when overhead exceeds the gate "
                             "or the trace file fails validation")
    parser.add_argument("--out", default=str(RESULTS_DIR / "BENCH_obs.json"),
                        help="machine-readable results path")
    return parser.parse_args(argv)


def measure_overhead(args: argparse.Namespace, trace_path: str) -> dict:
    """Best-of-``trials`` render wall-clock across three variants:
    everything off, flight recorder on (the always-on default), and
    flight + tracing to a real file. Images must match bit-for-bit."""
    from repro.eval.harness import build_structure_for
    from repro.gaussians import make_workload
    from repro.obs import flight, start_tracing, stop_tracing
    from repro.render import GaussianRayTracer, default_camera_for
    from repro.rt import TraceConfig

    cloud = make_workload(args.scene, scale=args.scale)
    structure = build_structure_for(cloud, args.proxy)
    renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8))
    camera = default_camera_for(cloud, args.size, args.size)

    image_off = renderer.render(camera).image  # warm-up doubles as reference

    def timed() -> tuple[float, np.ndarray]:
        t0 = time.perf_counter()
        image = renderer.render(camera).image
        return time.perf_counter() - t0, image

    def run_off() -> tuple[float, np.ndarray]:
        flight.configure(enabled=False)
        return timed()

    def run_flight() -> tuple[float, np.ndarray]:
        flight.configure(enabled=True)
        return timed()

    def run_tracing() -> tuple[float, np.ndarray]:
        flight.configure(enabled=True)
        start_tracing(trace_path)
        try:
            return timed()
        finally:
            stop_tracing()

    variants = [("off", run_off), ("flight", run_flight),
                ("tracing", run_tracing)]
    best = {name: float("inf") for name, _ in variants}
    identical = True
    flight_was_enabled = flight.enabled()
    try:
        # Interleave single frames of all three variants (rotating the
        # order each round): a load burst on a shared host then hits
        # whichever variant is up, not one whole variant's block, and
        # the min only needs one burst-free window per variant.
        for round_index in range(args.trials * args.frames):
            rot = round_index % len(variants)
            for name, run in variants[rot:] + variants[:rot]:
                t, image = run()
                best[name] = min(best[name], t)
                identical &= bool(np.array_equal(image, image_off))
    finally:
        flight.configure(enabled=flight_was_enabled)

    def pct(variant: str) -> float:
        if not best["off"]:
            return 0.0
        return (best[variant] / best["off"] - 1.0) * 100.0

    return {
        "frame": f"{args.size}x{args.size}",
        "frames_per_trial": args.frames,
        "trials": args.trials,
        "t_off_s": best["off"],
        "t_flight_s": best["flight"],
        "t_on_s": best["tracing"],
        "flight_overhead_pct": pct("flight"),
        "overhead_pct": pct("tracing"),
        "images_identical": identical,
    }


def crash_drill(args: argparse.Namespace, flight_directory: str) -> dict:
    """Forced-crash forensics drill: SIGKILL a pool worker mid-task and
    verify the incident bundle + ``repro doctor`` path end to end."""
    import glob
    import os
    import signal

    from repro.obs import doctor, flight
    from repro.pool import WorkerPool

    flight.configure(directory=flight_directory, min_interval=0.0,
                     enabled=True)
    flight.reset()
    with WorkerPool(workers=2, start_method="fork") as pool:
        futures = [pool.submit(_drill_sleep, i) for i in range(4)]
        time.sleep(0.1)
        victim = next(p for p in pool.processes if p.is_alive())
        victim_pid = victim.pid
        os.kill(victim_pid, signal.SIGKILL)
        results = sorted(f.result(timeout=120) for f in futures)

    bundles = sorted(glob.glob(
        str(Path(flight_directory) / "incident-worker-crash-*.json")))
    drill = {
        "results_ok": results == [0, 1, 2, 3],
        "bundle": bundles[-1] if bundles else None,
        "bundle_valid": False,
        "checkpoint_pid_matches": False,
        "doctor_names_worker": False,
    }
    if not bundles:
        return drill
    bundle = doctor.load_bundle(bundles[-1])
    drill["bundle_valid"] = doctor.validate_bundle(bundle) == []
    wid = bundle["context"].get("worker")
    drill["checkpoint_pid_matches"] = any(
        c.get("worker_id") == wid and c.get("pid") == victim_pid
        for c in bundle.get("workers", []))
    report = doctor.render_report(bundle)
    drill["doctor_names_worker"] = (f"worker {wid}" in report
                                    and "SIGKILL" in report)
    return drill


def _drill_sleep(x, seconds=0.3):
    time.sleep(seconds)
    return x


#: Spans one traced serve request must produce, layer by layer. The
#: worker.* names prove worker-process events rode back with results.
REQUIRED_SPANS = {"serve.request", "serve.render", "tiles.render"}
REQUIRED_POOLED_SPANS = {"worker.tile", "rt.scalar.trace"}


def trace_serve_flow(args: argparse.Namespace, trace_path: str) -> dict:
    """Run a pooled serve flow with tracing on; validate the file."""
    from repro.obs import get_registry, start_tracing, stop_tracing, validate_trace_file
    from repro.serve import RenderRequest, RenderServer

    tile = max(4, args.size // 2)
    request = RenderRequest(scene=args.scene, scale=args.scale,
                            width=args.size, height=args.size)
    start_tracing(trace_path)
    try:
        with RenderServer(workers=args.workers,
                          tile_size=(tile, tile)) as server:
            first = server.render(request)
            repeat = server.render(request)  # frame-cache hit
            fresh = server.render(RenderRequest(
                scene=args.scene, scale=args.scale,
                width=args.size, height=args.size, k=4))
    finally:
        stop_tracing()
    assert repeat.frame_cache_hit and not first.frame_cache_hit
    assert fresh.image.shape == first.image.shape

    report = validate_trace_file(trace_path)
    pooled = args.workers != 1
    required = REQUIRED_SPANS | (REQUIRED_POOLED_SPANS if pooled else set())
    missing = sorted(required - report["names"])
    worker_hist = get_registry().histogram("worker.tile_seconds")
    return {
        "workers": args.workers,
        "events": report["events"],
        "validation_errors": report["errors"][:10],
        "span_names": sorted(report["names"]),
        "missing_spans": missing,
        "worker_tile_samples": worker_hist.count if worker_hist else 0,
    }


def main(argv: list[str] | None = None) -> int:
    from repro.eval.report import format_table

    args = _parse(argv)
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        overhead = measure_overhead(args, str(Path(tmp) / "overhead.jsonl"))
        serve_trace_path = Path(tmp) / "serve_trace.jsonl"
        trace = trace_serve_flow(args, str(serve_trace_path))
        drill = crash_drill(args, str(Path(tmp) / "flight"))

    print(format_table(
        f"obs 1/3: instrumentation overhead ({args.scene} {overhead['frame']}, "
        f"best frame of {args.trials}x{args.frames})",
        ["all off (s/frame)", "flight on (s/frame)", "flight overhead",
         "tracing on (s/frame)", "tracing overhead", "images identical"],
        [[f"{overhead['t_off_s']:.3f}", f"{overhead['t_flight_s']:.3f}",
          f"{overhead['flight_overhead_pct']:+.2f}%",
          f"{overhead['t_on_s']:.3f}",
          f"{overhead['overhead_pct']:+.2f}%",
          "yes" if overhead["images_identical"] else "NO"]],
    ))
    print()
    print(format_table(
        f"obs 2/3: serve-flow trace validity ({trace['workers']} worker(s))",
        ["events", "validation errors", "missing spans",
         "worker tile samples"],
        [[trace["events"], len(trace["validation_errors"]),
          ", ".join(trace["missing_spans"]) or "none",
          trace["worker_tile_samples"]]],
    ))
    print()
    print(format_table(
        "obs 3/3: forced-crash forensics drill (SIGKILL a pool worker)",
        ["tasks recovered", "bundle written", "bundle valid",
         "dead worker's checkpoint", "doctor names culprit"],
        [["yes" if drill["results_ok"] else "NO",
          "yes" if drill["bundle"] else "NO",
          "yes" if drill["bundle_valid"] else "NO",
          "yes" if drill["checkpoint_pid_matches"] else "NO",
          "yes" if drill["doctor_names_worker"] else "NO"]],
    ))
    print()
    print(f"spans seen: {', '.join(trace['span_names'])}")

    # Pixel parity is fatal regardless of --check: instrumentation that
    # changes the image is broken, not slow.
    if not overhead["images_identical"]:
        print("FATAL: traced render produced different pixels", file=sys.stderr)
        return 1
    if trace["validation_errors"]:
        failures.append(
            f"trace file has {len(trace['validation_errors'])} invalid "
            f"event(s): {trace['validation_errors'][0]}")
    if trace["missing_spans"]:
        failures.append(f"missing spans: {', '.join(trace['missing_spans'])}")
    if args.workers != 1 and trace["worker_tile_samples"] < 1:
        failures.append("no worker-side tile timings reached the parent")
    if overhead["overhead_pct"] > args.max_overhead_pct:
        failures.append(
            f"tracing overhead {overhead['overhead_pct']:.2f}% exceeds "
            f"{args.max_overhead_pct:.2f}%")
    if overhead["flight_overhead_pct"] > args.max_overhead_pct:
        failures.append(
            f"flight-recorder overhead {overhead['flight_overhead_pct']:.2f}%"
            f" exceeds {args.max_overhead_pct:.2f}%")
    for key, what in (("results_ok", "tasks not recovered after SIGKILL"),
                      ("bundle", "no incident bundle written"),
                      ("bundle_valid", "incident bundle failed validation"),
                      ("checkpoint_pid_matches",
                       "dead worker's checkpoint missing from bundle"),
                      ("doctor_names_worker",
                       "doctor report does not name the crashed worker")):
        if not drill[key]:
            failures.append(f"crash drill: {what}")

    out = write_bench_json(
        args.out, "obs",
        config={"scene": args.scene, "size": args.size,
                "scale": args.scale, "proxy": args.proxy,
                "workers": args.workers, "frames": args.frames,
                "trials": args.trials,
                "max_overhead_pct": args.max_overhead_pct},
        sections={"overhead": overhead, "trace": trace,
                  "crash_drill": dict(drill, bundle=bool(drill["bundle"])),
                  "failures": failures})
    print(f"\nresults: {out}")

    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if args.check else 0
    print("checks passed" if args.check else "checks not gated (--check off)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
