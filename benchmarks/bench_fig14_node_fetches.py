"""Figure 14: node fetches normalized to the baseline."""

from conftest import run_once

from repro.eval import experiments
from repro.eval.report import geomean


def bench_fig14_node_fetches(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig14))
    grtx = geomean([row[4] for row in result.rows])
    # Paper: 3.03x fewer fetches on average for GRTX.
    assert grtx < 0.6
