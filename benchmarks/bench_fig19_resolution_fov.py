"""Figure 19: resolution / FoV sensitivity."""

from conftest import run_once

from repro.eval import experiments


def bench_fig19_resolution_fov(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig19))
    for row in result.rows:
        grtx_hw, grtx = row[3], row[4]
        # Paper: GRTX-HW's benefit is coherence-independent.
        assert grtx_hw > 1.0
        assert grtx > 1.0
