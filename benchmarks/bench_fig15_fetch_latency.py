"""Figure 15: average node fetch latency normalized to the baseline."""

from conftest import run_once

from repro.eval import experiments
from repro.eval.report import geomean


def bench_fig15_fetch_latency(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig15))
    grtx = geomean([row[4] for row in result.rows])
    # Paper: GRTX lowers average fetch latency (1.77x).
    assert grtx < 1.0
