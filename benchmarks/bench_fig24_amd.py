"""Figure 24: AMD-like GPU — monolithic BVHs exceed the allocation cap."""

from conftest import run_once

from repro.eval import experiments


def bench_fig24_amd_cross_vendor(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig24))
    oom = sum(1 for row in result.rows for cell in row[1:] if isinstance(cell, str))
    # Paper: most monolithic configurations cannot allocate their BVHs.
    assert oom >= len(result.rows), "expected monolithic OOM markers"
    for row in result.rows:
        # Shared-BLAS configurations always run.
        assert not isinstance(row[3], str)
        assert not isinstance(row[4], str)
