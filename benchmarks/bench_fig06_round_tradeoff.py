"""Figure 6: multi-round vs single-round traversal; k sensitivity."""

from conftest import run_once

from repro.eval import experiments
from repro.eval.report import geomean


def bench_fig06a_single_vs_multi_round(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig06a))
    ratios = [row[3] for row in result.rows]
    # Paper: multi-round (with ERT between rounds) beats single-round.
    assert geomean(ratios) > 1.0


def bench_fig06b_k_sweep(benchmark, record_table):
    record_table(run_once(benchmark, experiments.fig06b))
