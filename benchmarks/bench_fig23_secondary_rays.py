"""Figure 23: GRTX-HW on primary vs secondary rays."""

from conftest import run_once

from repro.eval import experiments
from repro.eval.report import geomean


def bench_fig23_secondary_rays(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig23))
    primary = geomean([row[1] for row in result.rows])
    secondary = geomean([row[2] for row in result.rows if row[2] > 0])
    # Paper: similar speedups for both ray types (within-ray redundancy).
    assert primary > 1.0
    assert secondary > 1.0
