"""Figure 20: checkpoint + eviction buffer memory usage."""

from conftest import run_once

from repro.eval import experiments


def bench_fig20_buffer_memory(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig20))
    for row in result.rows:
        total_mb = row[5]
        # Paper: bounded (worst scene 97.68 MB on the 8-SM config).
        assert total_mb < 1024.0
