"""Figure 17: L2 cache accesses normalized to the baseline."""

from conftest import run_once

from repro.eval import experiments
from repro.eval.report import geomean


def bench_fig17_l2_accesses(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig17))
    grtx = geomean([row[4] for row in result.rows])
    # Paper: GRTX reduces L2 accesses 4.75x.
    assert grtx < 0.5
