"""Timing-pipeline benchmark: packet-order traces + vectorized replay.

Measures the paper campaign's measurement pipeline — fetch-trace
production plus :func:`repro.hwsim.replay` — on the fig13/14 trace
configurations (Baseline = monolithic 20-tri, GRTX-SW = tlas+20-tri),
comparing the pre-refactor path (scalar tracer + the per-event
:func:`repro.hwsim.replay_reference` loop) with the new one (packet
trace recorder + batched replay).  Unlike the figure benchmarks in this
directory (which run under ``pytest --benchmark-only``), this is a
plain script::

    python benchmarks/bench_replay.py [--size 20] [--check]

Three sections, written to ``benchmarks/results/BENCH_replay.json``:

* **trace parity** — per-ray fetch multisets plus the replayed
  ``node_fetches`` / ``l1_hits`` / ``l2_accesses`` / ``cycles`` must be
  identical between engines (always fatal on mismatch, ``--check`` or
  not: identical timing figures are the recorder's contract);
* **replay throughput** — events/s of the batched replay vs the golden
  reference loop on the same traces (the best config is gated by
  ``--min-replay-speedup``, default 3x: the bar the first-occurrence
  fast path clears on the CI scene; a config whose working set exceeds
  the modeled L1's associativity replays on the exact sequential
  fallback instead and only gains modestly);
* **end-to-end** — trace+replay wall-clock, old path vs new path, per
  config and total (gated by ``--min-e2e-speedup``, default 1.3x
  overall; the recorded ratios are the honest measurement — the
  two-level GRTX-SW config lands ~3-4x on the CI scene while the
  monolithic baseline hovers near parity, its traversal being exactly
  the dense-geometry case the scalar tracer's inline hot loops were
  tuned for).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_schema import write_bench_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Replayed aggregates that must match between engines (the fig14-17
#: quantities plus the headline cycle count).
PARITY_FIELDS = ("node_fetches", "merged_requests", "l1_accesses",
                 "l1_hits", "l2_accesses", "dram_accesses", "prefetches",
                 "cycles", "fetch_latency_sum")

CONFIGS = (("Baseline", "20-tri"), ("GRTX-SW", "tlas+20-tri"))


def _parse(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="trace recording + replay: old pipeline vs new")
    parser.add_argument("--scene", default="train")
    parser.add_argument("--size", type=int, default=20,
                        help="image width=height (default 20)")
    parser.add_argument("--scale", type=float, default=1 / 2000.0)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--replay-reps", type=int, default=3,
                        help="replay timing repetitions (min is reported)")
    parser.add_argument("--min-replay-speedup", type=float, default=3.0,
                        help="batched-vs-reference replay bar for --check")
    parser.add_argument("--min-e2e-speedup", type=float, default=1.3,
                        help="overall trace+replay bar for --check")
    parser.add_argument("--check", action="store_true",
                        help="gate on the speed bars (trace/replay parity "
                             "failures exit non-zero regardless)")
    return parser.parse_args(argv)


def _trace_multisets(traces):
    return sorted(tuple(sorted(t.fetch_multiset().items())) for t in traces)


def run_config(cloud, structure, camera, k: int, reps: int) -> dict:
    """Measure one configuration end to end on both pipelines."""
    from repro.hwsim import GpuConfig, replay, replay_reference
    from repro.render import GaussianRayTracer
    from repro.rt import TraceConfig

    config = TraceConfig(k=k)
    gpu = GpuConfig.rtx_like()

    t0 = time.perf_counter()
    scalar = GaussianRayTracer(cloud, structure, config,
                               engine="scalar").render(
        camera, keep_traces=True)
    t_scalar_trace = time.perf_counter() - t0

    t0 = time.perf_counter()
    packet = GaussianRayTracer(cloud, structure, config,
                               engine="packet").render(
        camera, keep_traces=True)
    t_packet_trace = time.perf_counter() - t0

    t0 = time.perf_counter()
    plain = GaussianRayTracer(cloud, structure, config,
                              engine="packet").render(
        camera, keep_traces=False)
    t_packet_plain = time.perf_counter() - t0
    del plain

    n_events = sum(r.n_fetches for t in scalar.traces for r in t.rounds)

    # Replay throughput: batched vs the golden reference loop.
    ref_times, new_times = [], []
    for _ in range(max(reps, 1)):
        t0 = time.perf_counter()
        ref_report = replay_reference(scalar.traces, gpu)
        ref_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        new_report = replay(packet.traces, gpu)
        new_times.append(time.perf_counter() - t0)
    t_ref_replay = min(ref_times)
    t_new_replay = min(new_times)

    parity = {
        "multisets": _trace_multisets(scalar.traces)
                     == _trace_multisets(packet.traces),
        "stats": scalar.stats == packet.stats,
    }
    for field in PARITY_FIELDS:
        parity[field] = getattr(ref_report, field) == getattr(
            new_report, field)

    old_total = t_scalar_trace + t_ref_replay
    new_total = t_packet_trace + t_new_replay
    return {
        "n_events": n_events,
        "scalar_trace_s": t_scalar_trace,
        "packet_trace_s": t_packet_trace,
        "packet_plain_s": t_packet_plain,
        "record_overhead": t_packet_trace / t_packet_plain,
        "trace_speedup": t_scalar_trace / t_packet_trace,
        "ref_replay_s": t_ref_replay,
        "new_replay_s": t_new_replay,
        "replay_speedup": t_ref_replay / t_new_replay,
        "replay_events_per_s": n_events / t_new_replay,
        "old_total_s": old_total,
        "new_total_s": new_total,
        "e2e_speedup": old_total / new_total,
        "parity": parity,
    }


def main(argv: list[str] | None = None) -> int:
    args = _parse(argv)
    from repro.eval.harness import build_structure_for
    from repro.eval.report import format_table
    from repro.gaussians import make_workload
    from repro.render import default_camera_for

    cloud = make_workload(args.scene, scale=args.scale)
    camera = default_camera_for(cloud, args.size, args.size)

    rows = []
    measurements = {}
    for name, proxy in CONFIGS:
        structure = build_structure_for(cloud, proxy)
        m = run_config(cloud, structure, camera, args.k, args.replay_reps)
        measurements[name] = m
        rows.append([
            name,
            f"{m['n_events']}",
            f"{m['trace_speedup']:.2f}x",
            f"{m['record_overhead']:.1f}x",
            f"{m['replay_speedup']:.2f}x",
            f"{m['replay_events_per_s']:,.0f}",
            f"{m['e2e_speedup']:.2f}x",
            "ok" if all(m["parity"].values()) else "MISMATCH",
        ])

    old_total = sum(m["old_total_s"] for m in measurements.values())
    new_total = sum(m["new_total_s"] for m in measurements.values())
    total_e2e = old_total / new_total
    # The replay bar applies to the best config: the monolithic
    # baseline's big working set can exceed the modeled L1's
    # associativity, dropping its replay onto the exact sequential
    # fallback (a modest win); the fast first-occurrence path (the
    # two-level config here) is what the >=3x vectorization bar gates.
    replay_speedup = max(m["replay_speedup"] for m in measurements.values())
    rows.append(["TOTAL", "", "", "", "", "", f"{total_e2e:.2f}x", ""])

    report = format_table(
        f"trace+replay pipeline: {args.scene} {args.size}x{args.size} "
        f"k={args.k} ({len(cloud)} gaussians)",
        ["config", "events", "trace speedup", "record cost",
         "replay speedup", "replay ev/s", "e2e speedup", "parity"],
        rows,
        notes="old = scalar trace + reference replay; "
              "new = packet recorder + batched replay",
    )
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "replay_pipeline.txt").write_text(report + "\n")
    write_bench_json(
        RESULTS_DIR / "BENCH_replay.json", "replay",
        config={"scene": args.scene, "size": args.size,
                "scale": args.scale, "k": args.k,
                "replay_reps": args.replay_reps,
                "n_gaussians": len(cloud)},
        sections={"configs": measurements,
                  "campaign": {"old_total_s": old_total,
                               "new_total_s": new_total,
                               "e2e_speedup": total_e2e}})

    failures = []
    for name, m in measurements.items():
        bad = [k for k, ok in m["parity"].items() if not ok]
        if bad:
            failures.append(f"{name}: trace/replay parity mismatch on {bad}")
    if args.check:
        if replay_speedup < args.min_replay_speedup:
            failures.append(
                f"best-config replay speedup {replay_speedup:.2f}x below "
                f"{args.min_replay_speedup}x")
        if total_e2e < args.min_e2e_speedup:
            failures.append(
                f"end-to-end speedup {total_e2e:.2f}x below "
                f"{args.min_e2e_speedup}x")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
