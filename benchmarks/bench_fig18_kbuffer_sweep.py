"""Figure 18: GRTX sensitivity to the k-buffer size."""

from conftest import run_once

from repro.eval import experiments
from repro.eval.report import geomean


def bench_fig18_k_sensitivity(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig18))
    k_cols = result.columns[1:]
    means = {col: geomean([row[i + 1] for row in result.rows])
             for i, col in enumerate(k_cols)}
    # Paper: k=8 is the sweet spot; very large k loses ERT granularity.
    assert means["k=8"] >= means["k=64"]
