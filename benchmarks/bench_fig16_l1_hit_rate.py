"""Figure 16: L1 hit rate for node fetches."""

from conftest import run_once

from repro.eval import experiments


def bench_fig16_l1_hit_rate(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig16))
    for row in result.rows:
        baseline, grtx_sw = row[1], row[2]
        # Paper: GRTX-SW exceeds 70% on every scene and beats baseline.
        assert grtx_sw > 0.70
        assert grtx_sw > baseline - 0.02
