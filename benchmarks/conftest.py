"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper by calling
the corresponding function in :mod:`repro.eval.experiments`. Renders are
cached inside :mod:`repro.eval.harness`, so figures sharing configurations
(e.g. Figures 13-17 all use the same four end-to-end runs) pay for them
once per session.

Each benchmark writes its reproduced table to ``benchmarks/results/`` and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` shows the full
paper reproduction inline.

Scale knobs (see EXPERIMENTS.md): ``GRTX_BENCH_SCALE`` (default 1/400 of
the paper's Gaussian counts) and ``GRTX_BENCH_RES`` (default 20x20 rays;
the paper renders 128x128 on a cycle-level C++ simulator — pure Python
needs a smaller frame for tractable runtimes).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Persist and print an ExperimentResult's table."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(result.table + "\n")
        print("\n" + result.table)
        return result

    return _record


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are full simulator campaigns (seconds to minutes);
    statistical repetition would multiply the suite runtime for no
    insight, so every benchmark uses a single round.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
