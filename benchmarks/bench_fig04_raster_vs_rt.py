"""Figure 4: motivation — rasterization vs ray tracing, stage isolation."""

from conftest import run_once

from repro.eval import experiments


def bench_fig04a_raster_vs_raytracing(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig04a))
    slowdown = result.rows[-1][3]
    # Paper: ray tracing ~3.04x slower than rasterization on average.
    assert slowdown > 1.2, "ray tracing should be slower than rasterization"


def bench_fig04b_stage_isolation(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig04b))
    for row in result.rows:
        traversal, with_sort, with_blend = row[1], row[2], row[3]
        # Paper: traversal dominates; sorting and blending are marginal.
        assert traversal > 0.5 * with_blend
        assert with_blend >= with_sort >= traversal
