"""Wavefront-engine benchmark: parity vs scalar, speed vs packet.

Renders the same frame with all three engines and checks the wavefront
engine's standing contract on every run:

* images match the scalar golden within ``--tolerance`` (default 1e-9)
  per channel, and the parity-matched functional counters (``n_rays``,
  ``blended_total``, ``rays_terminated_early``) agree exactly —
  violations exit non-zero whether or not ``--check`` is given;
* the per-phase ``rt.phase.{bin,traversal,intersect,blend}`` histograms
  all received samples (the phase breakdown is part of the engine's
  observability surface, so a refactor that silently drops a span fails
  the benchmark);
* with ``--check``, the wavefront engine must beat the packet engine by
  ``--min-speedup`` (default 2x) — the CI gate.

Like ``bench_packet_vs_scalar`` this is a plain script::

    python benchmarks/bench_wavefront.py [--size 64] [--check]

``--structure`` accepts both structure families.  Results go to
``benchmarks/results/wavefront_vs_packet.txt`` plus a machine-readable
``BENCH_wavefront.json`` (``repro.bench/v1``, headline
``summary.multiround.speedup_vs_packet``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from bench_schema import write_bench_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Functional counters the wavefront engine must reproduce exactly.
PARITY_COUNTERS = ("n_rays", "blended_total", "rays_terminated_early")

#: Per-phase histograms the engine must populate while tracing.
PHASE_METRICS = ("rt.phase.bin", "rt.phase.traversal",
                 "rt.phase.intersect", "rt.phase.blend")


def _parse(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="wavefront engine: parity vs scalar, speed vs packet")
    parser.add_argument("--scene", default="train")
    parser.add_argument("--size", type=int, default=64,
                        help="image width=height (default 64)")
    parser.add_argument("--scale", type=float, default=1 / 2000.0)
    parser.add_argument("--structure", "--proxy", dest="structure",
                        default="tlas+sphere",
                        choices=["20-tri", "80-tri", "custom",
                                 "tlas+sphere", "tlas+20-tri", "tlas+80-tri"],
                        help="acceleration structure (--proxy is a "
                             "backward-compatible alias)")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--modes", default="multiround,singleround",
                        help="comma-separated trace modes to compare")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="max per-channel image difference vs scalar")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="wavefront-over-packet speedup required by "
                             "--check")
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved packet/wavefront repetitions; the "
                             "per-engine minimum is reported (default 3 — "
                             "single measurements are hostage to scheduler "
                             "noise)")
    parser.add_argument("--check", action="store_true",
                        help="also gate on speed: exit non-zero when the "
                             "wavefront engine is below --min-speedup over "
                             "packet (parity failures exit non-zero "
                             "regardless)")
    return parser.parse_args(argv)


def run_mode(cloud, structure, camera, mode: str, k: int,
             reps: int = 3) -> dict:
    """Render one mode with all three engines and measure them.

    The scalar golden renders once (it is only the parity reference);
    packet and wavefront render ``reps`` times *interleaved* and the
    per-engine minimum counts, so a scheduler hiccup hurts one
    repetition instead of one engine.
    """
    from repro.render import GaussianRayTracer
    from repro.rt import TraceConfig

    config = TraceConfig(k=k, mode=mode)
    n_rays = camera.width * camera.height
    renderers = {
        engine: GaussianRayTracer(cloud, structure, config, engine=engine)
        for engine in ("scalar", "packet", "wavefront")
    }
    for engine, renderer in renderers.items():
        assert renderer.engine_active == engine
    results = {}
    timings = {}
    t0 = time.perf_counter()
    results["scalar"] = renderers["scalar"].render(camera, keep_traces=False)
    timings["scalar"] = time.perf_counter() - t0
    best = {"packet": float("inf"), "wavefront": float("inf")}
    for _ in range(max(1, reps)):
        for engine in ("packet", "wavefront"):
            t0 = time.perf_counter()
            results[engine] = renderers[engine].render(camera,
                                                       keep_traces=False)
            best[engine] = min(best[engine], time.perf_counter() - t0)
    timings.update(best)
    scalar, wavefront = results["scalar"], results["wavefront"]
    counters_ok = all(
        getattr(scalar.stats, name) == getattr(wavefront.stats, name)
        for name in PARITY_COUNTERS
    )
    return {
        "mode": mode,
        "scalar_s": timings["scalar"],
        "packet_s": timings["packet"],
        "wavefront_s": timings["wavefront"],
        "scalar_rps": n_rays / timings["scalar"],
        "packet_rps": n_rays / timings["packet"],
        "wavefront_rps": n_rays / timings["wavefront"],
        "speedup_vs_scalar": timings["scalar"] / timings["wavefront"],
        "speedup_vs_packet": timings["packet"] / timings["wavefront"],
        "max_diff": float(np.abs(scalar.image - wavefront.image).max()),
        "counters_ok": counters_ok,
    }


def missing_phase_metrics() -> list[str]:
    """Phase histograms that received no samples during the run."""
    from repro.obs import get_registry

    registry = get_registry()
    missing = []
    for name in PHASE_METRICS:
        histogram = registry.histogram(name)
        if histogram is None or histogram.count == 0:
            missing.append(name)
    return missing


def main(argv: list[str] | None = None) -> int:
    args = _parse(argv)
    from repro.eval.harness import build_structure_for
    from repro.eval.report import format_table
    from repro.gaussians import make_workload
    from repro.render import default_camera_for

    cloud = make_workload(args.scene, scale=args.scale)
    structure = build_structure_for(cloud, args.structure)
    camera = default_camera_for(cloud, args.size, args.size)

    rows = []
    measurements = []
    for mode in args.modes.split(","):
        m = run_mode(cloud, structure, camera, mode.strip(), args.k,
                     reps=args.reps)
        measurements.append(m)
        rows.append([
            m["mode"],
            f"{m['scalar_rps']:.0f}",
            f"{m['packet_rps']:.0f}",
            f"{m['wavefront_rps']:.0f}",
            f"{m['speedup_vs_packet']:.2f}x",
            f"{m['max_diff']:.2e}",
            "exact" if m["counters_ok"] else "MISMATCH",
        ])

    report = format_table(
        f"wavefront vs packet vs scalar: {args.scene} "
        f"{args.size}x{args.size} {args.structure} k={args.k} "
        f"({len(cloud)} gaussians)",
        ["mode", "scalar rays/s", "packet rays/s", "wavefront rays/s",
         "wf/packet", "max |diff|", "counters"],
        rows,
    )
    print(report)
    missing = missing_phase_metrics()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "wavefront_vs_packet.txt").write_text(report + "\n")
    write_bench_json(
        RESULTS_DIR / "BENCH_wavefront.json", "wavefront",
        config={"scene": args.scene, "size": args.size,
                "scale": args.scale, "structure": args.structure,
                "k": args.k, "n_gaussians": len(cloud)},
        sections={
            "measurements": measurements,
            "phases_observed": {name: name not in missing
                                for name in PHASE_METRICS},
            # Mode-keyed headline numbers (see bench_packet_vs_scalar:
            # positional measurement paths break when --modes reorders).
            "summary": {
                m["mode"]: {
                    "speedup_vs_packet": m["speedup_vs_packet"],
                    "speedup_vs_scalar": m["speedup_vs_scalar"],
                    "max_diff": m["max_diff"],
                    "counters_ok": m["counters_ok"],
                }
                for m in measurements
            },
        })

    failures = []
    for m in measurements:
        if m["max_diff"] > args.tolerance:
            failures.append(
                f"{m['mode']}: image diff {m['max_diff']:.3e} exceeds "
                f"{args.tolerance:.0e}")
        if not m["counters_ok"]:
            failures.append(f"{m['mode']}: functional counters diverge")
        if args.check and m["speedup_vs_packet"] < args.min_speedup:
            failures.append(
                f"{m['mode']}: wavefront speedup over packet "
                f"{m['speedup_vs_packet']:.2f}x below "
                f"{args.min_speedup:.1f}x")
    for name in missing:
        failures.append(f"phase histogram {name} received no samples")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
