"""Packet-vs-scalar engine benchmark (standalone script).

Renders the same frame with the scalar per-ray tracer and the vectorized
ray-packet engine, reports rays/s for both, and checks the parity
contract: packet images must match scalar images within ``--tolerance``
(default 1e-9) per channel, and the parity-matched functional counters
(``n_rays``, ``blended_total``, ``rays_terminated_early``) must agree
exactly.  Unlike the figure benchmarks in this directory (which run
under ``pytest --benchmark-only``), this is a plain script::

    python benchmarks/bench_packet_vs_scalar.py [--size 64] [--check]

Parity failures always exit non-zero (parity is the engine's contract,
report run or not); ``--check`` additionally gates on speed, failing
when the packet speedup is below ``--min-speedup`` (default 3x, the
acceptance bar on the default 64x64 scene; CI runs a tiny scene with
``--min-speedup 2``).  ``--structure`` selects the acceleration
structure: the monolithic proxies *or* the two-level ``tlas+*``
structures the packet engine now covers end-to-end.  Results go to
``benchmarks/results/packet_vs_scalar_{tlas,mono}.txt`` plus a
machine-readable ``BENCH_packet_tlas.json`` (two-level runs) /
``BENCH_packet_mono.json`` (monolithic runs).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from bench_schema import write_bench_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Functional counters the packet engine must reproduce exactly.
PARITY_COUNTERS = ("n_rays", "blended_total", "rays_terminated_early")


def _parse(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="rays/s and image parity: packet vs scalar engine")
    parser.add_argument("--scene", default="train")
    parser.add_argument("--size", type=int, default=64,
                        help="image width=height (default 64)")
    parser.add_argument("--scale", type=float, default=1 / 2000.0)
    parser.add_argument("--structure", "--proxy", dest="structure",
                        default="20-tri",
                        choices=["20-tri", "80-tri", "custom",
                                 "tlas+sphere", "tlas+20-tri", "tlas+80-tri"],
                        help="acceleration structure: monolithic proxies or "
                             "the two-level tlas+* structures (--proxy is a "
                             "backward-compatible alias)")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--modes", default="multiround,singleround",
                        help="comma-separated trace modes to compare")
    parser.add_argument("--tolerance", type=float, default=1e-9,
                        help="max per-channel image difference allowed")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="packet speedup required by --check")
    parser.add_argument("--check", action="store_true",
                        help="also gate on speed: exit non-zero when the "
                             "speedup is below --min-speedup (parity "
                             "failures exit non-zero regardless)")
    return parser.parse_args(argv)


def run_mode(cloud, structure, camera, mode: str, k: int) -> dict:
    """Render one (mode, engine) pair of frames and measure both."""
    from repro.render import GaussianRayTracer
    from repro.rt import TraceConfig

    config = TraceConfig(k=k, mode=mode)
    n_rays = camera.width * camera.height
    timings = {}
    results = {}
    for engine in ("scalar", "packet"):
        renderer = GaussianRayTracer(cloud, structure, config, engine=engine)
        assert renderer.engine_active == engine
        t0 = time.perf_counter()
        results[engine] = renderer.render(camera, keep_traces=False)
        timings[engine] = time.perf_counter() - t0
    scalar, packet = results["scalar"], results["packet"]
    counters_ok = all(
        getattr(scalar.stats, name) == getattr(packet.stats, name)
        for name in PARITY_COUNTERS
    )
    return {
        "mode": mode,
        "scalar_s": timings["scalar"],
        "packet_s": timings["packet"],
        "scalar_rps": n_rays / timings["scalar"],
        "packet_rps": n_rays / timings["packet"],
        "speedup": timings["scalar"] / timings["packet"],
        "max_diff": float(np.abs(scalar.image - packet.image).max()),
        "counters_ok": counters_ok,
    }


def main(argv: list[str] | None = None) -> int:
    args = _parse(argv)
    from repro.eval.harness import build_structure_for
    from repro.eval.report import format_table
    from repro.gaussians import make_workload
    from repro.render import default_camera_for

    cloud = make_workload(args.scene, scale=args.scale)
    structure = build_structure_for(cloud, args.structure)
    camera = default_camera_for(cloud, args.size, args.size)

    rows = []
    measurements = []
    for mode in args.modes.split(","):
        m = run_mode(cloud, structure, camera, mode.strip(), args.k)
        measurements.append(m)
        rows.append([
            m["mode"],
            f"{m['scalar_rps']:.0f}",
            f"{m['packet_rps']:.0f}",
            f"{m['speedup']:.2f}x",
            f"{m['max_diff']:.2e}",
            "exact" if m["counters_ok"] else "MISMATCH",
        ])

    report = format_table(
        f"packet vs scalar: {args.scene} {args.size}x{args.size} "
        f"{args.structure} k={args.k} ({len(cloud)} gaussians)",
        ["mode", "scalar rays/s", "packet rays/s", "speedup",
         "max |diff|", "counters"],
        rows,
    )
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    family = "tlas" if args.structure.startswith("tlas+") else "mono"
    # Per-family filenames so CI's back-to-back monolithic and tlas runs
    # don't clobber each other's reports.
    (RESULTS_DIR / f"packet_vs_scalar_{family}.txt").write_text(report + "\n")
    write_bench_json(
        RESULTS_DIR / f"BENCH_packet_{family}.json", f"packet_{family}",
        config={"scene": args.scene, "size": args.size,
                "scale": args.scale, "structure": args.structure,
                "k": args.k, "n_gaussians": len(cloud)},
        sections={
            "measurements": measurements,
            # Mode-keyed mirror of the headline numbers: positional
            # paths like measurements.0.speedup silently point at the
            # wrong mode when --modes reorders the list, so headline
            # resolution goes through this section instead.
            "summary": {
                m["mode"]: {
                    "speedup": m["speedup"],
                    "max_diff": m["max_diff"],
                    "counters_ok": m["counters_ok"],
                }
                for m in measurements
            },
        })

    failures = []
    for m in measurements:
        if m["max_diff"] > args.tolerance:
            failures.append(
                f"{m['mode']}: image diff {m['max_diff']:.3e} exceeds "
                f"{args.tolerance:.0e}")
        if not m["counters_ok"]:
            failures.append(f"{m['mode']}: functional counters diverge")
        if args.check and m["speedup"] < args.min_speedup:
            failures.append(
                f"{m['mode']}: speedup {m['speedup']:.2f}x below "
                f"{args.min_speedup:.1f}x")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
