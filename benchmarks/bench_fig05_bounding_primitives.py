"""Figure 5: icosahedron proxy vs custom primitive (time + BVH size)."""

from conftest import run_once

from repro.eval import experiments


def bench_fig05_bounding_primitives(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig05))
    for row in result.rows:
        ico_mb, custom_mb = row[3], row[4]
        # Paper Fig 5b: triangle-proxy BVHs are far larger than custom.
        assert ico_mb > 3.0 * custom_mb
