"""Table II: workload summary — BVH heights, sizes, footprints."""

from conftest import run_once

from repro.eval import experiments


def bench_table2_workloads(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.table2))
    for row in result.rows:
        mono_mb, tlas_mb = row[4], row[5]
        foot_mono, foot_tlas = row[6], row[7]
        # Paper: TLAS+20-tri is ~an order of magnitude smaller, and its
        # traversal footprint is several times smaller.
        assert tlas_mb < mono_mb / 4
        assert foot_tlas < foot_mono
