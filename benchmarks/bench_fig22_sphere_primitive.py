"""Figure 22: GRTX-SW with the hardware unit-sphere primitive."""

from conftest import run_once

from repro.eval import experiments


def bench_fig22_sphere_primitive(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig22))
    geo = result.rows[-1][1]
    # Paper: 1.44-2.15x over the icosahedron baseline.
    assert geo > 1.0
