"""Load generator for the render service (standalone script).

Runs the three serve-bench measurements — tile-parallel speedup, cached
throughput with p50/p95/p99 latency, and BVH build dedup — and prints
the report. Unlike the figure benchmarks in this directory (which run
under ``pytest --benchmark-only``), this is a plain script::

    python benchmarks/bench_serve_throughput.py [--workers 4] [--requests 60]

It accepts the same flags as ``python -m repro serve-bench`` and writes
the report to ``benchmarks/results/serve_throughput.txt`` plus the raw
numbers (speedup + traffic dicts, with every latency percentile and the
merged observability snapshot) to ``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_schema import write_bench_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def main(argv: list[str] | None = None) -> int:
    from repro.cli import _build_parser
    from repro.serve.bench import run_benchmark

    argv = list(sys.argv[1:] if argv is None else argv)
    args = _build_parser().parse_args(["serve-bench", *argv])
    report = run_benchmark(
        scene=args.scene,
        size=args.size,
        request_size=args.request_size,
        scale=args.scale,
        tile=args.tile,
        workers=args.workers,
        requests=args.requests,
        unique=args.unique,
        engine=args.engine,
    )
    print(report)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve_throughput.txt").write_text(report.report + "\n")
    write_bench_json(
        RESULTS_DIR / "BENCH_serve.json", "serve_throughput",
        config={"scene": args.scene, "size": args.size,
                "request_size": args.request_size, "scale": args.scale,
                "tile": args.tile, "workers": args.workers,
                "requests": args.requests, "unique": args.unique,
                "engine": args.engine},
        sections={"metrics": report.metrics})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
