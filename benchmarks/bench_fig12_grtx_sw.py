"""Figure 12: GRTX-SW speedups for the four Gaussian geometries."""

from conftest import run_once

from repro.eval import experiments


def bench_fig12_grtx_sw_geometries(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig12))
    geo = result.rows[-1]
    # Paper: both shared-BLAS configurations beat both monolithic ones.
    assert geo[3] > geo[1]  # TLAS+20-tri > 20-tri
    assert geo[4] > geo[2]  # TLAS+80-tri > 80-tri
