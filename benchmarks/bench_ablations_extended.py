"""Extended ablations: builders, prefetch policies, related-work baselines,
energy, DRAM row buffers, popping, and camera generality.

These go beyond the paper's figures to probe the design choices DESIGN.md
calls out and the related-work claims of Section VII.
"""

from conftest import run_once

from repro.eval import experiments


def bench_ablation_builder(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_builder))
    by_strategy = {row[0]: row for row in result.rows}
    # Binned SAH (the paper's Embree config) must beat the GPU-driver LBVH
    # on traversal work, and LBVH must stay within 2x (it is a usable tree).
    assert by_strategy["sah"][4] <= by_strategy["lbvh"][4]
    assert by_strategy["lbvh"][4] < 2.0 * by_strategy["sah"][4]


def bench_ablation_treelet_prefetch(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_treelet))
    latency = {row[0]: row[1] for row in result.rows}
    # Treelet prefetching (MICRO'23) helps over no prefetching at all...
    assert latency["treelet"] < latency["none"]
    # ...but the sibling prefetcher already captures the benefit.
    assert latency["sibling"] <= latency["treelet"]


def bench_ablation_ray_predictor(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_predictor))
    for row in result.rows:
        hit_rate, blended, coverage = row[1], row[2], row[3]
        # Section VII's argument quantified: the predictor's own metric is
        # healthy, but volume rendering needs all hits, so coverage is low.
        assert hit_rate > 0.5
        assert blended > 2.0
        assert coverage < 0.5


def bench_ablation_energy(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_energy))
    # GRTX must reduce dynamic energy vs the baseline in every scene.
    scenes = {row[0] for row in result.rows}
    for scene in scenes:
        rows = [row for row in result.rows if row[0] == scene]
        reduction = {row[1]: row[6] for row in rows}
        assert abs(reduction["Baseline"] - 1.0) < 1e-9
        assert reduction["GRTX"] > reduction["Baseline"]
        assert reduction["GRTX"] > 1.5


def bench_ablation_dram_row_buffer(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_dram))
    rate = {row[0]: row[2] for row in result.rows}
    # The compact shared BLAS concentrates DRAM traffic into fewer rows.
    assert rate["GRTX-SW"] > rate["Baseline"]


def bench_ablation_popping(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_popping))
    scores = {row[0]: row[1] for row in result.rows}
    perray = scores["per-ray sort (ray tracing)"]
    glob = scores["global depth sort (3DGS)"]
    # Section II-B: per-ray sorting eliminates popping artifacts.
    assert perray < glob


def bench_ablation_warp_divergence(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_divergence))
    rounds = [row[1] for row in result.rows]
    spread = [row[2] for row in result.rows]
    # Figure 18's straggler mechanism: smaller k means more rounds and a
    # wider per-warp round spread.
    assert rounds[0] > rounds[-1]
    assert spread[0] >= spread[-1]


def bench_ablation_camera_models(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.ablation_cameras))
    times = [row[2] for row in result.rows]
    rays = [row[1] for row in result.rows]
    # RT cost tracks ray count (within 3x across all camera models), i.e.
    # exotic cameras are not fundamentally more expensive per ray.
    per_ray = [t / r for t, r in zip(times, rays)]
    assert max(per_ray) < 3.0 * min(per_ray)
