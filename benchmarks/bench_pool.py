"""Worker-pool benchmark (standalone script).

Three measurements, matching the ``repro.pool`` subsystem's claims:

1. **Pool reuse** — ``--frames`` repeated frames of one scene rendered
   (a) the old way: a fresh pool constructed and torn down per render,
   re-shipping the scene every frame, vs (b) on one persistent
   :class:`~repro.pool.WorkerPool`, where warm frames ship only a scene
   hash. Every pooled frame is checked bit-identical to the serial
   reference (parity failures exit non-zero regardless of ``--check``).
2. **Work stealing** — a deliberately skewed task load (every task
   placed on one worker's deque by affinity) timed with stealing on vs
   off. Uses synthetic sleep tasks so the skew is exact and the expected
   ratio is known (~``workers``x).
3. **Cost-aware tiles** — a frame rendered twice on the pool: the first
   frame records per-tile costs on the uniform grid, the second renders
   on the cost-balanced partition. Reports the tile-cost tail ratio
   (max/mean) for both — lower means less tail-latency-bounding.

Unlike the figure benchmarks in this directory (which run under
``pytest --benchmark-only``), this is a plain script::

    python benchmarks/bench_pool.py [--check] [--min-speedup 1.2]

``--check`` gates on speed: non-zero exit when pool reuse is below
``--min-speedup`` or stealing is below ``--min-steal-ratio``. Results
are printed as a table and written machine-readable to
``benchmarks/results/BENCH_pool.json`` (``--out`` overrides).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from bench_schema import write_bench_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _parse(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="persistent-pool reuse, work stealing, cost-aware tiles")
    parser.add_argument("--scene", default="train")
    parser.add_argument("--size", type=int, default=48,
                        help="frame width=height (default 48)")
    parser.add_argument("--scale", type=float, default=1 / 2000.0)
    parser.add_argument("--proxy", default="tlas+sphere")
    parser.add_argument("--tile", type=int, default=16, help="tile edge")
    parser.add_argument("--frames", type=int, default=3,
                        help="repeated frames per pool variant")
    parser.add_argument("--start-method", default="spawn",
                        choices=["spawn", "fork", "forkserver"],
                        help="pool start method for the reuse measurement. "
                             "Default spawn: that is what the serving path "
                             "uses (its dispatcher threads make fork "
                             "unsafe), and it is where per-render pools "
                             "hurt most — every frame re-boots workers "
                             "and re-ships the scene.")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool width (0 = auto, honors REPRO_WORKERS)")
    parser.add_argument("--steal-tasks", type=int, default=12,
                        help="synthetic tasks in the stealing measurement")
    parser.add_argument("--steal-sleep", type=float, default=0.05,
                        help="seconds each synthetic task sleeps")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="persistent-vs-fresh-pool speedup required "
                             "by --check")
    parser.add_argument("--min-steal-ratio", type=float, default=1.2,
                        help="no-steal/steal wall-clock ratio required "
                             "by --check (skipped on 1 worker)")
    parser.add_argument("--out", default=str(RESULTS_DIR / "BENCH_pool.json"),
                        help="machine-readable output path")
    parser.add_argument("--check", action="store_true",
                        help="gate on the speed bars (parity is always "
                             "checked and always fatal)")
    return parser.parse_args(argv)


def _sleep_task(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def bench_pool_reuse(args) -> dict:
    """Repeated frames: fresh pool per render vs one persistent pool."""
    from repro.eval.harness import build_structure_for
    from repro.gaussians import make_workload
    from repro.render import GaussianRayTracer, default_camera_for
    from repro.rt import TraceConfig
    from repro.serve.tiles import TileScheduler

    cloud = make_workload(args.scene, scale=args.scale)
    structure = build_structure_for(cloud, args.proxy)
    config = TraceConfig(k=8, checkpointing=True)
    camera = default_camera_for(cloud, args.size, args.size)
    reference = GaussianRayTracer(cloud, structure, config).render(camera)

    def check_parity(result, label: str) -> None:
        if not np.array_equal(result.image, reference.image):
            raise SystemExit(f"PARITY FAILURE: {label} frame differs from "
                             "the serial reference")

    fresh_times = []
    for frame in range(args.frames):
        t0 = time.perf_counter()
        with TileScheduler(tile_size=(args.tile, args.tile),
                           workers=args.workers,
                           start_method=args.start_method) as scheduler:
            result = scheduler.render(cloud, structure, config, camera)
        fresh_times.append(time.perf_counter() - t0)
        check_parity(result, f"fresh-pool #{frame}")

    warm_times = []
    with TileScheduler(tile_size=(args.tile, args.tile),
                       workers=args.workers,
                       start_method=args.start_method) as scheduler:
        for frame in range(args.frames):
            t0 = time.perf_counter()
            result = scheduler.render(cloud, structure, config, camera)
            warm_times.append(time.perf_counter() - t0)
            check_parity(result, f"persistent-pool #{frame}")
        pool_stats = scheduler.pool_stats()

    fresh = sum(fresh_times) / len(fresh_times)
    warm = sum(warm_times) / len(warm_times)
    return {
        "frames": args.frames,
        "frame": f"{args.size}x{args.size}",
        "proxy": args.proxy,
        "start_method": args.start_method,
        "workers": pool_stats.get("workers", args.workers or 1),
        "fresh_pool_s_per_frame": fresh,
        "persistent_pool_s_per_frame": warm,
        "persistent_warmest_s": min(warm_times),
        "speedup": fresh / warm if warm > 0 else 0.0,
        "parity": "bit-identical",
        "pool": pool_stats,
    }


def bench_stealing(args) -> dict:
    """Skewed synthetic load, stealing on vs off."""
    from repro.pool import WorkerPool

    walls = {}
    stats = {}
    for stealing in (True, False):
        with WorkerPool(workers=args.workers, stealing=stealing) as pool:
            t0 = time.perf_counter()
            futures = [pool.submit(_sleep_task, args.steal_sleep,
                                   affinity="skewed")
                       for _ in range(args.steal_tasks)]
            for future in futures:
                future.result()
            walls[stealing] = time.perf_counter() - t0
            stats[stealing] = pool.stats()
    return {
        "tasks": args.steal_tasks,
        "task_seconds": args.steal_sleep,
        "workers": stats[True]["workers"],
        "wall_no_steal_s": walls[False],
        "wall_steal_s": walls[True],
        "steal_ratio": walls[False] / walls[True] if walls[True] > 0 else 0.0,
        "steals": stats[True]["steals"],
        "stolen_tasks": stats[True]["stolen_tasks"],
    }


def bench_adaptive_tiles(args) -> dict:
    """Tile-cost tail on the uniform grid vs the cost-aware partition."""
    from repro.eval.harness import build_structure_for
    from repro.gaussians import make_workload
    from repro.rt import TraceConfig
    from repro.serve.tiles import TileScheduler

    cloud = make_workload(args.scene, scale=args.scale)
    structure = build_structure_for(cloud, args.proxy)
    config = TraceConfig(k=8, checkpointing=True)
    from repro.render import default_camera_for

    camera = default_camera_for(cloud, args.size, args.size)

    def tail(costs: list[float]) -> float:
        if not costs:
            return 0.0
        mean = sum(costs) / len(costs)
        return max(costs) / mean if mean > 0 else 0.0

    with TileScheduler(tile_size=(args.tile, args.tile),
                       workers=args.workers) as scheduler:
        scheduler.render(cloud, structure, config, camera)
        uniform = [cost for _, cost in scheduler.last_tile_costs]
        scheduler.render(cloud, structure, config, camera)
        adaptive = [cost for _, cost in scheduler.last_tile_costs]
    return {
        "uniform_tiles": len(uniform),
        "adaptive_tiles": len(adaptive),
        "uniform_tail_ratio": tail(uniform),
        "adaptive_tail_ratio": tail(adaptive),
    }


def main(argv: list[str] | None = None) -> int:
    args = _parse(argv)
    from repro.eval.report import format_table
    from repro.pool import available_workers

    # The stealing and adaptive-tile sections need a real fleet; gate
    # them (and their --check bars) on the *resolved* width so
    # --workers 0 on a one-core host degrades instead of failing.
    resolved_workers = args.workers or available_workers()
    multi = resolved_workers > 1

    reuse = bench_pool_reuse(args)
    stealing = bench_stealing(args) if multi else None
    adaptive = bench_adaptive_tiles(args) if multi else None

    sections = [
        format_table(
            f"pool 1/3: persistent pool vs per-render pool "
            f"({reuse['frames']} x {reuse['frame']} {reuse['proxy']} frames, "
            f"{reuse['workers']} workers, parity {reuse['parity']})",
            ["fresh pool (s/frame)", "persistent (s/frame)", "speedup",
             "scene ships", "scene cache hits"],
            [[f"{reuse['fresh_pool_s_per_frame']:.3f}",
              f"{reuse['persistent_pool_s_per_frame']:.3f}",
              f"{reuse['speedup']:.2f}x",
              reuse["pool"].get("scene_ships", 0),
              reuse["pool"].get("scene_cache_hits", 0)]],
        ),
    ]
    if stealing is not None:
        sections.append(format_table(
            f"pool 2/3: work stealing ({stealing['tasks']} x "
            f"{stealing['task_seconds']*1e3:.0f} ms tasks, all placed on "
            f"one of {stealing['workers']} workers)",
            ["no stealing (s)", "stealing (s)", "ratio", "steals",
             "stolen tasks"],
            [[f"{stealing['wall_no_steal_s']:.3f}",
              f"{stealing['wall_steal_s']:.3f}",
              f"{stealing['steal_ratio']:.2f}x",
              stealing["steals"], stealing["stolen_tasks"]]],
        ))
    if adaptive is not None:
        sections.append(format_table(
            "pool 3/3: cost-aware tiles (tile-cost max/mean, lower = "
            "less tail-bound)",
            ["uniform tiles", "tail ratio", "adaptive tiles", "tail ratio "],
            [[adaptive["uniform_tiles"],
              f"{adaptive['uniform_tail_ratio']:.2f}",
              adaptive["adaptive_tiles"],
              f"{adaptive['adaptive_tail_ratio']:.2f}"]],
        ))
    if not multi:
        sections.append("(work-stealing and cost-aware-tile sections "
                        "skipped: pool resolves to 1 worker)")
    report = "\n\n".join(sections)
    print(report)

    out = write_bench_json(
        args.out, "pool",
        config={"scene": args.scene, "size": args.size,
                "scale": args.scale, "proxy": args.proxy,
                "tile": args.tile, "frames": args.frames,
                "start_method": args.start_method,
                "workers": resolved_workers,
                "steal_tasks": args.steal_tasks,
                "steal_sleep": args.steal_sleep},
        sections={"pool_reuse": reuse, "work_stealing": stealing,
                  "adaptive_tiles": adaptive})
    print(f"\nwrote {out}")

    if args.check:
        failures = []
        if not multi:
            # Parity was still checked (and is fatal) above; the speed
            # bars need a real fleet.
            print("check ok: parity only (pool resolves to 1 worker; "
                  "speed bars skipped)")
            return 0
        if reuse["speedup"] < args.min_speedup:
            failures.append(
                f"pool reuse speedup {reuse['speedup']:.2f}x < "
                f"{args.min_speedup:.2f}x")
        if stealing is not None and stealing["steal_ratio"] < args.min_steal_ratio:
            failures.append(
                f"steal ratio {stealing['steal_ratio']:.2f}x < "
                f"{args.min_steal_ratio:.2f}x")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print(f"check ok: reuse {reuse['speedup']:.2f}x >= "
              f"{args.min_speedup:.2f}x" +
              ("" if stealing is None else
               f", stealing {stealing['steal_ratio']:.2f}x >= "
               f"{args.min_steal_ratio:.2f}x"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
