"""One JSON shape for every ``BENCH_*.json`` results document.

The standalone bench scripts (``bench_obs``, ``bench_pool``,
``bench_packet_vs_scalar``, ``bench_replay``,
``bench_serve_throughput``) each used to invent their own top-level
layout, which made the committed results impossible to diff across PRs
or tabulate together. They now all write::

    {
      "schema": "repro.bench/v1",
      "benchmark": "<name>",            # e.g. "pool", "packet_tlas"
      "created_unix": <float>,
      "host": {python, platform, machine, cpus},
      "config": {<the argparse knobs that shaped the run>},
      "sections": {<benchmark-specific measurement groups>}
    }

``make_experiments_md.py`` renders the committed documents into a
bench-trajectory table, and headline numbers are registered here (in
:data:`HEADLINES`) rather than guessed from each document's innards.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

BENCH_SCHEMA = "repro.bench/v1"

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: benchmark name -> (headline label, dotted path into sections,
#: format). ``make_experiments_md`` uses this to pull one comparable
#: number per committed document.
HEADLINES: dict[str, tuple[str, str, str]] = {
    "obs": ("tracing overhead", "overhead.overhead_pct", "{:+.2f}%"),
    "chaos": ("chaos armed-idle overhead", "overhead.overhead_pct",
              "{:+.2f}%"),
    "pool": ("persistent-pool speedup", "pool_reuse.speedup", "{:.2f}x"),
    # Mode-keyed paths: measurements.0.* depends on --modes order, so
    # the headlines resolve through the summary section instead.
    "packet_mono": ("packet speedup (mono)",
                    "summary.multiround.speedup", "{:.2f}x"),
    "packet_tlas": ("packet speedup (tlas)",
                    "summary.multiround.speedup", "{:.2f}x"),
    "wavefront": ("wavefront speedup vs packet",
                  "summary.multiround.speedup_vs_packet", "{:.2f}x"),
    "replay": ("campaign e2e speedup",
               "campaign.e2e_speedup", "{:.2f}x"),
    "serve_throughput": ("serve throughput",
                         "metrics.traffic.throughput_rps", "{:.2f} req/s"),
}


def host_info() -> dict:
    """The machine fingerprint stamped into every document."""
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def bench_document(benchmark: str, config: dict, sections: dict) -> dict:
    """Assemble one schema-conforming results document."""
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": benchmark,
        "created_unix": time.time(),
        "host": host_info(),
        "config": config,
        "sections": sections,
    }


def write_bench_json(path: Path | str, benchmark: str, config: dict,
                     sections: dict) -> Path:
    """Write one document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = bench_document(benchmark, config, sections)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def resolve(sections: dict, dotted: str):
    """Walk ``sections`` by a dotted path (ints index into lists);
    returns None when any hop is missing."""
    node = sections
    for hop in dotted.split("."):
        if isinstance(node, list):
            try:
                node = node[int(hop)]
            except (ValueError, IndexError):
                return None
        elif isinstance(node, dict):
            if hop not in node:
                return None
            node = node[hop]
        else:
            return None
    return node


def headline(document: dict) -> tuple[str, str] | None:
    """(label, formatted value) for one document, or None."""
    spec = HEADLINES.get(document.get("benchmark", ""))
    if spec is None:
        return None
    label, dotted, fmt = spec
    value = resolve(document.get("sections", {}), dotted)
    if value is None:
        return label, "n/a"
    try:
        return label, fmt.format(value)
    except (ValueError, TypeError):
        return label, str(value)
