"""Figure 7: unique vs total node visits across tracing rounds."""

from conftest import run_once

from repro.eval import experiments


def bench_fig07_unique_vs_total(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig07))
    for row in result.rows:
        # Paper: a non-negligible unique/total gap on every scene.
        assert row[5] > 1.1, f"{row[0]}: no redundancy measured"
