"""Table III: GRTX-HW hardware cost."""

from conftest import run_once

from repro.eval import experiments
from repro.hwsim import checkpoint_hardware_cost


def bench_table3_hardware_cost(benchmark, record_table):
    record_table(run_once(benchmark, experiments.table3))
    assert abs(checkpoint_hardware_cost().total_kb - 1.05) < 0.02
