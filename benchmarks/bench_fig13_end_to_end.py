"""Figure 13: end-to-end speedups (Baseline / GRTX-SW / GRTX-HW / GRTX)."""

from conftest import run_once

from repro.eval import experiments


def bench_fig13_end_to_end_speedup(benchmark, record_table):
    result = record_table(run_once(benchmark, experiments.fig13))
    geo = result.rows[-1]
    base, sw, hw, grtx = geo[1], geo[2], geo[3], geo[4]
    # Paper: GRTX 4.36x average; both components speed up on their own.
    assert abs(base - 1.0) < 1e-9
    assert sw > 1.2
    assert hw > 1.2
    assert grtx > max(sw, hw)
    assert grtx > 2.0
