"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works on minimal
offline environments whose setuptools lacks PEP 660 editable-wheel
support (no `wheel` package available).
"""
from setuptools import setup

setup()
