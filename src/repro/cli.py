"""Command-line interface: ``python -m repro <command>``.

Five commands cover the workflows a user reaches for first:

* ``workloads`` — list the six paper workloads with their generated
  statistics (the Table II inventory at the current scale).
* ``render`` — render one scene to a PPM with any structure/mode
  combination and print the render + timing summary; ``--tiles`` /
  ``--workers`` route it through the tile scheduler for multi-core runs.
* ``experiment`` — regenerate the paper's tables/figures by id
  (``fig13``, ``table2``, comma lists, or ``all``) and print tables and
  ASCII charts; ``--workers`` fans the renders behind them out across a
  persistent worker pool so the campaign uses every core.
* ``structures`` — build every acceleration-structure variant for a
  scene and compare sizes (the Figure 5b / Table II comparison).
* ``serve-bench`` — load-test the render service: tile-parallel speedup,
  cached throughput with p50/p95/p99 latency, and cache/build dedup
  rates.
* ``stats`` — pretty-print (or re-emit as JSON) an observability
  snapshot written by ``--stats-out``.
* ``doctor`` — triage an incident bundle dumped by the always-on
  flight recorder (worker crashes, saturation shedding, unhandled
  CLI exceptions): timeline, last-event-per-process, counter
  anomalies, probable causes.
* ``chaos-drill`` — run the seeded fault-injection drill
  (:mod:`repro.chaosdrill`): kill, hang, and poison workers, corrupt
  the structure disk cache, then verify every hardening path engaged
  and every frame stayed bit-identical.

``render`` and ``serve-bench`` accept ``--trace-out FILE`` (stream
Chrome ``about:tracing``-compatible span events as JSON lines; open the
file via ``chrome://tracing`` or Perfetto) and ``--stats-out FILE``
(write the merged metrics-registry snapshot, including worker-side
counters that rode back with task results).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Callable

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRTX reproduction: Gaussian ray tracing experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the paper's workloads")

    render = sub.add_parser("render", help="render one scene to a PPM")
    render.add_argument("scene", help="workload name (train, truck, bonsai, ...)")
    render.add_argument("--out", default="render.ppm", help="output PPM path")
    render.add_argument("--proxy", default="tlas+sphere",
                        help="structure: 20-tri, 80-tri, custom, tlas+20-tri, "
                             "tlas+80-tri, tlas+sphere")
    render.add_argument("--mode", default="grtx",
                        choices=["baseline", "grtx-sw", "grtx-hw", "grtx"],
                        help="optimization mode (grtx-hw/grtx enable checkpointing)")
    render.add_argument("--engine", default="auto",
                        choices=["scalar", "packet", "wavefront", "auto"],
                        help="tracing engine: per-ray scalar (full feature set, "
                             "fetch traces for the timing model), vectorized "
                             "ray packets, frame-wide breadth-first wavefront "
                             "(both batch engines cover both structure "
                             "families, no checkpointing; unsupported "
                             "combinations fall back to scalar with a "
                             "warning), or auto (default: wavefront for "
                             "frame-sized batches, packet for smaller ones, "
                             "scalar otherwise)")
    render.add_argument("--size", type=int, default=32, help="image width=height")
    render.add_argument("--k", type=int, default=8, help="k-buffer capacity")
    render.add_argument("--scale", type=float, default=1 / 400.0,
                        help="scene scale relative to the paper's Gaussian counts")
    render.add_argument("--camera", default="pinhole",
                        choices=["pinhole", "fisheye", "equirect", "ortho"],
                        help="camera model")
    render.add_argument("--seed", type=int, default=None,
                        help="override the workload's scene seed (same seed "
                             "=> bit-identical scene)")
    render.add_argument("--tiles", type=int, default=0, metavar="N",
                        help="render in NxN tiles through the tile scheduler "
                             "(0 = untiled); pixels are identical, but the "
                             "timing model sees tile-order ray dispatch, so "
                             "its cache/latency numbers are not comparable "
                             "with untiled runs")
    render.add_argument("--workers", type=int, default=1,
                        help="worker processes for tiled rendering "
                             "(implies --tiles 16 when unset; 0 = one per core)")
    _add_obs_flags(render)

    experiment = sub.add_parser("experiment", help="regenerate paper tables/figures")
    experiment.add_argument("exp_id", help="experiment id, e.g. fig13, table2; "
                                           "a comma-separated list; 'all' for "
                                           "the whole campaign; 'list' shows "
                                           "all ids")
    experiment.add_argument("--chart", action="store_true",
                            help="print an ASCII chart after each table")
    experiment.add_argument("--workers", type=int, default=1,
                            help="fan the experiments' render configs out "
                                 "across a persistent worker pool (0 = one "
                                 "per core, honoring REPRO_WORKERS; 1 = "
                                 "serial). Tables are identical to serial "
                                 "runs — only where renders run changes.")

    structures = sub.add_parser("structures", help="compare structure sizes for a scene")
    structures.add_argument("scene")
    structures.add_argument("--scale", type=float, default=1 / 400.0)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the render service (throughput, latency, caches)")
    serve_bench.add_argument("--scene", default="train")
    serve_bench.add_argument("--size", type=int, default=64,
                             help="frame size for the tile-speedup measurement")
    serve_bench.add_argument("--request-size", type=int, default=24,
                             help="frame size for the throughput workload")
    serve_bench.add_argument("--scale", type=float, default=1 / 2000.0)
    serve_bench.add_argument("--tile", type=int, default=16, help="tile edge")
    serve_bench.add_argument("--workers", type=int, default=4,
                             help="parallel worker count to compare against 1")
    serve_bench.add_argument("--requests", type=int, default=60,
                             help="total requests in the throughput workload")
    serve_bench.add_argument("--unique", type=int, default=5,
                             help="distinct request configs in the workload")
    serve_bench.add_argument("--engine", default="auto",
                             choices=["scalar", "packet", "wavefront", "auto"],
                             help="tracing engine to benchmark; batch engines/auto "
                                  "switch the workload to baseline mode "
                                  "(no checkpointing) so the vectorized "
                                  "path is what gets measured, on the "
                                  "paper's tlas+sphere structure")
    _add_obs_flags(serve_bench)

    chaos_drill = sub.add_parser(
        "chaos-drill",
        help="run the seeded fault-injection drill: kill/hang/corrupt/"
             "poison a pooled render run and verify every hardening "
             "path engages with bit-identical frames")
    chaos_drill.add_argument("--scene", default="train")
    chaos_drill.add_argument("--size", type=int, default=32,
                             help="frame width=height")
    chaos_drill.add_argument("--frames", type=int, default=5,
                             help="distinct frames rendered under faults")
    chaos_drill.add_argument("--workers", type=int, default=2,
                             help="pool workers for the chaos run")
    chaos_drill.add_argument("--deadline", type=float, default=2.0,
                             metavar="SECONDS",
                             help="per-task deadline the hung-worker "
                                  "watchdog enforces")
    chaos_drill.add_argument("--seed", type=int, default=0,
                             help="chaos schedule seed")
    chaos_drill.add_argument("--keep-dir", default=None, metavar="DIR",
                             help="preserve the drill's flight/cache "
                                  "directory here for post-mortem")
    chaos_drill.add_argument("--json", action="store_true", dest="as_json",
                             help="emit the drill summary as JSON")

    doctor = sub.add_parser(
        "doctor",
        help="triage an incident bundle written by the flight recorder")
    doctor.add_argument("path", nargs="?", default=None,
                        help="incident bundle JSON (default: the newest "
                             "bundle in the flight directory)")
    doctor.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the triage analysis as JSON instead of "
                             "the human report")
    doctor.add_argument("--tail", type=int, default=40,
                        help="timeline events shown in the report")

    stats = sub.add_parser(
        "stats", help="pretty-print an observability snapshot")
    stats.add_argument("path", nargs="?", default=None,
                       help="snapshot file written by --stats-out; omitted: "
                            "snapshot this process's (mostly empty) registry")
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the snapshot as JSON instead of tables")

    lint = sub.add_parser(
        "lint",
        help="statically check the project invariants (parity contract, "
             "cache keys, lock discipline, process boundaries)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: the "
                           "repro package source tree)")
    lint.add_argument("--strict", action="store_true",
                      help="fail on warnings too, not only errors (what CI "
                           "runs)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the machine-readable report to stdout")
    lint.add_argument("--json-out", default=None, metavar="FILE",
                      help="also write the JSON report to FILE (the CI "
                           "artifact)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline file of grandfathered findings "
                           "(default: lint_baseline.json next to the "
                           "source tree, when present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record the current findings as the new "
                           "baseline and exit 0")
    lint.add_argument("--rules", default=None, metavar="ID[,ID...]",
                      help="run only these rule ids")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog (id, severity, the "
                           "historical bug it descends from) and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="always show the suppressed-findings section")
    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="stream span events (Chrome about:tracing JSON "
                             "lines) to FILE while the command runs")
    parser.add_argument("--stats-out", default=None, metavar="FILE",
                        help="write the merged metrics snapshot (parent + "
                             "worker counters/histograms) to FILE on exit")


@contextlib.contextmanager
def _obs_session(args: argparse.Namespace):
    """Honor ``--trace-out`` / ``--stats-out`` around one command.

    Commands without the flags pass through untouched (getattr guards),
    so this wraps every command uniformly from :func:`main`.
    """
    trace_out = getattr(args, "trace_out", None)
    stats_out = getattr(args, "stats_out", None)
    if trace_out:
        from repro.obs import start_tracing

        start_tracing(trace_out)
    try:
        yield
    finally:
        if trace_out:
            from repro.obs import stop_tracing

            stop_tracing()
            print(f"trace:     {trace_out} (load via chrome://tracing)")
        if stats_out:
            from repro.obs import write_snapshot

            write_snapshot(stats_out)
            print(f"stats:     {stats_out} (view with 'repro stats')")


def _cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.eval.report import format_table
    from repro.gaussians.synthetic import WORKLOAD_ORDER, WORKLOAD_SPECS

    rows = []
    for name in WORKLOAD_ORDER:
        spec = WORKLOAD_SPECS[name]
        rows.append([
            name,
            f"{spec.paper_gaussians / 1e6:.2f} M",
            f"{spec.native_resolution[0]}x{spec.native_resolution[1]}",
            "indoor" if spec.indoor else "outdoor",
            f"{spec.extent:g}",
        ])
    print(format_table(
        "Paper workloads (Table II)",
        ["scene", "# gaussians (paper)", "resolution (paper)", "type", "extent"],
        rows,
    ))
    return 0


def _make_camera(kind: str, cloud, size: int):
    from repro.render import default_camera_for
    from repro.render.cameras import (
        EquirectangularCamera,
        FisheyeCamera,
        OrthographicCamera,
    )

    pin = default_camera_for(cloud, size, size)
    if kind == "pinhole":
        return pin
    if kind == "fisheye":
        return FisheyeCamera(pin.position, pin.look_at, pin.up, size, size, fov=np.pi)
    if kind == "equirect":
        return EquirectangularCamera(pin.position, pin.look_at, pin.up, 2 * size, size)
    center = cloud.means.mean(axis=0)
    extent = float(np.abs(cloud.means - center).max())
    return OrthographicCamera(pin.position, pin.look_at, pin.up, size, size,
                              half_extent=1.2 * extent)


def _cmd_render(args: argparse.Namespace) -> int:
    from repro import (
        GaussianRayTracer,
        GpuConfig,
        TraceConfig,
        make_workload,
        replay,
        write_ppm,
    )
    from repro.eval.harness import build_structure_for

    if args.tiles < 0 or args.workers < 0:
        print("--tiles and --workers must be >= 0", file=sys.stderr)
        return 2
    tiles = args.tiles
    if tiles == 0 and args.workers != 1:
        tiles = 16

    cloud = make_workload(args.scene, scale=args.scale, seed=args.seed)
    structure = build_structure_for(cloud, args.proxy)
    checkpointing = args.mode in ("grtx-hw", "grtx")
    config = TraceConfig(k=args.k, checkpointing=checkpointing)
    camera = _make_camera(args.camera, cloud, args.size)
    from repro.rt import resolve_engine

    # Resolve auto (and count/warn an explicit packet degrade) once,
    # then pass the concrete engine down so nothing re-resolves.
    engine_active = resolve_engine(args.engine, structure, config,
                                   n_rays=args.size * args.size)
    if tiles:
        from repro.serve import TileScheduler

        scheduler = TileScheduler(tile_size=(tiles, tiles), workers=args.workers)
        result = scheduler.render(cloud, structure, config, camera,
                                  keep_traces=True, engine=engine_active)
    else:
        renderer = GaussianRayTracer(cloud, structure, config,
                                     engine=engine_active)
        result = renderer.render(camera)
    write_ppm(args.out, result.image)
    print(f"scene={args.scene} gaussians={len(cloud)} proxy={args.proxy} "
          f"mode={args.mode} engine={engine_active}")
    print(f"structure: {structure.total_bytes / 1024:.1f} KB")
    print(f"render:    {result.stats.n_rays} rays, {result.stats.rounds_total} rounds, "
          f"{result.stats.blended_total} blends")
    if result.traces:
        timing = replay(result.traces, GpuConfig.rtx_like())
        print(f"timing:    {timing.time_ms:.3f} model-ms, {timing.node_fetches} node fetches, "
              f"L1 hit {timing.l1_hit_rate:.1%}")
    else:
        print("timing:    n/a (no fetch traces recorded)")
    print(f"image:     {args.out}")
    return 0


def _experiment_registry() -> dict[str, Callable]:
    from repro.eval import experiments as exp

    registry: dict[str, Callable] = {}
    for name in dir(exp):
        if name.startswith(("fig", "table", "ablation", "quality")):
            fn = getattr(exp, name)
            if callable(fn):
                registry[name] = fn
    return registry


def _cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.exp_id == "list":
        for name in sorted(registry):
            print(name)
        return 0
    if args.exp_id == "all":
        exp_ids = sorted(registry)
    else:
        exp_ids = [e.strip() for e in args.exp_id.split(",") if e.strip()]
    unknown = [e for e in exp_ids if e not in registry]
    if unknown:
        print(f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
              "try 'experiment list'", file=sys.stderr)
        return 2

    if args.workers != 1:
        # Pre-render every config the requested experiments will ask for
        # on the shared worker pool; the assembly below hits warm caches.
        from repro.eval.experiments import campaign_configs
        from repro.eval.harness import parallel_run_configs

        configs = campaign_configs(exp_ids)
        if configs:
            parallel_run_configs(configs, workers=args.workers)

    for index, exp_id in enumerate(exp_ids):
        if index:
            print()
        result = registry[exp_id]()
        print(result.table)
        if args.chart:
            from repro.eval.plotting import chart_for_result

            print()
            print(chart_for_result(result))
    return 0


def _cmd_structures(args: argparse.Namespace) -> int:
    from repro.eval.harness import PROXIES, build_structure_for
    from repro.eval.report import format_table
    from repro.gaussians import make_workload

    cloud = make_workload(args.scene, scale=args.scale)
    rows = []
    for proxy in PROXIES:
        structure = build_structure_for(cloud, proxy)
        rows.append([proxy, f"{structure.total_bytes / 1024:.1f}", structure.height])
    print(format_table(
        f"Structure sizes for {args.scene} ({len(cloud)} gaussians)",
        ["structure", "size (KB)", "height"],
        rows,
    ))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import run_benchmark

    report = run_benchmark(
        scene=args.scene,
        size=args.size,
        request_size=args.request_size,
        scale=args.scale,
        tile=args.tile,
        workers=args.workers,
        requests=args.requests,
        unique=args.unique,
        engine=args.engine,
    )
    print(report)
    return 0


def _cmd_chaos_drill(args: argparse.Namespace) -> int:
    import json

    from repro.chaosdrill import format_summary, run_drill

    summary = run_drill(scene=args.scene, size=args.size, frames=args.frames,
                        workers=args.workers, deadline_s=args.deadline,
                        seed=args.seed, keep_dir=args.keep_dir)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=repr))
    else:
        print(format_summary(summary))
    return 0 if summary["ok"] else 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    import json

    from repro.obs import doctor, flight

    path = args.path
    if path is None:
        import glob
        import os

        candidates = sorted(
            glob.glob(os.path.join(flight.flight_dir(), "incident-*.json")),
            key=os.path.getmtime)
        if not candidates:
            print(f"no incident bundles in {flight.flight_dir()!r}; "
                  "pass a bundle path", file=sys.stderr)
            return 2
        path = candidates[-1]
        print(f"bundle:    {path} (newest)\n")
    try:
        bundle = doctor.load_bundle(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read bundle {path!r}: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(doctor.triage(bundle), indent=2, sort_keys=True,
                         default=repr))
    else:
        print(doctor.render_report(bundle, tail=args.tail))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        SNAPSHOT_SCHEMA,
        format_snapshot,
        get_registry,
        load_snapshot,
    )

    if args.path is not None:
        try:
            document = load_snapshot(args.path)
        except (OSError, ValueError) as exc:
            print(f"cannot read snapshot {args.path!r}: {exc}", file=sys.stderr)
            return 2
    else:
        document = {"schema": SNAPSHOT_SCHEMA,
                    "snapshot": get_registry().snapshot()}
    if args.as_json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(format_snapshot(document))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import analysis

    if args.list_rules:
        for rule in analysis.all_rules():
            print(f"{rule.id}  [{rule.severity}]")
            print(f"    {rule.description}")
            print(f"    history: {rule.history}")
        return 0

    enabled = None
    if args.rules:
        enabled = frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        known = {rule.id for rule in analysis.all_rules()}
        unknown = sorted(enabled - known)
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}; "
                  "see 'repro lint --list-rules'", file=sys.stderr)
            return 2
    config = analysis.LintConfig(enabled_rules=enabled)

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = analysis.default_source_root().parent / "lint_baseline.json"
        baseline_path = candidate if candidate.exists() else None
    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = analysis.load_baseline(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths] if args.paths else None
    result = analysis.run_lint(paths, config=config, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or (
            analysis.default_source_root().parent / "lint_baseline.json")
        written = analysis.write_baseline(target, result.active)
        print(f"baseline: {target} ({len(written)} grandfathered findings)")
        return 0

    json_doc = analysis.render_json(
        result.findings, result.files_scanned, args.strict,
        sorted(result.parity_modules))
    if args.json_out:
        Path(args.json_out).write_text(json_doc + "\n")
    if args.as_json:
        print(json_doc)
    else:
        print(analysis.render_text(result.findings, result.files_scanned,
                                   verbose=args.verbose))
        if args.json_out:
            print(f"report:    {args.json_out}")
    return 1 if result.gate_failed(args.strict) else 0


_COMMANDS = {
    "workloads": _cmd_workloads,
    "render": _cmd_render,
    "experiment": _cmd_experiment,
    "structures": _cmd_structures,
    "serve-bench": _cmd_serve_bench,
    "chaos-drill": _cmd_chaos_drill,
    "doctor": _cmd_doctor,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Any unhandled exception dumps a flight-recorder incident bundle
    before propagating: the traceback tells you where it died, the
    bundle tells you what the stack was doing on the way there
    (``repro doctor`` reads it). KeyboardInterrupt/SystemExit pass
    through untouched — a Ctrl-C is not an incident.
    """
    args = _build_parser().parse_args(argv)
    try:
        with _obs_session(args):
            return _COMMANDS[args.command](args)
    except Exception as exc:
        from repro.obs import flight

        bundle = flight.dump_incident("cli-unhandled-exception",
                                      command=args.command, error=repr(exc))
        if bundle:
            print(f"incident bundle: {bundle} "
                  "(inspect with 'repro doctor')", file=sys.stderr)
        raise


if __name__ == "__main__":
    raise SystemExit(main())
