"""Treelet prefetching (Chou et al., MICRO 2023) as a comparison point.

The paper cites treelet prefetching as *orthogonal* to GRTX: it hides
node-fetch latency by prefetching small subtrees ("treelets") when their
root is fetched, while GRTX removes the fetches altogether. This module
reproduces the technique so the ablation bench can measure (a) its
standalone benefit on Gaussian ray tracing and (b) that it composes with
GRTX rather than replacing it.

A treelet is the set of descendant nodes reachable from a root node
within a byte budget (we use breadth-first order, the hardware-friendly
choice). The map is computed statically from the BVH; the replay model
consults it on every internal-node L1 miss and stages the treelet's
remaining lines into the L1, charging L2/DRAM traffic but no stall.
"""

from __future__ import annotations

from collections import deque

from repro.bvh.layout import internal_node_bytes
from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.node import KIND_INTERNAL, KIND_LEAF, FlatBVH
from repro.bvh.two_level import TwoLevelBVH

#: Default treelet byte budget (a few cache lines of nodes, as in the
#: MICRO paper's sweet spot).
DEFAULT_TREELET_BYTES = 1024


def build_treelet_map(
    structure: MonolithicBVH | TwoLevelBVH,
    budget_bytes: int = DEFAULT_TREELET_BYTES,
) -> dict[int, list[tuple[int, int]]]:
    """Partition each BVH into treelets; map root address -> member list.

    The tree is cut into disjoint treelets: starting at the root, a
    treelet absorbs descendants in BFS order until the byte budget is
    exhausted; every child left outside becomes the root of a new
    treelet. Only treelet *roots* appear as keys, so prefetch triggers
    exactly once per treelet entry instead of on every node — triggering
    everywhere floods the L1 with each node's whole neighborhood and
    pollutes it (we measured this variant; it loses).

    Leaf records count toward the budget too (they are what traversal
    fetches next).
    """
    if budget_bytes < 1:
        raise ValueError("treelet budget must be positive")
    bvhs: list[FlatBVH] = []
    if isinstance(structure, TwoLevelBVH):
        bvhs.append(structure.tlas)
        if structure.blas.kind == "icosphere":
            bvhs.append(structure.blas.bvh)
    else:
        bvhs.append(structure.bvh)

    treelets: dict[int, list[tuple[int, int]]] = {}
    for bvh in bvhs:
        node_bytes = internal_node_bytes(bvh.width)
        child_kind = bvh.child_kind
        child_ref = bvh.child_ref
        node_addr = bvh.node_addr
        leaf_addr = bvh.leaf_addr
        leaf_bytes = bvh.leaf_bytes

        roots: deque[int] = deque([0])
        while roots:
            root = roots.popleft()
            picked: list[tuple[int, int]] = []
            used = node_bytes  # the root itself is demand-fetched
            member: deque[int] = deque([root])
            while member:
                node = member.popleft()
                for slot in range(bvh.width):
                    kind = child_kind[node, slot]
                    if kind == 0:
                        break
                    ref = int(child_ref[node, slot])
                    if kind == KIND_INTERNAL:
                        size = node_bytes
                        addr = int(node_addr[ref])
                    else:
                        size = int(leaf_bytes[ref])
                        addr = int(leaf_addr[ref])
                    if used + size > budget_bytes:
                        if kind == KIND_INTERNAL:
                            roots.append(ref)
                        continue
                    used += size
                    picked.append((addr, size))
                    if kind == KIND_INTERNAL:
                        member.append(ref)
            if picked:
                treelets[int(node_addr[root])] = picked
    return treelets
