"""Trace-driven GPU timing model (the Vulkan-Sim substitute).

The functional tracer records byte-accurate node-fetch traces; this
package replays them through a modeled memory hierarchy (per-SM L1,
shared L2, DRAM) and an RT-unit cost model (Figure 9's architecture) to
produce cycles, node-fetch counts, fetch latencies and cache statistics —
the exact quantities the paper's evaluation plots.
"""

from repro.hwsim.config import GpuConfig
from repro.hwsim.cache import CacheStats, SetAssociativeCache
from repro.hwsim.dram import DramModel, DramStats, DramTimings
from repro.hwsim.energy import EnergyParams, EnergyReport, estimate_energy
from repro.hwsim.replay import TimingReport, raster_cycles, replay, replay_reference
from repro.hwsim.rtunit import CheckpointHardware, checkpoint_hardware_cost
from repro.hwsim.treelet import build_treelet_map
from repro.hwsim.warp import WarpDivergenceReport, analyze_divergence

__all__ = [
    "CacheStats",
    "CheckpointHardware",
    "DramModel",
    "DramStats",
    "DramTimings",
    "EnergyParams",
    "EnergyReport",
    "GpuConfig",
    "SetAssociativeCache",
    "TimingReport",
    "WarpDivergenceReport",
    "analyze_divergence",
    "build_treelet_map",
    "checkpoint_hardware_cost",
    "estimate_energy",
    "raster_cycles",
    "replay",
    "replay_reference",
]
