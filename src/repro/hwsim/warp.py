"""Intra-warp divergence analysis.

Figure 18's k-sweep bottoms out at k=8 because smaller k means more
tracing rounds, and every round is a warp-synchronous traceRayEXT call:
threads that finish early idle until the slowest lane ("straggler") of
their warp completes the round. This module quantifies that effect from
the recorded traces:

* **active-lane fraction** — per (warp, round), how many lanes still
  trace; the complement is pure idle time;
* **straggler ratio** — mean ratio of the slowest lane's work to the
  mean lane work per round (1.0 = perfectly balanced warp);
* **round imbalance** — distribution of per-ray round counts inside each
  warp (rays that terminate early wait for their warp's maximum).

The replay model charges these costs implicitly (its per-round critical
path is the max over lanes); this module makes them inspectable so the
k-sweep behaviour can be diagnosed rather than observed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rt.recorder import RayTrace


@dataclass(frozen=True)
class WarpDivergenceReport:
    """Divergence statistics for one render's warps."""

    n_warps: int
    n_rounds_total: int
    #: Mean fraction of lanes active per (warp, round).
    mean_active_fraction: float
    #: Mean max/mean per-lane node visits per (warp, round).
    straggler_ratio: float
    #: Mean (max - min) round count inside a warp.
    mean_round_spread: float
    #: Fraction of lane-rounds that are pure idle (lane done, warp not).
    idle_lane_fraction: float

    def as_row(self) -> dict[str, float]:
        return {
            "warps": self.n_warps,
            "active_frac": round(self.mean_active_fraction, 3),
            "straggler": round(self.straggler_ratio, 2),
            "round_spread": round(self.mean_round_spread, 2),
            "idle_frac": round(self.idle_lane_fraction, 3),
        }


def _warp_chunks(traces: list[RayTrace], warp_size: int) -> list[list[RayTrace]]:
    warps = []
    for label in ("primary", "secondary"):
        rays = [t for t in traces if t.label == label]
        for i in range(0, len(rays), warp_size):
            warps.append(rays[i : i + warp_size])
    return warps


def analyze_divergence(traces: list[RayTrace], warp_size: int = 32) -> WarpDivergenceReport:
    """Compute warp divergence statistics from recorded ray traces."""
    if warp_size < 1:
        raise ValueError("warp_size must be positive")
    warps = _warp_chunks(traces, warp_size)
    if not warps:
        return WarpDivergenceReport(0, 0, 0.0, 0.0, 0.0, 0.0)

    active_fractions: list[float] = []
    straggler_ratios: list[float] = []
    spreads: list[float] = []
    idle_lane_rounds = 0
    lane_rounds_total = 0
    rounds_total = 0

    for warp in warps:
        rounds_per_lane = np.array([t.n_rounds for t in warp])
        warp_rounds = int(rounds_per_lane.max())
        rounds_total += warp_rounds
        spreads.append(float(rounds_per_lane.max() - rounds_per_lane.min()))
        lane_rounds_total += warp_rounds * len(warp)
        idle_lane_rounds += int((warp_rounds - rounds_per_lane).sum())

        for round_index in range(warp_rounds):
            visits = [
                t.rounds[round_index].n_fetches
                for t in warp
                if round_index < t.n_rounds
            ]
            active_fractions.append(len(visits) / len(warp))
            mean_visits = float(np.mean(visits)) if visits else 0.0
            if mean_visits > 0.0:
                straggler_ratios.append(float(np.max(visits)) / mean_visits)

    return WarpDivergenceReport(
        n_warps=len(warps),
        n_rounds_total=rounds_total,
        mean_active_fraction=float(np.mean(active_fractions)),
        straggler_ratio=float(np.mean(straggler_ratios)) if straggler_ratios else 0.0,
        mean_round_spread=float(np.mean(spreads)),
        idle_lane_fraction=(
            idle_lane_rounds / lane_rounds_total if lane_rounds_total else 0.0
        ),
    )
