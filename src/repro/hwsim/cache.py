"""Set-associative LRU cache model.

Dict insertion order doubles as the LRU chain: a hit deletes and
re-inserts its line (most recently used at the back); an insertion that
overflows the set evicts the front (least recently used). This keeps the
per-access cost at a couple of dict operations, which matters when
replaying millions of fetch events in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    prefetch_fills: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache over line addresses."""

    __slots__ = ("line_bytes", "ways", "n_sets", "_sets", "stats", "name")

    def __init__(self, size_bytes: int, line_bytes: int, ways: int, name: str = "cache") -> None:
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError("cache size must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.n_sets)]
        self.stats = CacheStats()
        self.name = name

    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def lines_of(self, addr: int, nbytes: int) -> range:
        """All line addresses a ``nbytes`` fetch at ``addr`` touches."""
        first = addr // self.line_bytes
        last = (addr + max(nbytes, 1) - 1) // self.line_bytes
        return range(first, last + 1)

    def access(self, line: int) -> bool:
        """Demand access one line; returns True on hit, fills on miss."""
        self.stats.accesses += 1
        cache_set = self._sets[line % self.n_sets]
        if line in cache_set:
            self.stats.hits += 1
            del cache_set[line]
            cache_set[line] = None
            return True
        self._fill(cache_set, line)
        return False

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU state or counters."""
        return line in self._sets[line % self.n_sets]

    def tag_state(self) -> tuple[list[dict[int, None]], int, int]:
        """Raw tag arrays for batched lookups: ``(sets, n_sets, ways)``.

        The vectorized replay binds these once per (warp, round) and
        performs the LRU update inline — hit iff ``line in
        sets[line % n_sets]``, touch by delete + re-insert, fill by
        insert + pop-front when over ``ways`` — exactly the rule
        :meth:`access`/:meth:`fill` implement. Mutating through this view
        bypasses :attr:`stats`; callers own their own counters.
        """
        return self._sets, self.n_sets, self.ways

    def fill(self, line: int) -> None:
        """Prefetch fill: install a line without a demand access."""
        cache_set = self._sets[line % self.n_sets]
        if line in cache_set:
            return
        self.stats.prefetch_fills += 1
        self._fill(cache_set, line)

    def _fill(self, cache_set: dict[int, None], line: int) -> None:
        cache_set[line] = None
        if len(cache_set) > self.ways:
            evict = next(iter(cache_set))
            del cache_set[evict]

    def reset_stats(self) -> None:
        self.stats = CacheStats()
