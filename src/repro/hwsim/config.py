"""GPU configuration (Table I of the paper) and vendor variants.

The default configuration mirrors the paper's simulated GPU: 8 SMs at
1365 MHz, 128 SIMT lanes per SM, 128 KB L1 per SM (128 B lines), a 4 MB
shared L2, and one RT unit per SM with an 8-entry warp buffer. Fixed-
function cost constants model the relative throughputs the paper relies
on: hardware ray-box and ray-triangle tests are fast, hardware ray-sphere
tests have lower throughput (the Figure 22 discussion), and custom
software intersection shaders are an order of magnitude slower (the
Figure 5 comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GpuConfig:
    """All architectural parameters of the timing model."""

    name: str = "grtx-sim"
    # Table I.
    n_sms: int = 8
    clock_mhz: float = 1365.0
    simt_lanes: int = 128
    warp_size: int = 32
    l1_bytes: int = 128 * 1024
    l1_line_bytes: int = 128
    l1_ways: int = 256
    l1_latency: int = 20
    l2_bytes: int = 4 * 1024 * 1024
    l2_line_bytes: int = 128
    l2_ways: int = 16
    l2_latency: int = 165
    dram_latency: int = 480
    # "flat" charges `dram_latency` per DRAM access; "banked" routes
    # accesses through the open-page row-buffer model in
    # :mod:`repro.hwsim.dram` (latency then varies per access).
    dram_model: str = "flat"
    rt_units_per_sm: int = 1
    warp_buffer_size: int = 8

    # Fixed-function intersection throughput (cycles of RT-unit occupancy).
    box_test_cycles: float = 1.0  # one wide-node box test (parallel lanes)
    tri_tests_per_cycle: float = 2.0
    sphere_test_cycles: float = 2.0  # lower-throughput HW sphere unit
    transform_cycles: float = 2.0  # TLAS instance ray transform
    custom_test_cycles: float = 32.0  # software intersection shader

    # Shader-side costs (programmable cores).
    anyhit_base_cycles: float = 18.0
    kbuffer_op_cycles: float = 6.0  # insertion-sort step, register k-buffer
    kbuffer_soa_extra_cycles: float = 2.5  # global-memory SoA k-buffer traffic
    blend_cycles: float = 24.0  # SH eval + alpha accumulate per Gaussian
    shader_parallelism: float = 4.0  # concurrent shader warps per SM

    # Multi-round orchestration.
    round_overhead_cycles: float = 220.0  # traceRayEXT relaunch + raygen work
    issue_cycles: float = 1.0  # per node processed by the RT unit
    merged_issue_cycles: float = 0.25  # warp-coalesced duplicate request
    # In-flight request merging window (MSHR-like): duplicate node requests
    # from rays of the same warp merge only while the original request is
    # still in flight. Kept small: over-merging makes shared-BLAS fetches
    # free, which overstates GRTX-SW's fetch reduction.
    merge_window_size: int = 8

    # Whether node fetches are issued by the RT unit (NVIDIA/Intel style)
    # or by shader cores (AMD style): shader-issued fetches pay an extra
    # per-fetch instruction cost.
    shader_issued_fetch_cycles: float = 0.0
    # Scale factor on BVH sizes (AMD builds larger BVHs; Section VI).
    bvh_size_scale: float = 1.0
    # Maximum single buffer allocation (Vulkan limit, bytes). ``None``
    # disables the check. On AMD this is 4 GB and makes the monolithic
    # baselines fail to run (Figure 24).
    max_buffer_bytes: int | None = None

    # Sibling-node prefetcher (Section V-A) enabled?
    prefetch_enabled: bool = True

    # Rasterizer cost model (Figure 4a): per-unit costs, normalized by the
    # same clock so raster and RT land on one cycle axis.
    raster_preprocess_cycles: float = 40.0
    raster_pair_cycles: float = 1.2
    raster_sort_op_cycles: float = 0.6
    raster_parallelism: float = 128.0

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert model cycles to milliseconds at the configured clock."""
        return cycles / (self.clock_mhz * 1e3)

    @classmethod
    def rtx_like(cls) -> "GpuConfig":
        """The paper's default simulated GPU (Table I)."""
        return cls()

    @classmethod
    def amd_like(cls, scene_scale: float = 1.0) -> "GpuConfig":
        """An RDNA-style GPU for the Figure 24 cross-vendor experiment.

        Differences from the default: node fetches are issued by shader
        cores (only intersection math is fixed-function), the BVH builder
        produces ~1.8x larger structures, and Vulkan caps single buffer
        allocations at 4 GB. ``scene_scale`` shrinks the allocation cap in
        proportion to our down-scaled scenes so the same workloads exceed
        it exactly as the paper's full-size scenes do.
        """
        cap = int(4 * 1024 ** 3 * scene_scale)
        return replace(
            cls(),
            name="amd-like",
            shader_issued_fetch_cycles=2.0,
            bvh_size_scale=1.8,
            max_buffer_bytes=cap,
        )

    def table1_rows(self) -> list[tuple[str, str]]:
        """The simulation-configuration rows of Table I."""
        return [
            ("# Streaming Multiprocessors (SM)", f"{self.n_sms}, {self.clock_mhz:.0f} MHz, in-order"),
            ("SIMT Lanes per SM", f"{self.simt_lanes} (4 warp schedulers)"),
            ("L1D Cache", f"{self.l1_bytes // 1024} KB, {self.l1_line_bytes}B line, "
                          f"{self.l1_ways}-way LRU, {self.l1_latency} cycles"),
            ("L2 Cache (Unified)", f"{self.l2_bytes // (1024 * 1024)} MB, {self.l2_line_bytes}B line, "
                                   f"{self.l2_ways}-way LRU, {self.l2_latency} cycles"),
            ("# RT Units per SM", str(self.rt_units_per_sm)),
            ("Warp Buffer Size", str(self.warp_buffer_size)),
        ]
