"""RT-unit checkpoint hardware accounting (Table III, Figure 20).

GRTX-HW extends each RT unit's warp buffer with checkpoint bookkeeping:
per thread a replay flag and source/destination offsets into the (global
memory resident) checkpoint buffer, plus per-RT-unit source/destination
base addresses and a max-size register. Table III totals this at 1.05 KB
per RT core; the checkpoint and eviction buffers themselves live in
global memory, sized by the maximum number of concurrently resident rays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.config import GpuConfig
from repro.rt.kbuffer import CHECKPOINT_ENTRY_BYTES, EVICTION_ENTRY_BYTES


@dataclass(frozen=True)
class CheckpointHardware:
    """Per-RT-core storage added by GRTX-HW."""

    per_thread_bits: int
    threads_per_warp: int
    warps: int
    base_register_bytes: int

    @property
    def per_thread_bytes(self) -> float:
        return self.per_thread_bits / 8.0

    @property
    def total_bytes(self) -> float:
        return self.per_thread_bytes * self.threads_per_warp * self.warps + self.base_register_bytes

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0


def checkpoint_hardware_cost(config: GpuConfig | None = None) -> CheckpointHardware:
    """Table III: 1-bit replay flag + 2 B src offset + 2 B dst offset per
    thread, times 32 threads times 8 warp-buffer entries, plus 8 B src
    address, 8 B dst address and 2 B max size per RT core."""
    config = config or GpuConfig()
    return CheckpointHardware(
        per_thread_bits=1 + 16 + 16,
        threads_per_warp=config.warp_size,
        warps=config.warp_buffer_size,
        base_register_bytes=8 + 8 + 2,
    )


def checkpoint_buffer_bytes(
    ckpt_high_water: int,
    evict_high_water: int,
    config: GpuConfig | None = None,
    max_warps_per_sm: int = 32,
) -> tuple[int, int]:
    """Global-memory allocation for the checkpoint and eviction buffers.

    The buffers are sized by the worst-case per-ray entry count times the
    maximum number of concurrently resident rays (max warps/SM x warp
    size x SMs), doubled for the ping-pong source/destination pair in the
    checkpoint case. Returns ``(checkpoint_bytes, eviction_bytes)``.
    """
    config = config or GpuConfig()
    concurrent_rays = config.n_sms * max_warps_per_sm * config.warp_size
    ckpt = 2 * ckpt_high_water * CHECKPOINT_ENTRY_BYTES * concurrent_rays
    evict = 2 * evict_high_water * EVICTION_ENTRY_BYTES * concurrent_rays
    return ckpt, evict
