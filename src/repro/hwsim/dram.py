"""Banked DRAM model with row-buffer locality.

The paper's flat ``dram_latency`` (Table I gives only a memory clock)
hides an effect the checkpoint mechanism interacts with: BVH node fetches
that fall in an already-open DRAM row return at CAS latency, while row
conflicts pay precharge + activate + CAS. GRTX-SW's compact shared BLAS
concentrates traffic into few rows (more row hits); the monolithic BVH
scatters fetches across gigabytes (more conflicts). Enabling this model
(``GpuConfig.dram_model = "banked"``) refines fetch latency without
changing any relative conclusion — the flat model remains the default so
published numbers stay reproducible.

Timings follow GDDR6-class parts, expressed in GPU core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DramTimings:
    """Row-buffer timing parameters (GPU core cycles)."""

    cas_cycles: int = 320  # row-buffer hit: CAS + transfer + interconnect
    activate_cycles: int = 110  # RAS: open a closed row
    precharge_cycles: int = 110  # close a conflicting open row
    n_channels: int = 8
    banks_per_channel: int = 16
    row_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.n_channels < 1 or self.banks_per_channel < 1:
            raise ValueError("channel and bank counts must be positive")
        if self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row_bytes must be a power of two")

    @property
    def row_hit_latency(self) -> int:
        return self.cas_cycles

    @property
    def row_empty_latency(self) -> int:
        return self.cas_cycles + self.activate_cycles

    @property
    def row_conflict_latency(self) -> int:
        return self.cas_cycles + self.activate_cycles + self.precharge_cycles


@dataclass
class DramStats:
    """Access breakdown by row-buffer outcome."""

    row_hits: int = 0
    row_empties: int = 0
    row_conflicts: int = 0

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_empties + self.row_conflicts

    @property
    def row_hit_rate(self) -> float:
        total = self.accesses
        return self.row_hits / total if total else 0.0


class DramModel:
    """Open-page banked DRAM: per-bank open-row tracking.

    Address mapping interleaves cache lines across channels then banks
    (the standard GPU mapping that spreads a linear stream), with the row
    index taken above the bank bits so sequential rows of one structure
    map to one bank's consecutive rows.
    """

    __slots__ = ("timings", "stats", "_open_rows", "_n_banks")

    def __init__(self, timings: DramTimings | None = None) -> None:
        self.timings = timings or DramTimings()
        self._n_banks = self.timings.n_channels * self.timings.banks_per_channel
        self._open_rows: list[int | None] = [None] * self._n_banks
        self.stats = DramStats()

    def _map(self, addr: int) -> tuple[int, int]:
        """(bank index, row index) for a byte address."""
        t = self.timings
        row_addr = addr // t.row_bytes
        bank = row_addr % self._n_banks
        row = row_addr // self._n_banks
        return bank, row

    def access(self, addr: int) -> int:
        """Access one address; returns the latency in core cycles."""
        bank, row = self._map(addr)
        open_row = self._open_rows[bank]
        t = self.timings
        if open_row == row:
            self.stats.row_hits += 1
            return t.row_hit_latency
        self._open_rows[bank] = row
        if open_row is None:
            self.stats.row_empties += 1
            return t.row_empty_latency
        self.stats.row_conflicts += 1
        return t.row_conflict_latency

    def reset(self) -> None:
        """Close all rows and clear statistics."""
        self._open_rows = [None] * self._n_banks
        self.stats = DramStats()
