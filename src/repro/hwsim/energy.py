"""Energy model for the GRTX GPU.

Architecture papers conventionally report energy next to performance;
GRTX's HPCA text reports only time, but its two mechanisms are both
energy optimizations in disguise — fewer node fetches (GRTX-HW) cut
DRAM/L2 energy, and a resident shared BLAS (GRTX-SW) converts DRAM
reads into L1 reads at ~1/100 the energy per access. This model applies
per-event energy constants to the counters :class:`TimingReport` already
collects, following the usual CACTI-style accounting: each memory level
has a per-access cost, fixed-function tests and shader ops have per-op
costs, and static power integrates over the modeled runtime.

The constants are representative of a 7nm-class GPU (pJ per event).
Absolute joules are a model; the figure of merit is the *ratio* between
configurations, which tracks the fetch/L2/DRAM ratios of Figures 14-17.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim.config import GpuConfig
from repro.hwsim.replay import TimingReport


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy constants (picojoules)."""

    l1_access_pj: float = 25.0
    l2_access_pj: float = 120.0
    dram_access_pj: float = 2500.0
    box_test_pj: float = 8.0
    prim_test_pj: float = 12.0
    shader_op_pj: float = 4.0  # per shader cycle (sort/blend/custom-isect)
    rt_issue_pj: float = 2.0  # per node the RT unit processes
    static_mw_per_sm: float = 150.0  # leakage + clocking per SM

    def __post_init__(self) -> None:
        for name in ("l1_access_pj", "l2_access_pj", "dram_access_pj"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown for one replayed render (nanojoules)."""

    l1_nj: float
    l2_nj: float
    dram_nj: float
    compute_nj: float
    static_nj: float

    @property
    def dynamic_nj(self) -> float:
        return self.l1_nj + self.l2_nj + self.dram_nj + self.compute_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.static_nj

    @property
    def memory_fraction(self) -> float:
        """Share of dynamic energy spent in the memory hierarchy."""
        dyn = self.dynamic_nj
        return (self.l1_nj + self.l2_nj + self.dram_nj) / dyn if dyn else 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "l1_nj": round(self.l1_nj, 1),
            "l2_nj": round(self.l2_nj, 1),
            "dram_nj": round(self.dram_nj, 1),
            "compute_nj": round(self.compute_nj, 1),
            "static_nj": round(self.static_nj, 1),
            "total_nj": round(self.total_nj, 1),
        }


def estimate_energy(
    report: TimingReport,
    config: GpuConfig | None = None,
    params: EnergyParams | None = None,
) -> EnergyReport:
    """Apply the energy constants to a replay's event counters."""
    config = config or GpuConfig()
    params = params or EnergyParams()

    l1 = report.l1_accesses * params.l1_access_pj
    l2 = report.l2_accesses * params.l2_access_pj
    dram = report.dram_accesses * params.dram_access_pj

    # Compute: RT-unit issue slots plus shader cycles. TimingReport keeps
    # traversal/sort/blend cycles; shader energy scales with the cycles the
    # programmable cores were actually occupied (undo the parallelism
    # division so energy counts work, not critical-path time).
    shader_cycles = (report.sorting_cycles + report.blending_cycles) * config.shader_parallelism
    compute = (
        report.node_fetches * params.rt_issue_pj
        + shader_cycles * params.shader_op_pj
    )

    seconds = report.time_ms * 1e-3
    static_nj = params.static_mw_per_sm * config.n_sms * seconds * 1e6  # mW*s -> nJ

    return EnergyReport(
        l1_nj=l1 * 1e-3,
        l2_nj=l2 * 1e-3,
        dram_nj=dram * 1e-3,
        compute_nj=compute * 1e-3,
        static_nj=static_nj,
    )
