"""Trace replay: turn recorded fetch traces into cycles and cache stats.

The model follows Figure 9's architecture at a trace-driven level of
detail:

* rays are grouped into 32-wide warps; warps are distributed round-robin
  over SMs, each with a private L1 and one RT unit; all SMs share the L2;
* within one (warp, round), duplicate node requests from different rays
  are merged (the coalescing the paper credits for part of GRTX-SW's
  fetch reduction) — the first request is a *node fetch*, the rest cost a
  fraction of an issue slot;
* event streams of the rays in the warps of one SM are interleaved
  round-robin, so the L1 sees the real contention between divergent rays;
* a fetch's stall contribution is its memory latency divided by the warp
  buffer depth (8 resident warps hide each other's latency);
* intersection-test work occupies the RT unit per its fixed-function
  throughput; any-hit sorting, blending and software intersection shaders
  occupy the programmable cores;
* each (warp, round) pays a traceRayEXT relaunch overhead — the straggler
  cost that makes very small k values lose in Figure 18.

The absolute cycle counts are a model, not RTL truth; the paper's claims
are relative (speedups, fetch ratios, hit rates), which is what this
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hwsim.cache import SetAssociativeCache
from repro.hwsim.config import GpuConfig
from repro.hwsim.dram import DramModel
from repro.render.raster import RasterResult
from repro.rt.recorder import (
    PRIM_CUSTOM,
    PRIM_SPHERE,
    PRIM_TRANSFORM,
    PRIM_TRI,
    RayTrace,
)


@dataclass
class TimingReport:
    """Everything the evaluation figures need from one replay."""

    cycles: float = 0.0
    time_ms: float = 0.0
    node_fetches: int = 0
    merged_requests: int = 0
    fetch_latency_sum: float = 0.0
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    dram_accesses: int = 0
    prefetches: int = 0
    traversal_cycles: float = 0.0
    sorting_cycles: float = 0.0
    blending_cycles: float = 0.0
    rounds_total: int = 0
    footprint_bytes: int = 0
    sm_cycles: list[float] = field(default_factory=list)
    label_cycles: dict[str, float] = field(default_factory=dict)
    #: DRAM row-buffer hit rate; populated only under the banked model.
    dram_row_hit_rate: float = 0.0

    @property
    def avg_fetch_latency(self) -> float:
        return self.fetch_latency_sum / self.node_fetches if self.node_fetches else 0.0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0


class _WarpRoundCost:
    """Accumulates the cost of one (warp, round)."""

    __slots__ = ("mem", "issue", "ray_compute", "shader")

    def __init__(self, n_rays: int) -> None:
        self.mem = 0.0
        self.issue = 0.0
        self.ray_compute = [0.0] * n_rays
        self.shader = 0.0


def _group_warps(traces: list[RayTrace], warp_size: int) -> list[list[RayTrace]]:
    """Chunk rays into warps, keeping primary and secondary rays apart
    (secondary rays are spawned as separate warps, and Figure 23 needs
    their cycles attributed separately)."""
    warps: list[list[RayTrace]] = []
    for label in ("primary", "secondary"):
        rays = [t for t in traces if t.label == label]
        for i in range(0, len(rays), warp_size):
            warps.append(rays[i : i + warp_size])
    return warps


def replay(
    traces: list[RayTrace],
    config: GpuConfig | None = None,
    kbuffer_layout: str = "soa",
    treelet_map: dict[int, list[tuple[int, int]]] | None = None,
) -> TimingReport:
    """Replay recorded traces through the timing model.

    ``treelet_map`` (from :func:`repro.hwsim.treelet.build_treelet_map`)
    enables treelet prefetching: on a demand miss whose address roots a
    treelet, the treelet's lines are staged into the L1 without stalling
    the ray.
    """
    config = config or GpuConfig()
    report = TimingReport()
    if not traces:
        return report

    warps = _group_warps(traces, config.warp_size)
    n_sms = config.n_sms
    l1s = [
        SetAssociativeCache(config.l1_bytes, config.l1_line_bytes, config.l1_ways, f"l1-{i}")
        for i in range(n_sms)
    ]
    l2 = SetAssociativeCache(config.l2_bytes, config.l2_line_bytes, config.l2_ways, "l2")
    dram = DramModel() if config.dram_model == "banked" else None

    sm_of_warp = [w % n_sms for w in range(len(warps))]
    sm_cycles = [0.0] * n_sms
    label_cycles: dict[str, float] = {"primary": 0.0, "secondary": 0.0}
    overlap = float(config.warp_buffer_size)
    kbuf_cycles = config.kbuffer_op_cycles + (
        config.kbuffer_soa_extra_cycles if kbuffer_layout == "soa" else 0.0
    )

    max_rounds = max((t.n_rounds for t in traces), default=0)
    report.rounds_total = sum(t.n_rounds for t in traces)
    touched_lines: set[int] = set()

    for round_index in range(max_rounds):
        for warp_index, warp in enumerate(warps):
            sm = sm_of_warp[warp_index]
            l1 = l1s[sm]
            rays = [t for t in warp if round_index < t.n_rounds]
            if not rays:
                continue
            cost = _WarpRoundCost(len(rays))
            # Bounded LRU merge window (MSHR-like request coalescing).
            merge_window: dict[int, None] = {}
            merge_cap = config.merge_window_size

            iters = [ray.rounds[round_index].iter_events() for ray in rays]
            active = list(range(len(rays)))
            while active:
                still_active = []
                for ray_slot in active:
                    event = next(iters[ray_slot], None)
                    if event is None:
                        continue
                    still_active.append(ray_slot)
                    addr, nbytes, _kind, box, prim, prim_kind, prefetch = event

                    # -- memory ------------------------------------------
                    if addr in merge_window:
                        # Refresh recency: repeated hot nodes (shared BLAS)
                        # keep merging for as long as they stay in flight.
                        del merge_window[addr]
                        merge_window[addr] = None
                        report.merged_requests += 1
                        cost.issue += config.merged_issue_cycles
                    else:
                        merge_window[addr] = None
                        if len(merge_window) > merge_cap:
                            del merge_window[next(iter(merge_window))]
                        report.node_fetches += 1
                        cost.issue += config.issue_cycles + config.shader_issued_fetch_cycles
                        latency = 0
                        for line in l1.lines_of(addr, nbytes):
                            touched_lines.add(line)
                            report.l1_accesses += 1
                            if l1.access(line):
                                report.l1_hits += 1
                                latency = max(latency, config.l1_latency)
                            else:
                                report.l2_accesses += 1
                                if l2.access(line):
                                    latency = max(latency, config.l2_latency)
                                else:
                                    report.dram_accesses += 1
                                    if dram is not None:
                                        dram_lat = dram.access(line * config.l2_line_bytes)
                                        latency = max(latency, config.l2_latency + dram_lat)
                                    else:
                                        latency = max(latency, config.dram_latency)
                        report.fetch_latency_sum += latency
                        cost.mem += latency / overlap

                        if treelet_map is not None and latency > config.l1_latency:
                            # Treelet prefetch triggers on demand misses of
                            # treelet roots; lines fill the L1 off the
                            # critical path.
                            for pf_addr, pf_bytes in treelet_map.get(addr, ()):
                                for line in l1.lines_of(pf_addr, pf_bytes):
                                    if l1.contains(line):
                                        continue
                                    report.prefetches += 1
                                    report.l2_accesses += 1
                                    if not l2.access(line):
                                        report.dram_accesses += 1
                                        if dram is not None:
                                            dram.access(line * config.l2_line_bytes)
                                    l1.fill(line)

                    if config.prefetch_enabled and prefetch:
                        for pf_addr, pf_bytes in prefetch:
                            if pf_addr in merge_window:
                                continue
                            for line in l1.lines_of(pf_addr, pf_bytes):
                                if l1.contains(line):
                                    continue
                                report.prefetches += 1
                                report.l2_accesses += 1
                                if not l2.access(line):
                                    report.dram_accesses += 1
                                l1.fill(line)

                    # -- compute -----------------------------------------
                    rt_compute = 0.0
                    if box:
                        rt_compute += config.box_test_cycles
                    if prim:
                        if prim_kind == PRIM_TRI:
                            rt_compute += prim / config.tri_tests_per_cycle
                        elif prim_kind == PRIM_SPHERE:
                            rt_compute += prim * config.sphere_test_cycles
                        elif prim_kind == PRIM_TRANSFORM:
                            rt_compute += prim * config.transform_cycles
                        elif prim_kind == PRIM_CUSTOM:
                            cost.shader += prim * config.custom_test_cycles
                    cost.ray_compute[ray_slot] += rt_compute
                active = still_active

            # Shader work recorded per round (any-hit sorting + blending).
            sorting = 0.0
            blending = 0.0
            for ray in rays:
                rt_round = ray.rounds[round_index]
                sorting += (
                    rt_round.anyhit_calls * config.anyhit_base_cycles
                    + rt_round.kbuffer_ops * kbuf_cycles
                )
                blending += rt_round.blended * config.blend_cycles

            traversal = (
                cost.mem
                + cost.issue
                + max(cost.ray_compute)
                + cost.shader / config.shader_parallelism
                + config.round_overhead_cycles / overlap
            )
            sorting /= config.shader_parallelism
            blending /= config.shader_parallelism
            warp_cycles = traversal + sorting + blending

            sm_cycles[sm] += warp_cycles
            label_cycles[warp[0].label] += warp_cycles
            report.traversal_cycles += traversal
            report.sorting_cycles += sorting
            report.blending_cycles += blending

    report.footprint_bytes = len(touched_lines) * config.l1_line_bytes
    if dram is not None:
        report.dram_row_hit_rate = dram.stats.row_hit_rate
    report.sm_cycles = sm_cycles
    report.cycles = max(sm_cycles)
    report.time_ms = config.cycles_to_ms(report.cycles)
    report.label_cycles = label_cycles
    return report


def raster_cycles(result: RasterResult, config: GpuConfig | None = None) -> float:
    """Cost model for the 3DGS rasterizer on the same GPU (Figure 4a).

    Rasterization is compute-bound and embarrassingly parallel: per-splat
    preprocessing, the global radix sort, and per (Gaussian, pixel) blend
    work all scale across the SIMT lanes.
    """
    config = config or GpuConfig()
    work = (
        result.preprocess_ops * config.raster_preprocess_cycles
        + result.pair_ops * config.raster_pair_cycles
        + result.sort_ops * config.raster_sort_op_cycles
    )
    return work / (config.raster_parallelism * config.n_sms)
