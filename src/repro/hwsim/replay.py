"""Trace replay: turn recorded fetch traces into cycles and cache stats.

The model follows Figure 9's architecture at a trace-driven level of
detail:

* rays are grouped into 32-wide warps; warps are distributed round-robin
  over SMs, each with a private L1 and one RT unit; all SMs share the L2;
* within one (warp, round), duplicate node requests from different rays
  are merged (the coalescing the paper credits for part of GRTX-SW's
  fetch reduction) — the first request is a *node fetch*, the rest cost a
  fraction of an issue slot;
* event streams of the rays in the warps of one SM are interleaved
  round-robin, so the L1 sees the real contention between divergent rays;
* a fetch's stall contribution is its memory latency divided by the warp
  buffer depth (8 resident warps hide each other's latency);
* intersection-test work occupies the RT unit per its fixed-function
  throughput; any-hit sorting, blending and software intersection shaders
  occupy the programmable cores;
* each (warp, round) pays a traceRayEXT relaunch overhead — the straggler
  cost that makes very small k values lose in Figure 18.

The absolute cycle counts are a model, not RTL truth; the paper's claims
are relative (speedups, fetch ratios, hit rates), which is what this
reproduces.

Implementation: :func:`replay` consumes each (warp, round) as *batches*
over the recorder's zero-copy event views — the round-robin interleave
order, per-event line spans and RT-unit compute costs are all derived
with numpy, and only the inherently sequential part (the MSHR-like merge
window and the LRU tag updates, whose state feeds back into what the
next event sees) remains a Python loop over pre-decoded flat lists. The
original one-event-at-a-time implementation is kept verbatim as
:func:`replay_reference`: it is the semantic golden model the test suite
holds :func:`replay` bit-compatible with, and the baseline
``benchmarks/bench_replay.py`` measures the vectorization speedup
against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.hwsim.cache import SetAssociativeCache
from repro.hwsim.config import GpuConfig
from repro.hwsim.dram import DramModel
from repro.obs import emit_span, get_registry
from repro.render.raster import RasterResult
from repro.rt.recorder import (
    PRIM_CUSTOM,
    PRIM_SPHERE,
    PRIM_TRANSFORM,
    PRIM_TRI,
    RayTrace,
)


@dataclass
class TimingReport:
    """Everything the evaluation figures need from one replay."""

    cycles: float = 0.0
    time_ms: float = 0.0
    node_fetches: int = 0
    merged_requests: int = 0
    fetch_latency_sum: float = 0.0
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    dram_accesses: int = 0
    prefetches: int = 0
    traversal_cycles: float = 0.0
    sorting_cycles: float = 0.0
    blending_cycles: float = 0.0
    rounds_total: int = 0
    footprint_bytes: int = 0
    sm_cycles: list[float] = field(default_factory=list)
    label_cycles: dict[str, float] = field(default_factory=dict)
    #: DRAM row-buffer hit rate; populated only under the banked model.
    dram_row_hit_rate: float = 0.0

    @property
    def avg_fetch_latency(self) -> float:
        return self.fetch_latency_sum / self.node_fetches if self.node_fetches else 0.0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0


class _WarpRoundCost:
    """Accumulates the cost of one (warp, round)."""

    __slots__ = ("mem", "issue", "ray_compute", "shader")

    def __init__(self, n_rays: int) -> None:
        self.mem = 0.0
        self.issue = 0.0
        self.ray_compute = [0.0] * n_rays
        self.shader = 0.0


def _group_warps(traces: list[RayTrace], warp_size: int) -> list[list[RayTrace]]:
    """Chunk rays into warps, keeping primary and secondary rays apart
    (secondary rays are spawned as separate warps, and Figure 23 needs
    their cycles attributed separately)."""
    warps: list[list[RayTrace]] = []
    for label in ("primary", "secondary"):
        rays = [t for t in traces if t.label == label]
        for i in range(0, len(rays), warp_size):
            warps.append(rays[i : i + warp_size])
    return warps


def _build_caches(config):
    """The modeled cache hierarchy: per-SM L1 tags plus the shared L2."""
    l1s = [
        SetAssociativeCache(config.l1_bytes, config.l1_line_bytes, config.l1_ways, f"l1-{i}")
        for i in range(config.n_sms)
    ]
    l2 = SetAssociativeCache(config.l2_bytes, config.l2_line_bytes, config.l2_ways, "l2")
    return l1s, l2


def _replay_setup(traces, config):
    """State shared by both replay implementations."""
    warps = _group_warps(traces, config.warp_size)
    l1s, l2 = _build_caches(config)
    dram = DramModel() if config.dram_model == "banked" else None
    sm_of_warp = [w % config.n_sms for w in range(len(warps))]
    return warps, l1s, l2, dram, sm_of_warp


def _expand_spans(first: np.ndarray, spans: np.ndarray) -> np.ndarray:
    """``[first_i, first_i + spans_i)`` for every i, concatenated."""
    total = int(spans.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offs = np.repeat(spans.cumsum() - spans, spans)
    return np.repeat(first, spans) + np.arange(total, dtype=np.int64) - offs


def replay(
    traces: list[RayTrace],
    config: GpuConfig | None = None,
    kbuffer_layout: str = "soa",
    treelet_map: dict[int, list[tuple[int, int]]] | None = None,
) -> TimingReport:
    """Replay recorded traces through the timing model (batched).

    Semantically identical to :func:`replay_reference` — the test suite
    pins the two together on real renders — but each (warp, round) is
    decoded, interleaved and costed as numpy batches, with only the
    stateful merge-window + cache-tag walk left sequential.

    ``treelet_map`` (from :func:`repro.hwsim.treelet.build_treelet_map`)
    enables treelet prefetching: on a demand miss whose address roots a
    treelet, the treelet's lines are staged into the L1 without stalling
    the ray.
    """
    config = config or GpuConfig()
    report = TimingReport()
    # Same geometry validation the reference performs by constructing
    # its caches (the fast path never builds them).
    for size, line, ways in ((config.l1_bytes, config.l1_line_bytes,
                              config.l1_ways),
                             (config.l2_bytes, config.l2_line_bytes,
                              config.l2_ways)):
        if size % (line * ways) != 0:
            raise ValueError("cache size must be a multiple of line_bytes * ways")
    if not traces:
        return report

    # Per-phase wall time (seconds), flushed into the replay.phase.*
    # histograms at the end: decode (trace decode + global interleave),
    # cost (RT-unit/shader compute + cycle assembly), tagwalk (merge
    # window + cache tag walk — the sequential part worth optimizing).
    started_ns = time.time_ns()
    phase_seconds = {"decode": 0.0, "cost": 0.0, "tagwalk": 0.0}
    _mark = [time.perf_counter()]

    def _phase(name: str) -> None:
        now = time.perf_counter()
        phase_seconds[name] += now - _mark[0]
        _mark[0] = now

    warps = _group_warps(traces, config.warp_size)
    dram = DramModel() if config.dram_model == "banked" else None
    n_sms = config.n_sms
    sm_of_warp = [w % n_sms for w in range(len(warps))]
    warp_size = config.warp_size
    sm_cycles = [0.0] * n_sms
    label_cycles: dict[str, float] = {"primary": 0.0, "secondary": 0.0}
    overlap = float(config.warp_buffer_size)
    kbuf_cycles = config.kbuffer_op_cycles + (
        config.kbuffer_soa_extra_cycles if kbuffer_layout == "soa" else 0.0
    )

    max_rounds = max((t.n_rounds for t in traces), default=0)
    report.rounds_total = sum(t.n_rounds for t in traces)

    # ------------------------------------------------------------------
    # Pass 1 — enumerate the (round, warp) segments in replay order and
    # decode every round stream through its zero-copy view. Segment ids
    # are monotone in processing order, so one global sort later yields
    # the exact reference interleave.
    # ------------------------------------------------------------------
    seg_sm: list[int] = []
    seg_label: list[str] = []
    seg_sorting: list[float] = []
    seg_blending: list[float] = []
    ev_views: list[np.ndarray] = []
    pf_views: list[np.ndarray] = []
    ev_seg: list[int] = []
    ev_slot: list[int] = []
    anyhit_c = config.anyhit_base_cycles
    blend_c = config.blend_cycles
    warp_rounds = [[ray.rounds for ray in warp] for warp in warps]
    for round_index in range(max_rounds):
        for warp_index, rounds_of in enumerate(warp_rounds):
            slot = 0
            sorting = blending = 0.0
            seg = len(seg_sm)
            for rounds in rounds_of:
                if round_index >= len(rounds):
                    continue
                rt_round = rounds[round_index]
                sorting += (rt_round.anyhit_calls * anyhit_c
                            + rt_round.kbuffer_ops * kbuf_cycles)
                blending += rt_round.blended * blend_c
                if len(rt_round.stream):
                    ev_views.append(rt_round.events_view())
                    ev_seg.append(seg)
                    ev_slot.append(slot)
                    if len(rt_round.pf):
                        pf_views.append(rt_round.prefetch_view())
                slot += 1
            if slot == 0:
                continue
            seg_sm.append(sm_of_warp[warp_index])
            seg_label.append(warps[warp_index][0].label)
            seg_sorting.append(sorting)
            seg_blending.append(blending)
    n_seg = len(seg_sm)
    _phase("decode")

    touched_lines: set[int] = set()
    fast_footprint: int | None = None
    seg_mem = [0.0] * n_seg
    seg_fetch = [0] * n_seg
    seg_merged = [0] * n_seg
    seg_shader = np.zeros(n_seg)
    seg_compute = np.zeros(n_seg)

    if ev_views:
        # -- global decode + interleave (vectorized) -------------------
        counts = np.asarray([ev.shape[0] for ev in ev_views], dtype=np.int64)
        main = np.concatenate(ev_views) if len(ev_views) > 1 else ev_views[0]
        n_events = main.shape[0]
        seg_ids = np.repeat(np.asarray(ev_seg, dtype=np.int64), counts)
        slot_ids = np.repeat(np.asarray(ev_slot, dtype=np.int64), counts)
        offs = counts.cumsum() - counts
        pos_ids = np.arange(n_events, dtype=np.int64) - np.repeat(offs, counts)
        # (seg, pos, slot) triples are unique, so one combined-key sort
        # yields the reference interleave: segments in replay order and,
        # within one, round-robin with dropout == (position, slot).
        max_pos = int(counts.max())
        order = np.argsort(
            (seg_ids * max_pos + pos_ids) * warp_size + slot_ids)

        addr = main[:, 0][order]
        nbytes = main[:, 1][order]
        box = main[:, 3][order]
        prim = main[:, 4][order]
        pkind = main[:, 5][order]
        npf = main[:, 6]
        line_bytes = config.l1_line_bytes
        first_line = addr // line_bytes
        last_line = (addr + np.maximum(nbytes, 1) - 1) // line_bytes
        seg_o = seg_ids[order]
        slot_o = slot_ids[order]

        # Prefetch pairs are concatenated in the same order as ``main``'s
        # source views; a global cumsum gives each record's slice into
        # the concatenated pair table.
        pf_start = (np.cumsum(npf) - npf)[order]
        npf_o = npf[order]
        if pf_views:
            pf_all = (np.concatenate(pf_views)
                      if len(pf_views) > 1 else pf_views[0])
            pf_addr_l = pf_all[:, 0].tolist()
            pf_nbytes_l = pf_all[:, 1].tolist()
        else:
            pf_addr_l = pf_nbytes_l = ()
        _phase("decode")

        # -- RT-unit / shader compute (vectorized) ---------------------
        rt_comp = (
            (box > 0) * config.box_test_cycles
            + (pkind == PRIM_TRI) * (prim / config.tri_tests_per_cycle)
            + (pkind == PRIM_SPHERE) * (prim * config.sphere_test_cycles)
            + (pkind == PRIM_TRANSFORM) * (prim * config.transform_cycles)
        )
        # Per-(segment, slot) sums, then the per-segment straggler max.
        per_slot = np.bincount(seg_o * warp_size + slot_o, weights=rt_comp,
                               minlength=n_seg * warp_size)
        seg_compute = per_slot.reshape(n_seg, warp_size).max(axis=1)
        custom = pkind == PRIM_CUSTOM
        if custom.any():
            seg_shader = np.bincount(
                seg_o[custom],
                weights=prim[custom] * config.custom_test_cycles,
                minlength=n_seg)
        _phase("cost")

        # -- merge window (the truly sequential state) -----------------
        # An MSHR-like LRU window per (warp, round): whether a request
        # merges depends on the exact interleave prefix, so this walk
        # stays a (minimal) Python loop — a plain list beats a dict at
        # the window's size (8). It also resolves, per prefetch pair,
        # whether the pair was suppressed by an in-flight request.
        pf_sup = bytearray(len(pf_addr_l))
        merge_cap = config.merge_window_size
        prefetch_on = config.prefetch_enabled
        # Run compression: a request equal to its immediate predecessor
        # (same segment) is a guaranteed merge — stack distance zero —
        # and refreshing the already-most-recent window entry changes
        # nothing, so only run *heads* need the sequential walk. Warp-
        # coherent rays fetch the same node at the same traversal step,
        # which is precisely what makes these runs long.
        merged = np.zeros(n_events, dtype=bool)
        if n_events > 1 and merge_cap >= 1:
            # A zero-capacity window evicts every insert immediately, so
            # nothing ever merges — the duplicate-run shortcut below
            # only holds when the window can retain at least one entry.
            merged[1:] = (addr[1:] == addr[:-1]) & (seg_o[1:] == seg_o[:-1])
        heads = np.flatnonzero(~merged)
        head_addr_l = addr[heads].tolist()
        head_seg_l = seg_o[heads].tolist()
        n_heads = heads.shape[0]
        head_merged = bytearray(n_heads)
        if prefetch_on and len(pf_addr_l):
            # Window state is constant within a run, so a pair carried by
            # any event of run r sees the state right after r's head.
            pf_pos_arr = np.flatnonzero(npf_o)
            pf_run = np.searchsorted(heads, pf_pos_arr, side="right") - 1
            pf_run_l = pf_run.tolist()
            pf_base = pf_start[pf_pos_arr].tolist()
            pf_cnt = npf_o[pf_pos_arr].tolist()
        else:
            pf_run_l = pf_base = pf_cnt = []
        n_pf_ev = len(pf_run_l)
        kpf = 0
        next_pf = pf_run_l[0] if n_pf_ev else -1
        window: list[int] = []
        cur_seg = -1
        for h in range(n_heads):
            sg = head_seg_l[h]
            if sg != cur_seg:
                cur_seg = sg
                window = []
            a = head_addr_l[h]
            if a in window:
                # Refresh recency: repeated hot nodes (shared BLAS) keep
                # merging for as long as they stay in flight.
                window.remove(a)
                window.append(a)
                head_merged[h] = 1
            else:
                window.append(a)
                if len(window) > merge_cap:
                    del window[0]
            while h == next_pf:
                base = pf_base[kpf]
                for j in range(base, base + pf_cnt[kpf]):
                    if pf_addr_l[j] in window:
                        pf_sup[j] = 1
                kpf += 1
                next_pf = pf_run_l[kpf] if kpf < n_pf_ev else -1

        if n_heads:
            merged[heads[np.frombuffer(head_merged, dtype=np.uint8) != 0]] = True
        demand_ev = ~merged
        seg_fetch = np.bincount(seg_o[demand_ev], minlength=n_seg).tolist()
        seg_merged = np.bincount(seg_o[merged], minlength=n_seg).tolist()

        l1_lat = config.l1_latency
        l2_lat = config.l2_latency
        dram_lat = config.dram_latency
        l2_line_bytes = config.l2_line_bytes
        spans_all = last_line - first_line + 1
        sm_arr = np.asarray(seg_sm, dtype=np.int64)

        # Prefetch pairs that actually reach the cache hierarchy, in
        # processing order (record order within each event).
        if prefetch_on and len(pf_addr_l):
            pair_ev = np.repeat(np.arange(n_events, dtype=np.int64), npf_o)
            pair_idx = _expand_spans(pf_start, npf_o)
            keep = np.frombuffer(pf_sup, dtype=np.uint8)[pair_idx] == 0
            pair_ev = pair_ev[keep]
            pair_idx = pair_idx[keep]
            pa = pf_all[:, 0][pair_idx]
            pb = pf_all[:, 1][pair_idx]
            p_first = pa // line_bytes
            p_spans = (pa + np.maximum(pb, 1) - 1) // line_bytes - p_first + 1
        else:
            pair_ev = p_first = p_spans = np.empty(0, dtype=np.int64)

        l1_nsets = config.l1_bytes // (config.l1_line_bytes * config.l1_ways)
        l2_nsets = config.l2_bytes // (config.l2_line_bytes * config.l2_ways)
        fast_ok = False
        if treelet_map is None:
            # -- build the global touch stream -------------------------
            # Everything that can reach the tag arrays, in processing
            # order: demand lines of unmerged fetches, then each event's
            # unsuppressed prefetch pair lines.
            d_ev = np.flatnonzero(demand_ev)
            d_spans = spans_all[d_ev]
            d_lines = _expand_spans(first_line[d_ev], d_spans)
            d_touch_ev = np.repeat(d_ev, d_spans)
            nd = d_lines.size
            if p_first.size:
                p_lines = _expand_spans(p_first, p_spans)
                p_touch_ev = np.repeat(pair_ev, p_spans)
                t_lines = np.concatenate([d_lines, p_lines])
                t_ev = np.concatenate([d_touch_ev, p_touch_ev])
                # Within one event, demand lines precede its prefetch
                # lines (phase bit); the stable sort keeps record order.
                tkey = t_ev * 2
                tkey[nd:] += 1
                perm = np.argsort(tkey, kind="stable")
                t_lines_o = t_lines[perm]
                t_ev_o = t_ev[perm]
                d_mask_o = perm < nd
            else:
                t_lines_o = d_lines
                t_ev_o = d_touch_ev
                d_mask_o = np.ones(nd, dtype=bool)
            n_touch = t_lines_o.shape[0]
            t_sm_o = sm_arr[seg_o[t_ev_o]]

            # One stable sort of (line, SM) gives first-occurrences AND
            # the per-set distinct-line counts for the safety proof.
            key = t_lines_o * n_sms + t_sm_o
            korder = np.argsort(key, kind="stable")
            sk = key[korder]
            grp = np.empty(sk.size, dtype=bool)
            grp[:1] = True
            grp[1:] = sk[1:] != sk[:-1]
            uk = sk[grp]
            u_lines = uk // n_sms
            u_sm = uk - u_lines * n_sms
            # Eviction-safety: a set's insertions can only come from this
            # distinct candidate universe (prefetch attempts are fixed by
            # the merge flags, not by cache state). When every set fits
            # its associativity, LRU never evicts — so presence reduces
            # to "touched before" and the tag walk vectorizes exactly.
            per_l1 = np.bincount(u_sm * l1_nsets + u_lines % l1_nsets)
            dl = np.empty(u_lines.size, dtype=bool)
            dl[:1] = True
            dl[1:] = u_lines[1:] != u_lines[:-1]
            per_l2 = np.bincount(u_lines[dl] % l2_nsets)
            fast_ok = (int(per_l1.max()) <= config.l1_ways
                       and int(per_l2.max()) <= config.l2_ways)

        if fast_ok:
            # -- eviction-free fast path (fully vectorized) ------------
            is_first = np.zeros(n_touch, dtype=bool)
            is_first[korder[grp]] = True
            sel_first = np.flatnonzero(is_first)
            l2_lines = t_lines_o[sel_first]
            o2 = np.argsort(l2_lines, kind="stable")
            s2 = l2_lines[o2]
            g2 = np.empty(s2.size, dtype=bool)
            g2[:1] = True
            g2[1:] = s2[1:] != s2[:-1]
            l2_first = np.zeros(s2.size, dtype=bool)
            l2_first[o2[g2]] = True

            report.l1_accesses = int(nd)
            report.l1_hits = int((d_mask_o & ~is_first).sum())
            report.l2_accesses = int(sel_first.size)
            report.dram_accesses = int(l2_first.sum())
            report.prefetches = int((~d_mask_o & is_first).sum())

            lat = np.full(n_touch, l1_lat, dtype=np.int64)
            miss_l2 = np.zeros(n_touch, dtype=bool)
            miss_l2[sel_first[l2_first]] = True
            lat[is_first] = l2_lat
            if dram is None:
                lat[miss_l2] = dram_lat
            else:
                # Banked DRAM: only demand misses consult the row-buffer
                # model, in processing order.
                d_dram = np.flatnonzero(miss_l2 & d_mask_o)
                for k in d_dram.tolist():
                    lat[k] = l2_lat + dram.access(
                        int(t_lines_o[k]) * l2_line_bytes)

            d_idx = np.flatnonzero(d_mask_o)
            d_lat = lat[d_idx]
            dt_ev = t_ev_o[d_idx]
            starts = np.flatnonzero(
                np.r_[True, dt_ev[1:] != dt_ev[:-1]])
            ev_lat = np.maximum.reduceat(d_lat, starts) if d_lat.size else (
                np.empty(0, dtype=np.int64))
            report.fetch_latency_sum = float(ev_lat.sum())
            # Per-event division *before* the per-segment sum: bincount
            # accumulates weights in event order, so this reproduces the
            # reference's sequential `mem += latency / overlap` bit for
            # bit even when overlap is not a power of two.
            seg_mem = np.bincount(
                seg_o[dt_ev[starts]],
                weights=ev_lat.astype(np.float64) / overlap,
                minlength=n_seg).tolist()
            # Footprint: distinct lines with at least one *demand* touch
            # (prefetch-only lines don't count), off the sorted groups.
            grp_any_d = np.maximum.reduceat(
                d_mask_o[korder].astype(np.int64), np.flatnonzero(grp))
            line_id = np.cumsum(dl) - 1
            fast_footprint = int(np.count_nonzero(
                np.bincount(line_id, weights=grp_any_d)))
        else:
            # -- general path: sequential LRU tag walk -----------------
            addr_l = addr.tolist()
            fl_l = first_line.tolist()
            ll_l = last_line.tolist()
            npf_l = npf_o.tolist()
            pfs_l = pf_start.tolist()
            seg_l = seg_o.tolist()
            merged_l = merged.tolist()
            sup_l = pf_sup
            l1s, l2 = _build_caches(config)
            l2_sets, l2_nsets, l2_ways = l2.tag_state()
            l1_states = [l1.tag_state() for l1 in l1s]

            cur_seg = -1
            l1_sets: list = []
            l1_nsets = l1_ways = 1
            mem = 0.0
            lat_total = 0
            l1_acc = l1_hit = l2_acc = dram_acc = pref = 0

            for i in range(n_events):
                seg = seg_l[i]
                if seg != cur_seg:
                    if cur_seg >= 0:
                        seg_mem[cur_seg] = mem
                    cur_seg = seg
                    l1_sets, l1_nsets, l1_ways = l1_states[seg_sm[seg]]
                    mem = 0.0
                if merged_l[i]:
                    pass
                else:
                    a = addr_l[i]
                    latency = 0
                    for line in range(fl_l[i], ll_l[i] + 1):
                        l1_acc += 1
                        s = l1_sets[line % l1_nsets]
                        if line in s:
                            l1_hit += 1
                            del s[line]
                            s[line] = None
                            if latency < l1_lat:
                                latency = l1_lat
                        else:
                            s[line] = None
                            if len(s) > l1_ways:
                                del s[next(iter(s))]
                            l2_acc += 1
                            s2 = l2_sets[line % l2_nsets]
                            if line in s2:
                                del s2[line]
                                s2[line] = None
                                if latency < l2_lat:
                                    latency = l2_lat
                            else:
                                s2[line] = None
                                if len(s2) > l2_ways:
                                    del s2[next(iter(s2))]
                                dram_acc += 1
                                if dram is not None:
                                    banked = l2_lat + dram.access(
                                        line * l2_line_bytes)
                                    if latency < banked:
                                        latency = banked
                                elif latency < dram_lat:
                                    latency = dram_lat
                    lat_total += latency
                    mem += latency / overlap

                    if treelet_map is not None and latency > l1_lat:
                        # Treelet prefetch triggers on demand misses of
                        # treelet roots; lines fill the L1 off the
                        # critical path.
                        for pf_a, pf_b in treelet_map.get(a, ()):
                            last = (pf_a + (pf_b if pf_b > 1 else 1)
                                    - 1) // line_bytes
                            for line in range(pf_a // line_bytes, last + 1):
                                s = l1_sets[line % l1_nsets]
                                if line in s:
                                    continue
                                pref += 1
                                l2_acc += 1
                                s2 = l2_sets[line % l2_nsets]
                                if line in s2:
                                    del s2[line]
                                    s2[line] = None
                                else:
                                    s2[line] = None
                                    if len(s2) > l2_ways:
                                        del s2[next(iter(s2))]
                                    dram_acc += 1
                                    if dram is not None:
                                        dram.access(line * l2_line_bytes)
                                s[line] = None
                                if len(s) > l1_ways:
                                    del s[next(iter(s))]

                # Sibling prefetch is staged for merged requests too: the
                # in-flight original carries the same child list.
                if prefetch_on and npf_l[i]:
                    base = pfs_l[i]
                    for j in range(base, base + npf_l[i]):
                        if sup_l[j]:
                            continue
                        pa = pf_addr_l[j]
                        pb = pf_nbytes_l[j]
                        last = (pa + (pb if pb > 1 else 1) - 1) // line_bytes
                        for line in range(pa // line_bytes, last + 1):
                            s = l1_sets[line % l1_nsets]
                            if line in s:
                                continue
                            pref += 1
                            l2_acc += 1
                            s2 = l2_sets[line % l2_nsets]
                            if line in s2:
                                del s2[line]
                                s2[line] = None
                            else:
                                s2[line] = None
                                if len(s2) > l2_ways:
                                    del s2[next(iter(s2))]
                                dram_acc += 1
                            s[line] = None
                            if len(s) > l1_ways:
                                del s[next(iter(s))]

            if cur_seg >= 0:
                seg_mem[cur_seg] = mem

            report.l1_accesses = l1_acc
            report.l1_hits = l1_hit
            report.l2_accesses = l2_acc
            report.dram_accesses = dram_acc
            report.prefetches = pref
            report.fetch_latency_sum = float(lat_total)

            # Demand-fetched lines only (merged requests ride the
            # in-flight original and touch nothing).
            if demand_ev.any():
                fl = first_line[demand_ev]
                spans = last_line[demand_ev] - fl + 1
                touched_lines.update(_expand_spans(fl, spans).tolist())

        report.node_fetches = sum(seg_fetch)
        report.merged_requests = sum(seg_merged)
        _phase("tagwalk")

    # ------------------------------------------------------------------
    # Pass 3 — assemble per-segment warp cycles in replay order.
    # ------------------------------------------------------------------
    issue_fetch = config.issue_cycles + config.shader_issued_fetch_cycles
    issue_merged = config.merged_issue_cycles
    round_overhead = config.round_overhead_cycles / overlap
    shader_par = config.shader_parallelism
    seg_compute_l = seg_compute.tolist()
    seg_shader_l = seg_shader.tolist()
    for seg in range(n_seg):
        traversal = (
            seg_mem[seg]
            + (seg_merged[seg] * issue_merged + seg_fetch[seg] * issue_fetch)
            + seg_compute_l[seg]
            + seg_shader_l[seg] / shader_par
            + round_overhead
        )
        sorting = seg_sorting[seg] / shader_par
        blending = seg_blending[seg] / shader_par
        warp_cycles = traversal + sorting + blending
        sm_cycles[seg_sm[seg]] += warp_cycles
        label_cycles[seg_label[seg]] += warp_cycles
        report.traversal_cycles += traversal
        report.sorting_cycles += sorting
        report.blending_cycles += blending

    report.footprint_bytes = fast_footprint * config.l1_line_bytes if (
        fast_footprint is not None) else (
        len(touched_lines) * config.l1_line_bytes)
    if dram is not None:
        report.dram_row_hit_rate = dram.stats.row_hit_rate
    report.sm_cycles = sm_cycles
    report.cycles = max(sm_cycles)
    report.time_ms = config.cycles_to_ms(report.cycles)
    report.label_cycles = label_cycles

    _phase("cost")
    registry = get_registry()
    for name, seconds in phase_seconds.items():
        registry.observe(f"replay.phase.{name}", seconds)
    emit_span("hwsim.replay", started_ns, time.time_ns(),
              traces=len(traces), segments=n_seg)
    return report


def replay_reference(
    traces: list[RayTrace],
    config: GpuConfig | None = None,
    kbuffer_layout: str = "soa",
    treelet_map: dict[int, list[tuple[int, int]]] | None = None,
) -> TimingReport:
    """The original per-event replay loop, kept as the golden model.

    :func:`replay` must produce the same :class:`TimingReport` (the test
    suite compares them field by field on real renders); this version is
    the readable specification and the baseline the replay benchmark
    measures the batched implementation against.
    """
    config = config or GpuConfig()
    report = TimingReport()
    if not traces:
        return report

    warps, l1s, l2, dram, sm_of_warp = _replay_setup(traces, config)
    n_sms = config.n_sms
    sm_cycles = [0.0] * n_sms
    label_cycles: dict[str, float] = {"primary": 0.0, "secondary": 0.0}
    overlap = float(config.warp_buffer_size)
    kbuf_cycles = config.kbuffer_op_cycles + (
        config.kbuffer_soa_extra_cycles if kbuffer_layout == "soa" else 0.0
    )

    max_rounds = max((t.n_rounds for t in traces), default=0)
    report.rounds_total = sum(t.n_rounds for t in traces)
    touched_lines: set[int] = set()

    for round_index in range(max_rounds):
        for warp_index, warp in enumerate(warps):
            sm = sm_of_warp[warp_index]
            l1 = l1s[sm]
            rays = [t for t in warp if round_index < t.n_rounds]
            if not rays:
                continue
            cost = _WarpRoundCost(len(rays))
            # Bounded LRU merge window (MSHR-like request coalescing).
            merge_window: dict[int, None] = {}
            merge_cap = config.merge_window_size

            iters = [ray.rounds[round_index].iter_events() for ray in rays]
            active = list(range(len(rays)))
            while active:
                still_active = []
                for ray_slot in active:
                    event = next(iters[ray_slot], None)
                    if event is None:
                        continue
                    still_active.append(ray_slot)
                    addr, nbytes, _kind, box, prim, prim_kind, prefetch = event

                    # -- memory ------------------------------------------
                    if addr in merge_window:
                        # Refresh recency: repeated hot nodes (shared BLAS)
                        # keep merging for as long as they stay in flight.
                        del merge_window[addr]
                        merge_window[addr] = None
                        report.merged_requests += 1
                        cost.issue += config.merged_issue_cycles
                    else:
                        merge_window[addr] = None
                        if len(merge_window) > merge_cap:
                            del merge_window[next(iter(merge_window))]
                        report.node_fetches += 1
                        cost.issue += config.issue_cycles + config.shader_issued_fetch_cycles
                        latency = 0
                        for line in l1.lines_of(addr, nbytes):
                            touched_lines.add(line)
                            report.l1_accesses += 1
                            if l1.access(line):
                                report.l1_hits += 1
                                latency = max(latency, config.l1_latency)
                            else:
                                report.l2_accesses += 1
                                if l2.access(line):
                                    latency = max(latency, config.l2_latency)
                                else:
                                    report.dram_accesses += 1
                                    if dram is not None:
                                        dram_lat = dram.access(line * config.l2_line_bytes)
                                        latency = max(latency, config.l2_latency + dram_lat)
                                    else:
                                        latency = max(latency, config.dram_latency)
                        report.fetch_latency_sum += latency
                        cost.mem += latency / overlap

                        if treelet_map is not None and latency > config.l1_latency:
                            # Treelet prefetch triggers on demand misses of
                            # treelet roots; lines fill the L1 off the
                            # critical path.
                            for pf_addr, pf_bytes in treelet_map.get(addr, ()):
                                for line in l1.lines_of(pf_addr, pf_bytes):
                                    if l1.contains(line):
                                        continue
                                    report.prefetches += 1
                                    report.l2_accesses += 1
                                    if not l2.access(line):
                                        report.dram_accesses += 1
                                        if dram is not None:
                                            dram.access(line * config.l2_line_bytes)
                                    l1.fill(line)

                    if config.prefetch_enabled and prefetch:
                        for pf_addr, pf_bytes in prefetch:
                            if pf_addr in merge_window:
                                continue
                            for line in l1.lines_of(pf_addr, pf_bytes):
                                if l1.contains(line):
                                    continue
                                report.prefetches += 1
                                report.l2_accesses += 1
                                if not l2.access(line):
                                    report.dram_accesses += 1
                                l1.fill(line)

                    # -- compute -----------------------------------------
                    rt_compute = 0.0
                    if box:
                        rt_compute += config.box_test_cycles
                    if prim:
                        if prim_kind == PRIM_TRI:
                            rt_compute += prim / config.tri_tests_per_cycle
                        elif prim_kind == PRIM_SPHERE:
                            rt_compute += prim * config.sphere_test_cycles
                        elif prim_kind == PRIM_TRANSFORM:
                            rt_compute += prim * config.transform_cycles
                        elif prim_kind == PRIM_CUSTOM:
                            cost.shader += prim * config.custom_test_cycles
                    cost.ray_compute[ray_slot] += rt_compute
                active = still_active

            # Shader work recorded per round (any-hit sorting + blending).
            sorting = 0.0
            blending = 0.0
            for ray in rays:
                rt_round = ray.rounds[round_index]
                sorting += (
                    rt_round.anyhit_calls * config.anyhit_base_cycles
                    + rt_round.kbuffer_ops * kbuf_cycles
                )
                blending += rt_round.blended * config.blend_cycles

            traversal = (
                cost.mem
                + cost.issue
                + max(cost.ray_compute)
                + cost.shader / config.shader_parallelism
                + config.round_overhead_cycles / overlap
            )
            sorting /= config.shader_parallelism
            blending /= config.shader_parallelism
            warp_cycles = traversal + sorting + blending

            sm_cycles[sm] += warp_cycles
            label_cycles[warp[0].label] += warp_cycles
            report.traversal_cycles += traversal
            report.sorting_cycles += sorting
            report.blending_cycles += blending

    report.footprint_bytes = len(touched_lines) * config.l1_line_bytes
    if dram is not None:
        report.dram_row_hit_rate = dram.stats.row_hit_rate
    report.sm_cycles = sm_cycles
    report.cycles = max(sm_cycles)
    report.time_ms = config.cycles_to_ms(report.cycles)
    report.label_cycles = label_cycles
    return report


def raster_cycles(result: RasterResult, config: GpuConfig | None = None) -> float:
    """Cost model for the 3DGS rasterizer on the same GPU (Figure 4a).

    Rasterization is compute-bound and embarrassingly parallel: per-splat
    preprocessing, the global radix sort, and per (Gaussian, pixel) blend
    work all scale across the SIMT lanes.
    """
    config = config or GpuConfig()
    work = (
        result.preprocess_ops * config.raster_preprocess_cycles
        + result.pair_ops * config.raster_pair_cycles
        + result.sort_ops * config.raster_sort_op_cycles
    )
    return work / (config.raster_parallelism * config.n_sms)
