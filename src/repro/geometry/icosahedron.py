"""Icosahedron / icosphere proxy meshes for Gaussian bounding geometry.

The baseline 3DGRT method wraps every Gaussian in a *stretched regular
icosahedron* (20 triangles) so that ray-triangle hardware can be used;
Condor et al. use a subdivided icosphere (80 triangles) to cut false
positives. GRTX keeps one *template* mesh in a shared BLAS instead.

All meshes here are unit meshes: they circumscribe the unit sphere (every
face plane is tangent to or outside the sphere), so scaling the mesh by the
Gaussian's ``kappa * sigma`` radii conservatively bounds the ellipsoid.
"""

from __future__ import annotations

import numpy as np

from repro.math3d import quat_to_rotation_matrix


def icosahedron() -> tuple[np.ndarray, np.ndarray]:
    """The regular icosahedron with unit-length vertices.

    Returns ``(vertices, faces)`` with shapes ``(12, 3)`` and ``(20, 3)``.
    """
    phi = (1.0 + np.sqrt(5.0)) / 2.0
    verts = np.array(
        [
            [-1, phi, 0], [1, phi, 0], [-1, -phi, 0], [1, -phi, 0],
            [0, -1, phi], [0, 1, phi], [0, -1, -phi], [0, 1, -phi],
            [phi, 0, -1], [phi, 0, 1], [-phi, 0, -1], [-phi, 0, 1],
        ],
        dtype=np.float64,
    )
    verts /= np.linalg.norm(verts, axis=1, keepdims=True)
    faces = np.array(
        [
            [0, 11, 5], [0, 5, 1], [0, 1, 7], [0, 7, 10], [0, 10, 11],
            [1, 5, 9], [5, 11, 4], [11, 10, 2], [10, 7, 6], [7, 1, 8],
            [3, 9, 4], [3, 4, 2], [3, 2, 6], [3, 6, 8], [3, 8, 9],
            [4, 9, 5], [2, 4, 11], [6, 2, 10], [8, 6, 7], [9, 8, 1],
        ],
        dtype=np.int64,
    )
    return verts, faces


def icosphere(subdivisions: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Subdivided icosahedron projected back onto the unit sphere.

    ``subdivisions=1`` yields the 80-triangle icosphere used by the
    ``80-tri`` proxy configurations.
    """
    if subdivisions < 0:
        raise ValueError("subdivisions must be non-negative")
    verts, faces = icosahedron()
    vert_list = [tuple(v) for v in verts]
    vert_index = {v: i for i, v in enumerate(vert_list)}

    def midpoint(a: int, b: int) -> int:
        mid = np.asarray(vert_list[a]) + np.asarray(vert_list[b])
        mid = tuple(mid / np.linalg.norm(mid))
        if mid not in vert_index:
            vert_index[mid] = len(vert_list)
            vert_list.append(mid)
        return vert_index[mid]

    face_list = [tuple(f) for f in faces]
    for _ in range(subdivisions):
        new_faces: list[tuple[int, int, int]] = []
        for a, b, c in face_list:
            ab = midpoint(a, b)
            bc = midpoint(b, c)
            ca = midpoint(c, a)
            new_faces.extend([(a, ab, ca), (b, bc, ab), (c, ca, bc), (ab, bc, ca)])
        face_list = new_faces
    return np.asarray(vert_list, dtype=np.float64), np.asarray(face_list, dtype=np.int64)


def circumscribe(verts: np.ndarray, faces: np.ndarray) -> np.ndarray:
    """Scale a sphere-inscribed mesh outward so it *contains* the sphere.

    An inscribed polyhedron's faces cut into the sphere; dividing vertices
    by the minimum face-plane distance pushes every face plane to at least
    unit distance, making the proxy conservative (no missed hits, only
    false positives).
    """
    tri = verts[faces]
    normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    plane_dist = np.abs(np.einsum("fi,fi->f", normals, tri[:, 0]))
    return verts / plane_dist.min()


def orient_outward(verts: np.ndarray, faces: np.ndarray) -> np.ndarray:
    """Reorder face indices so all normals point away from the origin.

    Consistent outward CCW winding lets the tracer backface-cull the
    proxy: only entry faces report hits, so a crossing ray sees exactly
    one hit per Gaussian (3DGRT's convention).
    """
    faces = faces.copy()
    tri = verts[faces]
    normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
    centroid = tri.mean(axis=1)
    inward = np.einsum("fi,fi->f", normals, centroid) < 0
    faces[inward] = faces[inward][:, [0, 2, 1]]
    return faces


def unit_icosahedron_circumscribed(subdivisions: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Circumscribed icosahedron/icosphere template mesh.

    ``subdivisions=0`` gives the 20-triangle proxy, ``1`` the 80-triangle
    proxy; both fully contain the unit sphere and are wound CCW-outward.
    """
    verts, faces = icosphere(subdivisions)
    verts = circumscribe(verts, faces)
    return verts, orient_outward(verts, faces)


def stretched_proxy_mesh(
    mean: np.ndarray,
    rotation_quat: np.ndarray,
    radii: np.ndarray,
    subdivisions: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """World-space proxy mesh for a single Gaussian (monolithic BVH path).

    ``radii`` is the ``kappa * sigma`` semi-axis vector. Returns world
    vertices and faces. The baseline inserts all of these triangles into a
    single monolithic BVH — this function is what makes that BVH bloated.
    """
    verts, faces = unit_icosahedron_circumscribed(subdivisions)
    rot = quat_to_rotation_matrix(np.asarray(rotation_quat, dtype=np.float64))
    world = (verts * np.asarray(radii, dtype=np.float64)) @ rot.T + np.asarray(mean, dtype=np.float64)
    return world, faces
