"""Axis-aligned bounding boxes and the slab intersection test.

The BVH stores child boxes in struct-of-arrays form; the vectorized
``ray_aabbs`` test against all children of a 6-wide node at once is the
inner loop of traversal, so it avoids allocations where possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box ``[lo, hi]`` (both inclusive, shape ``(3,)``)."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", np.asarray(self.lo, dtype=np.float64))
        object.__setattr__(self, "hi", np.asarray(self.hi, dtype=np.float64))

    @classmethod
    def empty(cls) -> "AABB":
        """The identity element for :meth:`union` (inverted infinite box)."""
        return cls(lo=np.full(3, np.inf), hi=np.full(3, -np.inf))

    @classmethod
    def from_points(cls, points: np.ndarray) -> "AABB":
        """Tight box around a point set ``(n, 3)``."""
        points = np.asarray(points, dtype=np.float64)
        return cls(lo=points.min(axis=0), hi=points.max(axis=0))

    def union(self, other: "AABB") -> "AABB":
        return AABB(lo=np.minimum(self.lo, other.lo), hi=np.maximum(self.hi, other.hi))

    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point)
        return bool(np.all(point >= self.lo - 1e-12) and np.all(point <= self.hi + 1e-12))

    def contains(self, other: "AABB") -> bool:
        return bool(np.all(self.lo <= other.lo + 1e-9) and np.all(self.hi >= other.hi - 1e-9))

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def surface_area(self) -> float:
        """Surface area, the SAH cost driver. Empty boxes report 0."""
        ext = self.extent
        if np.any(ext < 0.0):
            return 0.0
        return float(2.0 * (ext[0] * ext[1] + ext[1] * ext[2] + ext[2] * ext[0]))

    def is_empty(self) -> bool:
        return bool(np.any(self.hi < self.lo))


def merge_aabbs(lo: np.ndarray, hi: np.ndarray) -> AABB:
    """Union of a batch of boxes given as ``(n, 3)`` lo/hi arrays."""
    return AABB(lo=np.min(lo, axis=0), hi=np.max(hi, axis=0))


def ray_aabb(
    origin: np.ndarray,
    inv_direction: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    t_min: float,
    t_max: float,
) -> tuple[bool, float]:
    """Slab test of one ray against one box.

    ``inv_direction`` is the precomputed component-wise reciprocal of the
    ray direction (with infinities for zero components, which the slab
    method handles via IEEE semantics). Returns ``(hit, t_entry)`` where
    ``t_entry`` is the clipped entry distance.
    """
    t0 = (lo - origin) * inv_direction
    t1 = (hi - origin) * inv_direction
    t_near = np.minimum(t0, t1)
    t_far = np.maximum(t0, t1)
    entry = max(float(np.max(t_near)), t_min)
    exit_ = min(float(np.min(t_far)), t_max)
    return entry <= exit_, entry


def ray_aabbs(
    origin: np.ndarray,
    inv_direction: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    t_min: float,
    t_max: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Slab test of one ray against ``n`` boxes at once.

    ``lo``/``hi`` are ``(n, 3)``. Returns ``(hit_mask, t_entry)`` arrays of
    shape ``(n,)``. This is the vectorized form used when testing all
    children of a BVH-6 node in one call.
    """
    t0 = (lo - origin) * inv_direction
    t1 = (hi - origin) * inv_direction
    t_near = np.minimum(t0, t1).max(axis=1)
    t_far = np.maximum(t0, t1).min(axis=1)
    entry = np.maximum(t_near, t_min)
    exit_ = np.minimum(t_far, t_max)
    return entry <= exit_, entry
