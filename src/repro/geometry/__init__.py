"""Geometry kernels: bounding boxes, rays, proxy meshes, intersections."""

from repro.geometry.aabb import AABB, merge_aabbs, ray_aabb, ray_aabbs
from repro.geometry.icosahedron import (
    icosahedron,
    icosphere,
    stretched_proxy_mesh,
    unit_icosahedron_circumscribed,
)
from repro.geometry.intersect import (
    ray_ellipsoid,
    ray_sphere,
    ray_triangle,
    ray_triangles,
    ray_unit_sphere,
)
from repro.geometry.ray import Ray, RayBundle

__all__ = [
    "AABB",
    "Ray",
    "RayBundle",
    "icosahedron",
    "icosphere",
    "merge_aabbs",
    "ray_aabb",
    "ray_aabbs",
    "ray_ellipsoid",
    "ray_sphere",
    "ray_triangle",
    "ray_triangles",
    "ray_unit_sphere",
    "stretched_proxy_mesh",
    "unit_icosahedron_circumscribed",
]
