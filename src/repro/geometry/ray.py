"""Ray containers.

A :class:`Ray` is a single origin/direction pair with a traversal interval
``(t_min, t_max]`` — exactly the state a traceRayEXT call carries. A
:class:`RayBundle` is the struct-of-arrays batch form used by the camera
and the warp model (32 consecutive rays of a bundle form one warp).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.math3d import normalize


@dataclass
class Ray:
    """One ray with its current traversal interval."""

    origin: np.ndarray
    direction: np.ndarray
    t_min: float = 0.0
    t_max: float = np.inf

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.float64)
        self.direction = np.asarray(self.direction, dtype=np.float64)
        if self.origin.shape != (3,) or self.direction.shape != (3,):
            raise ValueError("Ray expects single 3-vectors; use RayBundle for batches")

    @property
    def inv_direction(self) -> np.ndarray:
        """Component-wise reciprocal with IEEE inf for zero components."""
        with np.errstate(divide="ignore"):
            return 1.0 / self.direction

    def at(self, t: float | np.ndarray) -> np.ndarray:
        """Point(s) along the ray at parameter ``t``."""
        t = np.asarray(t, dtype=np.float64)
        return self.origin + t[..., None] * self.direction if t.ndim else self.origin + t * self.direction


@dataclass
class RayBundle:
    """A batch of rays in struct-of-arrays layout.

    ``origins`` and ``directions`` are ``(n, 3)``; ``pixel_ids`` maps each
    ray back to its pixel (secondary rays inherit the pixel of their
    parent).
    """

    origins: np.ndarray
    directions: np.ndarray
    pixel_ids: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.origins = np.ascontiguousarray(self.origins, dtype=np.float64)
        self.directions = np.ascontiguousarray(normalize(self.directions))
        n = self.origins.shape[0]
        if self.origins.shape != (n, 3) or self.directions.shape != (n, 3):
            raise ValueError("RayBundle expects (n, 3) origins and directions")
        if self.pixel_ids is None:
            self.pixel_ids = np.arange(n, dtype=np.int64)
        else:
            self.pixel_ids = np.ascontiguousarray(self.pixel_ids, dtype=np.int64)
            if self.pixel_ids.shape != (n,):
                raise ValueError("pixel_ids must be (n,)")

    def __len__(self) -> int:
        return self.origins.shape[0]

    def ray(self, index: int) -> Ray:
        """Materialize one ray of the bundle."""
        return Ray(origin=self.origins[index], direction=self.directions[index])

    def subset(self, indices: np.ndarray) -> "RayBundle":
        indices = np.asarray(indices)
        return RayBundle(
            origins=self.origins[indices],
            directions=self.directions[indices],
            pixel_ids=self.pixel_ids[indices],
        )
