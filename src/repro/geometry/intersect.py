"""Ray-primitive intersection kernels.

Three primitive types appear in GRTX configurations:

* triangles (proxy meshes; hardware ray-triangle units) — Möller-Trumbore;
* spheres (unit-sphere shared BLAS; Blackwell-style HW ray-sphere units);
* ellipsoids (the "custom primitive" baseline evaluated in software
  intersection shaders, Fig 5).
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def ray_triangle(
    origin: np.ndarray,
    direction: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    v2: np.ndarray,
) -> float | None:
    """Möller-Trumbore for a single triangle; returns ``t`` or ``None``.

    Back-face hits are reported too (proxy shells must report both entry
    and exit faces so the any-hit shader sees every crossing).
    """
    edge1 = v1 - v0
    edge2 = v2 - v0
    pvec = np.cross(direction, edge2)
    det = float(np.dot(edge1, pvec))
    if abs(det) < _EPS:
        return None
    inv_det = 1.0 / det
    tvec = origin - v0
    u = float(np.dot(tvec, pvec)) * inv_det
    if u < 0.0 or u > 1.0:
        return None
    qvec = np.cross(tvec, edge1)
    v = float(np.dot(direction, qvec)) * inv_det
    if v < 0.0 or u + v > 1.0:
        return None
    return float(np.dot(edge2, qvec)) * inv_det


def ray_triangles(
    origin: np.ndarray,
    direction: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    v2: np.ndarray,
    edge1: np.ndarray | None = None,
    edge2: np.ndarray | None = None,
    entering_only: bool = False,
) -> np.ndarray:
    """Vectorized Möller-Trumbore against ``n`` triangles.

    ``v0/v1/v2`` are ``(n, 3)``. Returns ``(n,)`` hit distances with
    ``np.inf`` for misses. ``edge1``/``edge2`` may be precomputed by the
    caller (the tracer caches them per structure); the cross products are
    written out by component because this sits on the innermost loop of
    every triangle-proxy traversal.

    ``entering_only=True`` applies backface culling for outward-wound
    (CCW) meshes: only front faces — where the ray *enters* the convex
    proxy — report hits. 3DGRT traces its bounding meshes this way so
    every Gaussian produces exactly one hit per crossing, keyed by the
    proxy entry distance.
    """
    if edge1 is None:
        edge1 = v1 - v0
    if edge2 is None:
        edge2 = v2 - v0
    dx, dy, dz = float(direction[0]), float(direction[1]), float(direction[2])
    e2x, e2y, e2z = edge2[:, 0], edge2[:, 1], edge2[:, 2]
    pvx = dy * e2z - dz * e2y
    pvy = dz * e2x - dx * e2z
    pvz = dx * e2y - dy * e2x
    e1x, e1y, e1z = edge1[:, 0], edge1[:, 1], edge1[:, 2]
    det = e1x * pvx + e1y * pvy + e1z * pvz
    if entering_only:
        # det = d . (e1 x e2) = d . n * |..|; entering a CCW-outward face
        # means d opposes the outward normal, i.e. det < 0.
        parallel = det > -_EPS
    else:
        parallel = np.abs(det) < _EPS
    inv_det = 1.0 / np.where(parallel, 1.0, det)
    tvx = origin[0] - v0[:, 0]
    tvy = origin[1] - v0[:, 1]
    tvz = origin[2] - v0[:, 2]
    u = (tvx * pvx + tvy * pvy + tvz * pvz) * inv_det
    qvx = tvy * e1z - tvz * e1y
    qvy = tvz * e1x - tvx * e1z
    qvz = tvx * e1y - tvy * e1x
    v = (dx * qvx + dy * qvy + dz * qvz) * inv_det
    t = (e2x * qvx + e2y * qvy + e2z * qvz) * inv_det
    miss = parallel | (u < 0.0) | (u > 1.0) | (v < 0.0) | (u + v > 1.0)
    return np.where(miss, np.inf, t)


def ray_sphere(
    origin: np.ndarray,
    direction: np.ndarray,
    center: np.ndarray,
    radius: float,
) -> tuple[float, float] | None:
    """Ray vs sphere; returns the ``(t_near, t_far)`` pair or ``None``.

    Both roots are returned because Gaussian tracing treats the sphere as a
    participation *interval*, not a surface.
    """
    oc = origin - center
    a = float(np.dot(direction, direction))
    if a < _EPS:
        return None
    b = 2.0 * float(np.dot(oc, direction))
    c = float(np.dot(oc, oc)) - radius * radius
    disc = b * b - 4.0 * a * c
    if disc < 0.0:
        return None
    sq = float(np.sqrt(disc))
    t0 = (-b - sq) / (2.0 * a)
    t1 = (-b + sq) / (2.0 * a)
    return (t0, t1) if t0 <= t1 else (t1, t0)


def ray_unit_sphere(origin: np.ndarray, direction: np.ndarray) -> tuple[float, float] | None:
    """Ray vs the canonical unit sphere at the origin (shared BLAS path).

    This is what the RT core executes after the TLAS instance transform:
    one ray-sphere test in object space. Note the *direction is not
    normalized* after the affine transform, so the returned t values are
    valid in the transformed parametrization, which coincides with the
    world-space parametrization (affine maps preserve ray parameter).
    """
    return ray_sphere(origin, direction, np.zeros(3), 1.0)


def ray_ellipsoid(
    origin: np.ndarray,
    direction: np.ndarray,
    world_to_obj_linear: np.ndarray,
    world_to_obj_offset: np.ndarray,
) -> tuple[float, float] | None:
    """Ray vs an ellipsoid given its world->unit-sphere transform.

    This is the "custom primitive" path: the software intersection shader
    performs the transform *and* the quadratic solve per candidate, which
    is why Fig 5a shows it losing to hardware triangle tests.
    """
    obj_origin = world_to_obj_linear @ origin + world_to_obj_offset
    obj_direction = world_to_obj_linear @ direction
    return ray_unit_sphere(obj_origin, obj_direction)
