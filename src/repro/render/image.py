"""Image buffer, PPM output, and PSNR."""

from __future__ import annotations

from pathlib import Path

import numpy as np


class ImageBuffer:
    """A float RGB framebuffer with row-major pixel indexing."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("image dimensions must be positive")
        self.width = width
        self.height = height
        self.pixels = np.zeros((height * width, 3), dtype=np.float64)

    @property
    def array(self) -> np.ndarray:
        """The image as ``(height, width, 3)``."""
        return self.pixels.reshape(self.height, self.width, 3)

    def set_pixel(self, pixel_id: int, color: np.ndarray) -> None:
        self.pixels[pixel_id] = color

    def accumulate(self, pixel_id: int, color: np.ndarray, weight: float = 1.0) -> None:
        self.pixels[pixel_id] += weight * np.asarray(color)

    def scatter(self, pixel_ids: np.ndarray, colors: np.ndarray) -> None:
        """Assign a batch of pixels at once (tile reassembly)."""
        colors = np.asarray(colors, dtype=np.float64)
        if colors.shape != (len(pixel_ids), 3):
            raise ValueError("colors must be (len(pixel_ids), 3)")
        self.pixels[np.asarray(pixel_ids, dtype=np.int64)] = colors


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio between two images (dB)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    mse = float(np.mean((a - b) ** 2))
    if mse == 0.0:  # repro: lint-ok[float-eq] exact-zero MSE is the infinite-PSNR contract; a tolerance would misreport near-identical images
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def write_ppm(path: str | Path, image: np.ndarray) -> None:
    """Write an ``(h, w, 3)`` float image as a binary PPM (tonemapped by
    simple clipping to [0, 1])."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("expected an (h, w, 3) image")
    data = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    height, width, _ = data.shape
    with open(Path(path), "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(data.tobytes())
