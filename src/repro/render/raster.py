"""Tile-based 3DGS rasterizer (the Figure 4a comparison baseline).

Implements the reference 3D Gaussian Splatting pipeline:

1. project Gaussian means through the view + perspective transform;
2. approximate each 3D covariance as a 2D screen-space covariance via the
   EWA splatting Jacobian (``Sigma' = J W Sigma W^T J^T``);
3. bin splats into 16x16 pixel tiles by their 3-sigma screen radius;
4. sort globally by view depth (the paper contrasts this *global* sort
   with ray tracing's per-ray sort);
5. blend front-to-back per pixel with early termination.

The rasterizer also counts its arithmetic work (preprocessing ops,
Gaussian-pixel blend pairs, sort operations) so the timing model can put
rasterization and ray tracing on one cycle axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians import GaussianCloud, build_covariance, eval_sh
from repro.math3d import normalize
from repro.render.camera import PinholeCamera

TILE = 16
_ALPHA_MIN = 1.0 / 255.0
_ALPHA_MAX = 0.999
_NEAR_PLANE = 0.2


@dataclass
class RasterResult:
    """Rasterized frame plus the work counters for the cost model."""

    image: np.ndarray
    n_projected: int
    n_culled: int
    preprocess_ops: int
    pair_ops: int
    sort_ops: int


class GaussianRasterizer:
    """Rasterization-based renderer for a Gaussian scene (3DGS)."""

    def __init__(self, cloud: GaussianCloud) -> None:
        self.cloud = cloud
        self._cov = build_covariance(cloud)

    def render(self, camera: PinholeCamera) -> RasterResult:
        cloud = self.cloud
        width, height = camera.width, camera.height
        view = camera.view_matrix()
        rot = view[:3, :3]
        trans = view[:3, 3]

        # --- 1. project means to camera space ---------------------------
        cam = cloud.means @ rot.T + trans
        in_front = cam[:, 2] > _NEAR_PLANE
        n_culled = int(np.count_nonzero(~in_front))
        idx = np.nonzero(in_front)[0]
        cam = cam[idx]

        focal_y = height / (2.0 * np.tan(camera.fov_y / 2.0))
        focal_x = focal_y
        px = focal_x * cam[:, 0] / cam[:, 2] + width / 2.0
        py = -focal_y * cam[:, 1] / cam[:, 2] + height / 2.0
        depth = cam[:, 2]

        # --- 2. EWA screen-space covariance ------------------------------
        # J is the Jacobian of the perspective projection at the mean.
        z = cam[:, 2]
        j00 = focal_x / z
        j02 = -focal_x * cam[:, 0] / (z * z)
        j11 = -focal_y / z
        j12 = focal_y * cam[:, 1] / (z * z)
        jac = np.zeros((idx.shape[0], 2, 3))
        jac[:, 0, 0] = j00
        jac[:, 0, 2] = j02
        jac[:, 1, 1] = j11
        jac[:, 1, 2] = j12
        cov_cam = np.einsum("ij,njk,lk->nil", rot, self._cov[idx], rot)
        cov2d = np.einsum("nij,njk,nlk->nil", jac, cov_cam, jac)
        # Low-pass filter: +0.3px on the diagonal, as in the 3DGS kernels.
        cov2d[:, 0, 0] += 0.3
        cov2d[:, 1, 1] += 0.3

        det = cov2d[:, 0, 0] * cov2d[:, 1, 1] - cov2d[:, 0, 1] * cov2d[:, 1, 0]
        valid = det > 1e-12
        idx, cam, px, py, depth, cov2d, det = (
            idx[valid], cam[valid], px[valid], py[valid], depth[valid],
            cov2d[valid], det[valid],
        )
        inv = np.empty_like(cov2d)
        inv[:, 0, 0] = cov2d[:, 1, 1] / det
        inv[:, 1, 1] = cov2d[:, 0, 0] / det
        inv[:, 0, 1] = -cov2d[:, 0, 1] / det
        inv[:, 1, 0] = -cov2d[:, 1, 0] / det
        mid = 0.5 * (cov2d[:, 0, 0] + cov2d[:, 1, 1])
        eig = mid + np.sqrt(np.maximum(mid * mid - det, 0.0))
        radius = np.ceil(cloud.kappa * np.sqrt(eig))

        # --- 3 & 4. global depth sort + tile binning ---------------------
        order = np.argsort(depth, kind="stable")
        idx, px, py, depth, inv, radius = (
            idx[order], px[order], py[order], depth[order], inv[order], radius[order],
        )
        sort_ops = int(idx.shape[0] * max(np.log2(max(idx.shape[0], 2)), 1.0))

        # Per-Gaussian view-dependent color, evaluated once per frame.
        directions = normalize(self.cloud.means[idx] - camera.position)
        colors = eval_sh(self.cloud.sh[idx], directions)
        opacities = self.cloud.opacities[idx]

        n_tiles_x = (width + TILE - 1) // TILE
        n_tiles_y = (height + TILE - 1) // TILE
        image = np.zeros((height, width, 3))
        transmittance = np.ones((height, width))
        pair_ops = 0

        ys, xs = np.mgrid[0:height, 0:width]
        for ty in range(n_tiles_y):
            for tx in range(n_tiles_x):
                x0, x1 = tx * TILE, min((tx + 1) * TILE, width)
                y0, y1 = ty * TILE, min((ty + 1) * TILE, height)
                overlap = (
                    (px + radius >= x0) & (px - radius < x1)
                    & (py + radius >= y0) & (py - radius < y1)
                )
                gauss = np.nonzero(overlap)[0]
                if gauss.size == 0:
                    continue
                tile_t = transmittance[y0:y1, x0:x1]
                tile_rgb = image[y0:y1, x0:x1]
                pix_x = xs[y0:y1, x0:x1] + 0.5
                pix_y = ys[y0:y1, x0:x1] + 0.5
                for g in gauss:
                    if np.all(tile_t < 1e-4):
                        break
                    dx = pix_x - px[g]
                    dy = pix_y - py[g]
                    power = -0.5 * (
                        inv[g, 0, 0] * dx * dx
                        + (inv[g, 0, 1] + inv[g, 1, 0]) * dx * dy
                        + inv[g, 1, 1] * dy * dy
                    )
                    alpha = np.minimum(opacities[g] * np.exp(power), _ALPHA_MAX)
                    alpha = np.where(alpha < _ALPHA_MIN, 0.0, alpha)
                    contrib = (tile_t * alpha)[..., None] * colors[g]
                    tile_rgb += contrib
                    tile_t *= 1.0 - alpha
                    pair_ops += int(dx.size)
                image[y0:y1, x0:x1] = tile_rgb
                transmittance[y0:y1, x0:x1] = tile_t

        return RasterResult(
            image=image,
            n_projected=int(idx.shape[0]),
            n_culled=n_culled,
            preprocess_ops=int(idx.shape[0]),
            pair_ops=pair_ops,
            sort_ops=sort_ops,
        )
