"""Camera paths for animation, view-consistency, and coherence studies.

The popping ablation, the predictor analysis, and dynamic-scene demos all
need "the next frame's camera": small, smooth viewpoint changes. This
module generates deterministic paths — orbits around a scene center and
linear dollies — as lists of :class:`PinholeCamera`, reusing the pose and
projection of a base camera.
"""

from __future__ import annotations

import numpy as np

from repro.render.camera import PinholeCamera


def orbit_path(
    base: PinholeCamera,
    center: np.ndarray,
    n_frames: int,
    total_angle: float,
    axis: str = "z",
) -> list[PinholeCamera]:
    """Rotate the camera position around ``center`` about a world axis.

    ``total_angle`` radians are spread evenly over ``n_frames`` (the first
    frame is the base pose). The look-at target stays fixed, so the orbit
    sweeps viewpoints the way the popping study needs.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be positive")
    axes = {"x": 0, "y": 1, "z": 2}
    if axis not in axes:
        raise ValueError(f"axis must be one of {sorted(axes)}")
    fixed = axes[axis]
    i, j = [k for k in range(3) if k != fixed]

    center = np.asarray(center, dtype=np.float64)
    radius_vec = base.position - center
    cameras = []
    for frame in range(n_frames):
        angle = total_angle * frame / max(n_frames - 1, 1)
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        rotated = radius_vec.copy()
        rotated[i] = cos_a * radius_vec[i] - sin_a * radius_vec[j]
        rotated[j] = sin_a * radius_vec[i] + cos_a * radius_vec[j]
        cameras.append(PinholeCamera(
            position=center + rotated,
            look_at=base.look_at,
            up=base.up,
            width=base.width,
            height=base.height,
            fov_y=base.fov_y,
        ))
    return cameras


def dolly_path(
    base: PinholeCamera,
    offset: np.ndarray,
    n_frames: int,
) -> list[PinholeCamera]:
    """Translate the camera linearly by ``offset`` over ``n_frames``.

    Both position and look-at shift together (a dolly, not a zoom), so
    the view direction is constant — the maximally coherent path, used as
    the easy case in coherence studies.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be positive")
    offset = np.asarray(offset, dtype=np.float64)
    cameras = []
    for frame in range(n_frames):
        t = frame / max(n_frames - 1, 1)
        cameras.append(PinholeCamera(
            position=base.position + t * offset,
            look_at=base.look_at + t * offset,
            up=base.up,
            width=base.width,
            height=base.height,
            fov_y=base.fov_y,
        ))
    return cameras


def lerp_cameras(a: PinholeCamera, b: PinholeCamera, n_frames: int) -> list[PinholeCamera]:
    """Linear interpolation between two camera poses (position, target, fov)."""
    if n_frames < 1:
        raise ValueError("n_frames must be positive")
    if (a.width, a.height) != (b.width, b.height):
        raise ValueError("cannot interpolate cameras with different resolutions")
    cameras = []
    for frame in range(n_frames):
        t = frame / max(n_frames - 1, 1)
        cameras.append(PinholeCamera(
            position=(1 - t) * a.position + t * b.position,
            look_at=(1 - t) * a.look_at + t * b.look_at,
            up=a.up,
            width=a.width,
            height=a.height,
            fov_y=(1 - t) * a.fov_y + t * b.fov_y,
        ))
    return cameras
