"""Analytic scene objects for secondary-ray effects (Figure 23).

The paper augments each scene with "a spherical glass object for
refractions and a rectangular mirror for reflections, both placed at
random locations" and measures GRTX-HW separately on primary and secondary
rays. These objects are analytic (not Gaussians): a primary ray that hits
one is clipped at the hit point, and a single secondary ray (reflected or
refracted) is traced through the Gaussian scene from there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians import GaussianCloud
from repro.geometry.intersect import ray_sphere
from repro.math3d import normalize

_EPS = 1e-6


def reflect(direction: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Mirror reflection of ``direction`` about ``normal``."""
    direction = np.asarray(direction, dtype=np.float64)
    normal = np.asarray(normal, dtype=np.float64)
    return direction - 2.0 * np.dot(direction, normal) * normal


def refract(direction: np.ndarray, normal: np.ndarray, eta: float) -> np.ndarray | None:
    """Snell refraction; returns ``None`` on total internal reflection.

    ``eta`` is the ratio of the incident medium's index to the
    transmitting medium's index; ``normal`` faces the incident side.
    """
    direction = normalize(direction)
    normal = np.asarray(normal, dtype=np.float64)
    cos_i = -float(np.dot(direction, normal))
    sin2_t = eta * eta * max(0.0, 1.0 - cos_i * cos_i)
    if sin2_t > 1.0:
        return None
    cos_t = np.sqrt(1.0 - sin2_t)
    return eta * direction + (eta * cos_i - cos_t) * normal


@dataclass(frozen=True)
class GlassSphere:
    """A refractive sphere: the secondary ray is the doubly refracted exit
    ray (entry interface + exit interface, with TIR falling back to
    internal reflection)."""

    center: np.ndarray
    radius: float
    ior: float = 1.5
    tint: np.ndarray = field(default_factory=lambda: np.array([0.9, 0.95, 1.0]))

    def intersect(self, origin: np.ndarray, direction: np.ndarray) -> float | None:
        """Nearest positive hit distance, or ``None``."""
        roots = ray_sphere(origin, direction, np.asarray(self.center), self.radius)
        if roots is None:
            return None
        t0, t1 = roots
        if t0 > _EPS:
            return t0
        if t1 > _EPS:
            return t1
        return None

    def scatter(self, origin: np.ndarray, direction: np.ndarray, t_hit: float) -> tuple[np.ndarray, np.ndarray]:
        """Refract through the sphere; returns the exit ray."""
        direction = normalize(direction)
        center = np.asarray(self.center, dtype=np.float64)
        entry = origin + t_hit * direction
        n_in = normalize(entry - center)
        inner = refract(direction, n_in, 1.0 / self.ior)
        if inner is None:
            return entry + _EPS * reflect(direction, n_in), reflect(direction, n_in)
        inner = normalize(inner)
        roots = ray_sphere(entry + _EPS * inner, inner, center, self.radius)
        if roots is None:
            return entry + _EPS * inner, inner
        exit_point = entry + _EPS * inner + max(roots[1], 0.0) * inner
        n_out = normalize(exit_point - center)
        out = refract(inner, -n_out, self.ior)
        if out is None:
            out = reflect(inner, n_out)
        out = normalize(out)
        return exit_point + _EPS * out, out


@dataclass(frozen=True)
class Mirror:
    """A rectangular mirror defined by center, two half-edge vectors and
    the implied normal."""

    center: np.ndarray
    half_u: np.ndarray
    half_v: np.ndarray
    tint: np.ndarray = field(default_factory=lambda: np.array([0.95, 0.95, 0.95]))

    @property
    def normal(self) -> np.ndarray:
        return normalize(np.cross(np.asarray(self.half_u), np.asarray(self.half_v)))

    def intersect(self, origin: np.ndarray, direction: np.ndarray) -> float | None:
        normal = self.normal
        denom = float(np.dot(direction, normal))
        if abs(denom) < 1e-12:
            return None
        t = float(np.dot(np.asarray(self.center) - origin, normal)) / denom
        if t <= _EPS:
            return None
        point = origin + t * np.asarray(direction)
        offset = point - np.asarray(self.center)
        u = np.asarray(self.half_u)
        v = np.asarray(self.half_v)
        pu = float(np.dot(offset, u)) / float(np.dot(u, u))
        pv = float(np.dot(offset, v)) / float(np.dot(v, v))
        if abs(pu) > 1.0 or abs(pv) > 1.0:
            return None
        return t

    def scatter(self, origin: np.ndarray, direction: np.ndarray, t_hit: float) -> tuple[np.ndarray, np.ndarray]:
        point = origin + t_hit * np.asarray(direction)
        normal = self.normal
        if float(np.dot(direction, normal)) > 0.0:
            normal = -normal
        out = normalize(reflect(direction, normal))
        return point + _EPS * out, out


class SceneObjects:
    """The analytic objects injected into a scene for Figure 23."""

    def __init__(self, objects: list[GlassSphere | Mirror]) -> None:
        self.objects = list(objects)

    def __len__(self) -> int:
        return len(self.objects)

    def nearest(self, origin: np.ndarray, direction: np.ndarray):
        """Closest object hit along the ray: ``(t, object)`` or ``(inf, None)``."""
        best_t = float("inf")
        best_obj = None
        for obj in self.objects:
            t = obj.intersect(origin, direction)
            if t is not None and t < best_t:
                best_t = t
                best_obj = obj
        return best_t, best_obj

    @classmethod
    def default_for(cls, cloud: GaussianCloud, seed: int = 7) -> "SceneObjects":
        """One glass sphere + one mirror at reproducible pseudo-random
        spots inside the scene, as the paper does."""
        rng = np.random.default_rng(seed)
        center = cloud.means.mean(axis=0)
        spread = cloud.means.std(axis=0)
        sphere_pos = center + rng.uniform(-0.5, 0.5, 3) * spread
        mirror_pos = center + rng.uniform(-0.5, 0.5, 3) * spread
        radius = 0.35 * float(spread.mean())
        size = 0.8 * float(spread.mean())
        u = np.array([size, 0.0, 0.0])
        v = np.array([0.0, 0.6 * size, size * 0.4])
        return cls([
            GlassSphere(center=sphere_pos, radius=radius),
            Mirror(center=mirror_pos, half_u=u, half_v=v),
        ])
