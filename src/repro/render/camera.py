"""Pinhole camera and ray generation.

The paper's sensitivity study (Figure 19) varies resolution and field of
view independently: rendering 128x128 with the *original* FoV spreads rays
apart (low coherence), while scaling the FoV down with the resolution
(cropping) keeps the angular area per pixel — and therefore ray coherence —
comparable to the native-resolution run. :meth:`PinholeCamera.cropped`
reproduces that exact transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.gaussians import GaussianCloud
from repro.gaussians.synthetic import WORKLOAD_SPECS
from repro.geometry import RayBundle
from repro.math3d import normalize, orthonormal_basis


@dataclass(frozen=True)
class PinholeCamera:
    """A look-at pinhole camera.

    ``fov_y`` is the vertical field of view in radians; the horizontal FoV
    follows from the aspect ratio.
    """

    position: np.ndarray
    look_at: np.ndarray
    up: np.ndarray
    width: int
    height: int
    fov_y: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", np.asarray(self.position, dtype=np.float64))
        object.__setattr__(self, "look_at", np.asarray(self.look_at, dtype=np.float64))
        object.__setattr__(self, "up", np.asarray(self.up, dtype=np.float64))
        if self.width < 1 or self.height < 1:
            raise ValueError("camera resolution must be positive")
        if not 0.0 < self.fov_y < np.pi:
            raise ValueError("fov_y must be in (0, pi)")

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    @property
    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Right-handed camera basis ``(right, up, forward)``."""
        forward = normalize(self.look_at - self.position)
        right = normalize(np.cross(forward, self.up))
        true_up = np.cross(right, forward)
        return right, true_up, forward

    def with_resolution(self, width: int, height: int) -> "PinholeCamera":
        """Same viewpoint and FoV at a different resolution."""
        return replace(self, width=width, height=height)

    def cropped(self, width: int, height: int) -> "PinholeCamera":
        """Resize *and* scale the FoV down proportionally (Figure 19b).

        The angular area per pixel is preserved, which keeps ray coherence
        at native-resolution levels while rendering fewer pixels.
        """
        scale = height / self.height
        new_fov = 2.0 * np.arctan(np.tan(self.fov_y / 2.0) * scale)
        return replace(self, width=width, height=height, fov_y=new_fov)

    def generate_rays(self) -> RayBundle:
        """Primary rays through every pixel center, row-major order."""
        right, true_up, forward = self.basis
        aspect = self.width / self.height
        tan_half = np.tan(self.fov_y / 2.0)
        xs = (np.arange(self.width) + 0.5) / self.width * 2.0 - 1.0
        ys = 1.0 - (np.arange(self.height) + 0.5) / self.height * 2.0
        px, py = np.meshgrid(xs * tan_half * aspect, ys * tan_half)
        directions = (
            forward[None, None, :]
            + px[..., None] * right[None, None, :]
            + py[..., None] * true_up[None, None, :]
        ).reshape(-1, 3)
        origins = np.broadcast_to(self.position, directions.shape).copy()
        return RayBundle(origins=origins, directions=directions)

    def view_matrix(self) -> np.ndarray:
        """World->camera 4x4 view matrix (used by the rasterizer)."""
        right, true_up, forward = self.basis
        rot = np.stack([right, true_up, forward])
        mat = np.eye(4)
        mat[:3, :3] = rot
        mat[:3, 3] = -rot @ self.position
        return mat


def default_camera_for(
    cloud: GaussianCloud,
    width: int = 32,
    height: int = 32,
    fov_y_deg: float = 60.0,
) -> PinholeCamera:
    """A deterministic viewpoint for a workload scene.

    Positions the camera outside the scene bound looking at the centroid,
    offset along a fixed diagonal so every scene gets a comparable,
    reproducible view (the paper uses the datasets' capture viewpoints,
    which do not exist for synthetic scenes).
    """
    center = cloud.means.mean(axis=0)
    spec = WORKLOAD_SPECS.get(cloud.name)
    extent = spec.extent if spec is not None else float(np.abs(cloud.means - center).max())
    eye = center + np.array([1.1, -1.6, 0.7]) * extent
    return PinholeCamera(
        position=eye,
        look_at=center,
        up=np.array([0.0, 0.0, 1.0]),
        width=width,
        height=height,
        fov_y=np.deg2rad(fov_y_deg),
    )
