"""Non-pinhole camera models for Gaussian ray tracing.

The paper motivates ray tracing over rasterization partly by camera
generality: "rasterization-based rendering struggles to accurately render
scenes captured with highly distorted cameras — essential for domains such
as robotics and autonomous vehicles" (Section I). A rasterizer projects
every Gaussian through one linear projection, so fisheye and panoramic
captures need lossy approximations; a ray tracer only needs a per-pixel
ray, so any camera model that can emit rays renders exactly.

This module provides the camera models 3DGRT advertises support for:

* :class:`FisheyeCamera` — equidistant (f-theta) fisheye, up to and beyond
  180 degrees.
* :class:`EquirectangularCamera` — full 360x180 panorama.
* :class:`DistortedPinholeCamera` — pinhole with Brown-Conrady radial and
  tangential lens distortion (the OpenCV model used by robotics rigs).
* :class:`OrthographicCamera` — parallel projection (useful for debugging
  and for orthographic baselines).

All cameras share the duck-typed interface the renderer consumes:
``width``, ``height``, ``n_pixels`` and ``generate_rays() -> RayBundle``.
:class:`repro.render.camera.PinholeCamera` is the reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry import RayBundle
from repro.math3d import normalize


@dataclass(frozen=True)
class _LookAtCamera:
    """Shared look-at pose handling for the ray-generating cameras."""

    position: np.ndarray
    look_at: np.ndarray
    up: np.ndarray
    width: int
    height: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", np.asarray(self.position, dtype=np.float64))
        object.__setattr__(self, "look_at", np.asarray(self.look_at, dtype=np.float64))
        object.__setattr__(self, "up", np.asarray(self.up, dtype=np.float64))
        if self.width < 1 or self.height < 1:
            raise ValueError("camera resolution must be positive")
        if np.allclose(self.position, self.look_at):
            raise ValueError("camera position and look_at coincide")

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    @property
    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Right-handed camera basis ``(right, up, forward)``."""
        forward = normalize(self.look_at - self.position)
        right = normalize(np.cross(forward, self.up))
        true_up = np.cross(right, forward)
        return right, true_up, forward

    def with_resolution(self, width: int, height: int) -> "_LookAtCamera":
        return replace(self, width=width, height=height)

    def _pixel_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Normalized pixel-center coordinates in [-1, 1], y up."""
        xs = (np.arange(self.width) + 0.5) / self.width * 2.0 - 1.0
        ys = 1.0 - (np.arange(self.height) + 0.5) / self.height * 2.0
        return np.meshgrid(xs, ys)

    def _bundle_from_camera_dirs(self, dirs_cam: np.ndarray,
                                 valid: np.ndarray | None = None) -> RayBundle:
        """Rotate camera-space directions into the world and batch them.

        ``dirs_cam`` is (h, w, 3) in the (right, up, forward) frame. Rays
        flagged invalid (outside the image circle of a fisheye) are aimed
        along +forward with their pixel retained; callers that care can
        mask them via :meth:`valid_mask`.
        """
        right, true_up, forward = self.basis
        rot = np.stack([right, true_up, forward])  # rows: camera axes
        dirs_world = dirs_cam.reshape(-1, 3) @ rot
        if valid is not None:
            flat = valid.reshape(-1)
            dirs_world[~flat] = forward
        origins = np.broadcast_to(self.position, dirs_world.shape).copy()
        return RayBundle(origins=origins, directions=dirs_world)


@dataclass(frozen=True)
class FisheyeCamera(_LookAtCamera):
    """Equidistant (f-theta) fisheye camera.

    The angle from the optical axis grows linearly with image-circle
    radius: ``theta = r * fov/2`` for normalized radius ``r`` in [0, 1].
    ``fov`` may exceed pi (e.g. 220-degree automotive lenses). Pixels
    outside the unit image circle carry no scene ray; they are reported by
    :meth:`valid_mask` and rendered black by convention.
    """

    fov: float = np.pi

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fov <= 2.0 * np.pi:
            raise ValueError("fisheye fov must be in (0, 2*pi]")

    def valid_mask(self) -> np.ndarray:
        """Boolean (h, w) mask of pixels inside the fisheye image circle."""
        px, py = self._pixel_grid()
        return px * px + py * py <= 1.0

    def generate_rays(self) -> RayBundle:
        px, py = self._pixel_grid()
        r = np.sqrt(px * px + py * py)
        valid = r <= 1.0
        theta = r * (self.fov / 2.0)
        # Unit vector at angle theta from +forward, azimuth from (px, py).
        safe_r = np.where(r < 1e-12, 1.0, r)
        sin_t = np.sin(theta)
        dirs = np.empty(theta.shape + (3,))
        dirs[..., 0] = sin_t * px / safe_r
        dirs[..., 1] = sin_t * py / safe_r
        dirs[..., 2] = np.cos(theta)
        return self._bundle_from_camera_dirs(dirs, valid)


@dataclass(frozen=True)
class EquirectangularCamera(_LookAtCamera):
    """360x180 panoramic camera (one ray per latitude/longitude cell).

    Pixel x spans longitude in [-pi, pi] relative to the forward axis;
    pixel y spans latitude in [-pi/2, pi/2]. Every pixel is valid.
    """

    def generate_rays(self) -> RayBundle:
        px, py = self._pixel_grid()
        lon = px * np.pi
        lat = py * (np.pi / 2.0)
        cos_lat = np.cos(lat)
        dirs = np.empty(px.shape + (3,))
        dirs[..., 0] = cos_lat * np.sin(lon)
        dirs[..., 1] = np.sin(lat)
        dirs[..., 2] = cos_lat * np.cos(lon)
        return self._bundle_from_camera_dirs(dirs)


@dataclass(frozen=True)
class DistortedPinholeCamera(_LookAtCamera):
    """Pinhole camera with Brown-Conrady lens distortion.

    ``k1, k2, k3`` are radial coefficients and ``p1, p2`` tangential, in
    the OpenCV convention applied to the ideal (undistorted) normalized
    image coordinates. Ray generation applies the *forward* distortion
    model: the stored pixel grid is treated as the distorted observation
    and rays are cast through the distorted positions, which is exactly
    what a calibrated robotics camera delivers.
    """

    fov_y: float = np.deg2rad(60.0)
    k1: float = 0.0
    k2: float = 0.0
    k3: float = 0.0
    p1: float = 0.0
    p2: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fov_y < np.pi:
            raise ValueError("fov_y must be in (0, pi)")

    def distort(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply Brown-Conrady distortion to normalized coordinates."""
        r2 = x * x + y * y
        radial = 1.0 + r2 * (self.k1 + r2 * (self.k2 + r2 * self.k3))
        x_t = 2.0 * self.p1 * x * y + self.p2 * (r2 + 2.0 * x * x)
        y_t = self.p1 * (r2 + 2.0 * y * y) + 2.0 * self.p2 * x * y
        return x * radial + x_t, y * radial + y_t

    def generate_rays(self) -> RayBundle:
        px, py = self._pixel_grid()
        aspect = self.width / self.height
        tan_half = np.tan(self.fov_y / 2.0)
        x = px * tan_half * aspect
        y = py * tan_half
        xd, yd = self.distort(x, y)
        dirs = np.stack([xd, yd, np.ones_like(xd)], axis=-1)
        return self._bundle_from_camera_dirs(dirs)


@dataclass(frozen=True)
class OrthographicCamera(_LookAtCamera):
    """Parallel-projection camera over a ``half_extent``-sized window.

    All rays share the forward direction; origins fan out across the
    image plane. Useful for slice debugging and coherence studies (all
    rays of a warp hit the same BVH subtree).
    """

    half_extent: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.half_extent <= 0.0:
            raise ValueError("half_extent must be positive")

    def generate_rays(self) -> RayBundle:
        right, true_up, forward = self.basis
        px, py = self._pixel_grid()
        aspect = self.width / self.height
        offsets = (
            px[..., None] * (self.half_extent * aspect) * right
            + py[..., None] * self.half_extent * true_up
        ).reshape(-1, 3)
        origins = self.position + offsets
        directions = np.broadcast_to(forward, origins.shape).copy()
        return RayBundle(origins=origins, directions=directions)


def rasterizer_fisheye_error(fov: float, n_samples: int = 64) -> float:
    """Mean angular error (radians) of approximating a fisheye with the
    best single pinhole projection.

    Rasterization must pick one linear projection for the whole frame; a
    fisheye's equidistant mapping deviates from every such projection.
    This quantifies the paper's "distorted cameras" motivation: the error
    grows superlinearly with FoV and diverges at 180 degrees, while a ray
    tracer is exact at any FoV.
    """
    if not 0.0 < fov < 2.0 * np.pi:
        raise ValueError("fov must be in (0, 2*pi)")
    theta = np.linspace(0.0, min(fov / 2.0, np.pi / 2.0 - 1e-3), n_samples)
    # Ideal fisheye maps angle theta to radius r = theta; the pinhole maps
    # it to tan(theta) * s for a free scale s. Fit s by least squares,
    # then measure the mean angle mismatch after inverting the pinhole.
    r_fish = theta
    r_pin = np.tan(theta)
    denom = float(r_pin @ r_pin)
    scale = float(r_pin @ r_fish) / denom if denom > 0.0 else 1.0
    theta_back = np.arctan(np.where(scale > 0, r_fish / scale, r_fish))
    return float(np.mean(np.abs(theta_back - theta)))
