"""End-to-end Gaussian rendering: cameras, the ray tracer front end, the
3DGS rasterizer baseline, and secondary-ray effects."""

from repro.render.camera import PinholeCamera, default_camera_for
from repro.render.cameras import (
    DistortedPinholeCamera,
    EquirectangularCamera,
    FisheyeCamera,
    OrthographicCamera,
    rasterizer_fisheye_error,
)
from repro.render.image import ImageBuffer, psnr, write_ppm
from repro.render.metrics import popping_score, ssim
from repro.render.path import dolly_path, lerp_cameras, orbit_path
from repro.render.renderer import GaussianRayTracer, RenderResult, RenderStats
from repro.render.raster import GaussianRasterizer, RasterResult
from repro.render.effects import SceneObjects, GlassSphere, Mirror

__all__ = [
    "DistortedPinholeCamera",
    "EquirectangularCamera",
    "FisheyeCamera",
    "GaussianRasterizer",
    "GaussianRayTracer",
    "GlassSphere",
    "ImageBuffer",
    "Mirror",
    "PinholeCamera",
    "RasterResult",
    "RenderResult",
    "RenderStats",
    "OrthographicCamera",
    "SceneObjects",
    "default_camera_for",
    "dolly_path",
    "lerp_cameras",
    "orbit_path",
    "popping_score",
    "psnr",
    "rasterizer_fisheye_error",
    "ssim",
    "write_ppm",
]
