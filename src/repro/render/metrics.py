"""Image-quality and view-consistency metrics.

Two metrics beyond PSNR:

* :func:`ssim` — structural similarity, the standard perceptual
  complement to PSNR in the 3DGS literature (every scene table in the
  3DGS/3DGRT papers reports PSNR + SSIM).
* :func:`popping_score` — a view-consistency measure for the paper's
  claim that "ray tracing enables per-ray sorting that eliminates visual
  artifacts during camera movement" (Section II-B). 3DGS sorts Gaussians
  *globally* by view-space depth; a small camera move can flip the order
  of overlapping Gaussians and discontinuously change pixel colors
  ("popping"). Per-ray sorting keys on exact distances along each ray, so
  colors vary smoothly. The score is the mean per-pixel color change per
  frame of a slowly moving camera, minus the change attributable to
  actual view-dependence (estimated from the smoothest renderer); higher
  means more popping.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def _box_filter(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable mean filter with edge clamping (pure numpy)."""
    pad = np.pad(image, [(radius, radius), (radius, radius)] + [(0, 0)] * (image.ndim - 2),
                 mode="edge")
    size = 2 * radius + 1
    csum = np.cumsum(pad, axis=0)
    csum = np.concatenate([np.zeros_like(csum[:1]), csum], axis=0)
    pad = (csum[size:] - csum[:-size]) / size
    csum = np.cumsum(pad, axis=1)
    csum = np.concatenate([np.zeros_like(csum[:, :1]), csum], axis=1)
    return (csum[:, size:] - csum[:, :-size]) / size


def ssim(a: np.ndarray, b: np.ndarray, peak: float = 1.0, radius: int = 3) -> float:
    """Mean structural similarity index over a box window.

    Uses the standard SSIM constants (k1=0.01, k2=0.03). Color images are
    converted to luma first, matching common practice.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim == 3:
        luma = np.array([0.299, 0.587, 0.114])
        a = a @ luma
        b = b @ luma
    if min(a.shape[:2]) < 2 * radius + 1:
        radius = max((min(a.shape[:2]) - 1) // 2, 0)
    if radius == 0:
        # Degenerate tiny image: fall back to a global SSIM.
        mu_a, mu_b = a.mean(), b.mean()
        va, vb = a.var(), b.var()
        cov = float(np.mean((a - mu_a) * (b - mu_b)))
        c1 = (0.01 * peak) ** 2
        c2 = (0.03 * peak) ** 2
        return float(((2 * mu_a * mu_b + c1) * (2 * cov + c2))
                     / ((mu_a**2 + mu_b**2 + c1) * (va + vb + c2)))

    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2
    mu_a = _box_filter(a, radius)
    mu_b = _box_filter(b, radius)
    mu_aa = _box_filter(a * a, radius)
    mu_bb = _box_filter(b * b, radius)
    mu_ab = _box_filter(a * b, radius)
    var_a = np.maximum(mu_aa - mu_a * mu_a, 0.0)
    var_b = np.maximum(mu_bb - mu_b * mu_b, 0.0)
    cov = mu_ab - mu_a * mu_b
    score = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) / (
        (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2)
    )
    return float(score.mean())


def frame_deltas(frames: Sequence[np.ndarray]) -> np.ndarray:
    """Mean absolute per-pixel change between successive frames."""
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    deltas = []
    for prev, cur in zip(frames, frames[1:]):
        deltas.append(float(np.mean(np.abs(np.asarray(cur) - np.asarray(prev)))))
    return np.asarray(deltas)


def popping_score(frames: Sequence[np.ndarray]) -> float:
    """Temporal *roughness* of a frame sequence from a smooth camera path.

    A smoothly moving camera should change each pixel smoothly; sorting
    flips inject discontinuities. We measure the mean second difference
    of the per-frame deltas — smooth view-dependent change contributes
    little (its deltas are nearly constant), popping contributes spikes.
    """
    deltas = frame_deltas(frames)
    if len(deltas) < 2:
        return 0.0
    return float(np.mean(np.abs(np.diff(deltas))))


def render_camera_path(
    render_fn: Callable[[object], np.ndarray],
    cameras: Sequence[object],
) -> list[np.ndarray]:
    """Render every camera of a path with ``render_fn`` and collect frames."""
    return [np.asarray(render_fn(camera)) for camera in cameras]
