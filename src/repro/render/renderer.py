"""The end-to-end Gaussian ray tracer.

Glues together camera ray generation, the multi-round tracer, optional
analytic objects (mirror / glass) for secondary rays, and per-render
statistics. The returned :class:`RenderResult` carries the per-ray fetch
traces, which :mod:`repro.hwsim` replays for cycle-level timing.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field, fields

import numpy as np

from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.two_level import TwoLevelBVH
from repro.gaussians import GaussianCloud
from repro.obs import PhaseAccumulator, span
from repro.render.camera import PinholeCamera
from repro.render.effects import SceneObjects
from repro.render.image import ImageBuffer
from repro.rt import RayTrace, SceneShading, TraceConfig, Tracer

#: Secondary rays whose carried weight is below this contribute nothing
#: visible; skip them (matches shooting secondary rays only from surviving
#: primary paths).
_MIN_SECONDARY_WEIGHT = 1e-3


@dataclass
class RenderStats:
    """Aggregate functional statistics for one render."""

    n_rays: int = 0
    n_primary: int = 0
    n_secondary: int = 0
    rounds_total: int = 0
    blended_total: int = 0
    anyhit_calls: int = 0
    kbuffer_ops: int = 0
    false_positives: int = 0
    total_internal_visits: int = 0
    total_leaf_visits: int = 0
    unique_internal_visits: int = 0
    unique_leaf_visits: int = 0
    checkpoints_written: int = 0
    evictions_written: int = 0
    ckpt_high_water: int = 0
    evict_high_water: int = 0
    rays_terminated_early: int = 0

    @property
    def total_visits(self) -> int:
        return self.total_internal_visits + self.total_leaf_visits

    @property
    def unique_visits(self) -> int:
        return self.unique_internal_visits + self.unique_leaf_visits

    @property
    def redundancy(self) -> float:
        """Total / unique node visits — the gap Figure 7 quantifies."""
        unique = self.unique_visits
        return self.total_visits / unique if unique else 0.0

    #: Fields that are per-ray maxima rather than additive counters;
    #: every other field merges by summation.
    _MAX_FIELDS = ("ckpt_high_water", "evict_high_water")

    def merge(self, other: "RenderStats") -> None:
        """Fold another stats block into this one (tile reassembly).

        Counters add; the checkpoint/eviction high-water marks are maxima
        over rays, so the merged high water is the max of the parts. The
        field set is derived from the dataclass so new counters merge
        without touching this method.
        """
        for spec in fields(self):
            name = spec.name
            combine = max if name in self._MAX_FIELDS else operator.add
            setattr(self, name, combine(getattr(self, name), getattr(other, name)))

    def absorb(self, trace: RayTrace, rounds: int, blended: int, terminated: bool) -> None:
        self.n_rays += 1
        if trace.label == "primary":
            self.n_primary += 1
        else:
            self.n_secondary += 1
        self.rounds_total += rounds
        self.blended_total += blended
        self.total_internal_visits += trace.total_internal
        self.total_leaf_visits += trace.total_leaf
        self.unique_internal_visits += len(trace.unique_internal)
        self.unique_leaf_visits += len(trace.unique_leaf)
        self.ckpt_high_water = max(self.ckpt_high_water, trace.ckpt_high_water)
        self.evict_high_water = max(self.evict_high_water, trace.evict_high_water)
        if terminated:
            self.rays_terminated_early += 1
        for rt in trace.rounds:
            self.anyhit_calls += rt.anyhit_calls
            self.kbuffer_ops += rt.kbuffer_ops
            self.false_positives += rt.false_positives
            self.checkpoints_written += rt.checkpoints_written
            self.evictions_written += rt.evictions_written


@dataclass
class BundleResult:
    """Colors and bookkeeping for one traced batch of primary rays.

    ``colors`` is aligned with the input ray order; ``pixel_ids`` maps each
    ray back to its framebuffer slot, so a caller can scatter a partial
    frame (a tile) into a full :class:`ImageBuffer`.
    """

    colors: np.ndarray
    pixel_ids: np.ndarray
    stats: RenderStats
    traces: list[RayTrace] = field(repr=False, default_factory=list)


@dataclass
class RenderResult:
    """One rendered frame plus everything the evaluation needs."""

    image: np.ndarray
    stats: RenderStats
    traces: list[RayTrace] = field(repr=False, default_factory=list)
    config: TraceConfig | None = None
    structure_bytes: int = 0

    def drop_traces(self) -> None:
        """Free the (large) per-ray traces once timing replay is done."""
        self.traces = []


#: Engines a renderer can trace with.  ``"scalar"`` is the per-ray
#: Python tracer (full feature set, per-ray fetch traces); ``"packet"``
#: is the numpy-vectorized ray-packet engine (both structure families,
#: multiround/singleround, no fetch traces), parity-matched to the
#: scalar images within 1e-9 per channel; ``"wavefront"`` batches the
#: whole ray set breadth-first through the same kernels (same parity
#: contract, built for frame-sized batches); ``"auto"`` picks a batch
#: engine whenever one covers the (structure, config) pair — the
#: wavefront engine when the batch is frame-sized (``n_rays`` hint
#: reaches :func:`repro.rt.packet.resolve_engine`), the packet engine
#: otherwise — and the scalar tracer when neither applies.
ENGINES = ("scalar", "packet", "wavefront", "auto")


class GaussianRayTracer:
    """Public renderer API: scene + acceleration structure -> image.

    Parameters
    ----------
    cloud:
        The Gaussian scene.
    structure:
        A :class:`MonolithicBVH` or :class:`TwoLevelBVH` built over it.
    config:
        Tracing configuration (k, multi/single round, checkpointing, ...).
    engine:
        ``"scalar"`` (default), ``"packet"``, ``"wavefront"`` or
        ``"auto"``.  The batch engines cover both structure families
        without checkpointing; an explicit ``"packet"``/``"wavefront"``
        on an unsupported combination falls back to the scalar tracer —
        counted by :func:`repro.rt.packet.packet_fallback_count` and
        warned about once per reason — while ``"auto"`` silently picks
        whichever engine covers the pair: the wavefront engine when
        ``n_rays`` says the batch is frame-sized, the packet engine
        otherwise (``engine_active`` reports the choice).
    n_rays:
        Optional batch-size hint for ``"auto"`` (callers that know the
        frame resolution pass ``width * height``); without it ``"auto"``
        resolves to the packet engine as before.

    ``structure`` may also be an already-flattened
    :class:`~repro.bvh.flatten.FlatStructure` (what pool workers
    receive); all engines consume the flattened layout natively.
    """

    def __init__(
        self,
        cloud: GaussianCloud,
        structure: MonolithicBVH | TwoLevelBVH,
        config: TraceConfig | None = None,
        engine: str = "scalar",
        n_rays: int | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.cloud = cloud
        self.structure = structure
        self.config = config or TraceConfig()
        self.engine = engine
        self.shading = SceneShading(cloud)
        self.packet = None
        self._scalar_tracer: Tracer | None = None
        from repro.rt.packet import PacketTracer, resolve_engine
        from repro.rt.wavefront import WavefrontTracer

        resolved = resolve_engine(engine, structure, self.config,
                                  n_rays=n_rays)
        self._engine_active = resolved
        if resolved == "wavefront":
            #: The batch tracer keeps the historical ``packet`` name —
            #: both batch engines share the PacketTracer API and every
            #: consumer (tile scheduler, tests, pool workers) holds it
            #: through this attribute.
            self.packet = WavefrontTracer(structure, self.shading,
                                          self.config)
        elif resolved == "packet":
            self.packet = PacketTracer(structure, self.shading, self.config)
        else:
            self._scalar_tracer = Tracer(structure, self.shading, self.config)

    @property
    def tracer(self) -> Tracer:
        """The scalar tracer — built lazily when the packet engine is
        active (its table setup is O(scene) and the packet path never
        touches it), eagerly otherwise."""
        if self._scalar_tracer is None:
            self._scalar_tracer = Tracer(self.structure, self.shading, self.config)
        return self._scalar_tracer

    @property
    def engine_active(self) -> str:
        """The engine actually tracing (after unsupported-combo fallback)."""
        return self._engine_active

    def render(
        self,
        camera: PinholeCamera,
        objects: SceneObjects | None = None,
        keep_traces: bool = True,
    ) -> RenderResult:
        """Render one frame.

        When ``objects`` is given, primary rays hitting a mirror or glass
        object are clipped there and a single secondary ray continues
        through the Gaussian scene (the Figure 23 setup).
        """
        bundle = camera.generate_rays()
        result = self.trace_rays(
            bundle.origins, bundle.directions, bundle.pixel_ids,
            objects=objects, keep_traces=keep_traces,
        )
        framebuffer = ImageBuffer(camera.width, camera.height)
        framebuffer.scatter(result.pixel_ids, result.colors)
        return RenderResult(
            image=framebuffer.array,
            stats=result.stats,
            traces=result.traces,
            config=self.config,
            structure_bytes=self.structure.total_bytes,
        )

    def trace_rays(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        pixel_ids: np.ndarray,
        objects: SceneObjects | None = None,
        keep_traces: bool = True,
    ) -> BundleResult:
        """Trace an explicit batch of primary rays (a frame or a tile).

        ``directions`` must already be unit-length, exactly as produced by
        :meth:`PinholeCamera.generate_rays`; they are used as-is so that a
        tile sliced out of a full-frame bundle traces bit-identically to
        the untiled render.

        With the packet engine active the whole batch is traced as one
        ray packet. ``keep_traces`` selects the *recorded* packet path
        (:meth:`PacketTracer.trace_packet_recorded`): per-ray fetch
        traces stream- and counter-identical to the scalar recorder's,
        at extra recording cost — so serving paths keep it off and
        timing runs turn it on.
        """
        if self.packet is not None:
            return self._trace_rays_packet(origins, directions, pixel_ids,
                                           objects, keep_traces)
        n = origins.shape[0]
        colors = np.zeros((n, 3), dtype=np.float64)
        stats = RenderStats()
        traces: list[RayTrace] = []
        tracer = self.tracer
        # Per-phase timing at bundle granularity: the tracer accumulates
        # traversal/blend seconds across all rays of this bundle and the
        # totals flush as one histogram sample each — the same shape the
        # packet engine reports per chunk.
        profile = tracer.profile = PhaseAccumulator()
        bundle_span = span("rt.scalar.trace", rays=n)
        bundle_span.__enter__()
        try:
            self._trace_rays_scalar_loop(
                tracer, origins, directions, colors, stats, traces,
                objects, keep_traces)
        finally:
            bundle_span.__exit__(None, None, None)
            tracer.profile = None
        profile.flush("rt.phase")
        return BundleResult(
            colors=colors,
            pixel_ids=np.asarray(pixel_ids, dtype=np.int64),
            stats=stats,
            traces=traces,
        )

    def _trace_rays_scalar_loop(self, tracer, origins, directions, colors,
                                stats, traces, objects, keep_traces) -> None:
        """The per-ray scalar loop (split out so the caller can bracket
        it with profiling/tracing teardown in one ``finally``)."""
        for i in range(origins.shape[0]):
            origin = origins[i]
            direction = directions[i]

            t_obj = float("inf")
            obj = None
            if objects is not None:
                t_obj, obj = objects.nearest(origin, direction)

            trace = RayTrace(label="primary")
            outcome = tracer.trace_ray(origin, direction, trace, t_clip=t_obj)
            stats.absorb(trace, outcome.rounds, outcome.blended, outcome.terminated_early)
            if keep_traces:
                traces.append(trace)
            color = outcome.color

            if obj is not None and outcome.transmittance > _MIN_SECONDARY_WEIGHT:
                sec_origin, sec_direction = obj.scatter(origin, direction, t_obj)
                sec_trace = RayTrace(label="secondary")
                sec_outcome = tracer.trace_ray(sec_origin, sec_direction, sec_trace)
                stats.absorb(
                    sec_trace, sec_outcome.rounds, sec_outcome.blended,
                    sec_outcome.terminated_early,
                )
                if keep_traces:
                    traces.append(sec_trace)
                weight = outcome.transmittance
                color = color + weight * np.asarray(obj.tint) * sec_outcome.color

            colors[i] = color

    def _trace_rays_packet(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        pixel_ids: np.ndarray,
        objects: SceneObjects | None,
        keep_traces: bool = False,
    ) -> BundleResult:
        """Packet-engine ray batch: one vectorized primary packet plus
        (when scene objects clip primaries) one secondary packet.

        With ``keep_traces`` the packets run through the recording path
        and the stats are absorbed from the reconstructed traces exactly
        like the scalar loop's, so every RenderStats counter matches the
        scalar engine (not just the parity trio)."""
        origins = np.asarray(origins, dtype=np.float64)
        directions = np.asarray(directions, dtype=np.float64)
        n = origins.shape[0]
        stats = RenderStats()
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        if n == 0:
            return BundleResult(np.zeros((0, 3)), pixel_ids, stats)

        t_clip = None
        objs: list | None = None
        if objects is not None:
            t_clip = np.full(n, float("inf"))
            objs = [None] * n
            for i in range(n):
                t_clip[i], objs[i] = objects.nearest(origins[i], directions[i])

        traces: list[RayTrace] = []
        if keep_traces:
            result, primary_traces = self.packet.trace_packet_recorded(
                origins, directions, t_clip, label="primary")
            traces.extend(primary_traces)
            self._absorb_recorded(stats, result, primary_traces, primary=True)
        else:
            result = self.packet.trace_packet(origins, directions, t_clip)
            self._absorb_packet(stats, result, primary=True)
        colors = result.colors

        if objs is not None:
            live = [i for i in range(n)
                    if objs[i] is not None
                    and result.transmittance[i] > _MIN_SECONDARY_WEIGHT]
            if live:
                sec_o = np.empty((len(live), 3))
                sec_d = np.empty((len(live), 3))
                tints = np.empty((len(live), 3))
                for j, i in enumerate(live):
                    sec_o[j], sec_d[j] = objs[i].scatter(
                        origins[i], directions[i], t_clip[i])
                    tints[j] = np.asarray(objs[i].tint)
                if keep_traces:
                    secondary, sec_traces = self.packet.trace_packet_recorded(
                        sec_o, sec_d, label="secondary")
                    traces.extend(sec_traces)
                    self._absorb_recorded(stats, secondary, sec_traces,
                                          primary=False)
                else:
                    secondary = self.packet.trace_packet(sec_o, sec_d)
                    self._absorb_packet(stats, secondary, primary=False)
                weight = result.transmittance[live]
                colors[live] = colors[live] + (
                    weight[:, None] * tints * secondary.colors)

        return BundleResult(colors=colors, pixel_ids=pixel_ids, stats=stats,
                            traces=traces)

    @staticmethod
    def _absorb_recorded(stats: RenderStats, result, traces, primary: bool) -> None:
        """Absorb a recorded packet like the scalar per-ray loop does:
        every counter (visit totals, anyhit calls, k-buffer ops, ...)
        comes from the reconstructed traces, so the stats block equals
        the scalar engine's exactly."""
        rounds = result.rounds
        blended = result.blended
        terminated = result.terminated
        for i, trace in enumerate(traces):
            trace.label = "primary" if primary else "secondary"
            stats.absorb(trace, int(rounds[i]), int(blended[i]),
                         bool(terminated[i]))

    @staticmethod
    def _absorb_packet(stats: RenderStats, result, primary: bool) -> None:
        n = result.n_rays
        stats.n_rays += n
        if primary:
            stats.n_primary += n
        else:
            stats.n_secondary += n
        stats.rounds_total += int(result.rounds.sum())
        stats.blended_total += int(result.blended.sum())
        stats.rays_terminated_early += int(np.count_nonzero(result.terminated))
        # One canonical evaluation per candidate pair; the scalar engine
        # re-evaluates across rounds, so these two are engine-specific
        # work measures, not parity-matched counters.
        stats.anyhit_calls += result.anyhit_calls
        stats.kbuffer_ops += result.anyhit_calls
        stats.false_positives += result.false_positives
