"""The seeded chaos drill: every hardening path, one reproducible run.

:func:`run_drill` is the end-to-end exercise behind ``repro
chaos-drill`` and the CI ``chaos-smoke`` gate. It renders a set of
frames fault-free and serially (the bit-identical reference), then
replays the identical requests on a pooled server under a seeded
:mod:`repro.chaos` schedule that manufactures the ISSUE's required
fault menagerie — a worker SIGKILL, a worker SIGSTOP hang, a corrupt
registry disk-cache entry, a transient spool-write failure, a slow
request — plus a poison task that SIGKILLs every worker it touches.

The drill then asserts the hardening actually engaged:

* every request completed with pixels **bit-identical** to the
  fault-free serial run (the standing parity contract survives kills,
  hangs, requeues, and cache rebuilds);
* the hung worker was reaped by the watchdog (``deadline_kills``);
* the poison task was quarantined after killing distinct workers
  (``quarantined``, with a ``poison-task-quarantined`` bundle);
* the corrupt cache entry was evicted and rebuilt (``disk_rejects``);
* ``repro doctor`` attributes the injected kill and hang to the chaos
  schedule (the CHAOS breadcrumbs survive into worker checkpoints and
  incident bundles).

Everything runs against a throwaway flight/cache/token directory and
restores process state on exit, so the drill composes with test runs.
"""

from __future__ import annotations

import glob
import os
import shutil
import tempfile
import time

import numpy as np

import repro.chaos as chaos
from repro.obs import doctor, flight
from repro.pool import WorkerCrashError, WorkerPool
from repro.serve import RenderRequest, RenderServer, SceneRegistry, SceneRef

#: The seeded schedule the drill arms (worker-side invocation counts:
#: each worker process counts its own task starts, so the ``:once``
#: tokens are what make the kill and hang fire exactly once fleet-wide).
DRILL_SCHEDULE = (
    "pool.worker.task=kill@2:once;"
    "pool.worker.task=hang@4:once;"
    "registry.disk_load=corrupt@1:once;"
    # The spool fault must hit an invocation that carries no evidence:
    # a worker's 3rd spool write is the kill's own re-checkpoint (task 2
    # start + directive re-checkpoint), and eating that would erase the
    # CHAOS breadcrumb the doctor-attribution assertion looks for. The
    # 1st write is a plain task-start checkpoint, overwritten one task
    # later — losing it proves spool writes tolerate transient OSErrors
    # without costing the drill any forensics.
    "flight.spool=oserror@1:once;"
    "serve.request=slow(0.01)@1"
)

_ENV_KEYS = ("REPRO_CHAOS", "REPRO_CHAOS_SEED", "REPRO_CHAOS_TOKENS")


def _requests(scene: str, frames: int, size: int, scale: float):
    return [
        RenderRequest(
            scene=SceneRef(name=scene, scale=scale, seed=index),
            proxy="tlas+sphere", mode="grtx", k=8,
            width=size, height=size, engine="scalar")
        for index in range(frames)
    ]


def run_drill(
    scene: str = "train",
    size: int = 32,
    frames: int = 5,
    workers: int = 2,
    deadline_s: float = 2.0,
    seed: int = 0,
    scale: float = 1.0 / 10000.0,
    keep_dir: str | None = None,
) -> dict:
    """Run the full chaos drill; returns a summary dict.

    ``summary["failures"]`` is the list of violated expectations —
    empty means the drill passed. ``keep_dir`` preserves the drill's
    flight/cache directory for post-mortem instead of deleting it.
    """
    started = time.perf_counter()
    root = keep_dir or tempfile.mkdtemp(prefix="repro-chaos-drill-")
    flight_dir = os.path.join(root, "flight")
    cache_dir = os.path.join(root, "bvh-cache")
    token_dir = os.path.join(root, "tokens")
    saved_env = {key: os.environ.get(key) for key in _ENV_KEYS}
    saved_flight_dir = flight.dir_override()
    failures: list[str] = []
    requests = _requests(scene, frames, size, scale)
    pool = None
    try:
        flight.configure(directory=flight_dir, min_interval=0.0)
        flight.reset()

        # Phase 1 — the fault-free serial reference. Also warms the
        # disk BVH cache the chaos run will find (and corrupt).
        with RenderServer(registry=SceneRegistry(cache_dir=cache_dir),
                          tile_size=(8, 8), workers=1) as reference_server:
            reference = [reference_server.render(r).image for r in requests]

        # Phase 2 — identical requests, pooled, under the schedule.
        # Env carries the schedule into (forked or spawned) workers;
        # configure() arms this process for the parent-side points.
        os.environ["REPRO_CHAOS"] = DRILL_SCHEDULE
        os.environ["REPRO_CHAOS_SEED"] = str(seed)
        os.environ["REPRO_CHAOS_TOKENS"] = token_dir
        chaos.configure(spec=DRILL_SCHEDULE, seed=seed, token_dir=token_dir)
        pool = WorkerPool(workers=workers, task_deadline_s=deadline_s,
                          poison_threshold=2)
        registry = SceneRegistry(cache_dir=cache_dir)
        with RenderServer(registry=registry, tile_size=(8, 8),
                          workers=workers, pool=pool) as server:
            for index, request in enumerate(requests):
                image = server.render(request).image
                if not np.array_equal(image, reference[index]):
                    failures.append(
                        f"frame {index} is not bit-identical to the "
                        "fault-free serial reference")

            # Phase 3 — the poison task: SIGKILLs every worker that
            # runs it; poison_threshold=2 must quarantine it fast.
            try:
                pool.submit(chaos.poison_task).result(timeout=60)
                failures.append("poison task returned instead of being "
                                "quarantined")
            except WorkerCrashError as exc:
                if "quarantined" not in str(exc):
                    failures.append(
                        f"poison task failed without quarantine: {exc}")
            except Exception as exc:
                failures.append(f"poison task raised unexpectedly: {exc!r}")

            pool_stats = pool.stats()
            registry_counters = registry.counters()

        # The server does not own the external pool; close it here so
        # every queued incident bundle is flushed before the glob below.
        pool.close(wait=False, timeout=10.0)

        # Phase 4 — the books must balance.
        if pool_stats.get("crashes", 0) < 3:
            failures.append("expected >= 3 worker crashes "
                            f"(kill + hang + poison), saw {pool_stats}")
        if pool_stats.get("deadline_kills", 0) < 1:
            failures.append("the hung (SIGSTOPped) worker was never "
                            "reaped by the watchdog")
        if pool_stats.get("quarantined", 0) < 1:
            failures.append("the poison task was never quarantined")
        if registry_counters.get("disk_rejects", 0) < 1:
            failures.append("the corrupted disk-cache entry was never "
                            "detected and evicted")

        # Phase 5 — the doctor must name the injected faults.
        incidents = []
        reasons: set[str] = set()
        attributed: set[str] = set()
        watchdog_named = False
        for path in sorted(glob.glob(
                os.path.join(flight_dir, "incident-*.json"))):
            bundle = doctor.load_bundle(path)
            analysis = doctor.triage(bundle)
            reasons.add(str(analysis["reason"]))
            causes = analysis["probable_causes"]
            watchdog_named = watchdog_named or any(
                "watchdog" in cause for cause in causes)
            for event in analysis["timeline"]:
                if event.get("kind") == "chaos":
                    data = event.get("data") or {}
                    attributed.add(
                        f"{data.get('point')}:{data.get('directive')}")
            incidents.append({
                "bundle": os.path.basename(path),
                "reason": analysis["reason"],
                "chaos_attributed": any("injected fault" in cause
                                        for cause in causes),
                "anomalies": analysis["anomalies"],
            })
        if "worker-crash" not in reasons:
            failures.append(f"no worker-crash bundle dumped ({reasons})")
        if "poison-task-quarantined" not in reasons:
            failures.append(f"no quarantine bundle dumped ({reasons})")
        if "pool.worker.task:kill" not in attributed:
            failures.append("the injected SIGKILL never surfaced in a "
                            f"bundle timeline (saw {sorted(attributed)})")
        if "pool.worker.task:hang" not in attributed:
            failures.append("the injected hang never surfaced in a "
                            f"bundle timeline (saw {sorted(attributed)})")
        if not watchdog_named:
            failures.append("no bundle's probable causes named the "
                            "hung-worker watchdog")

        return {
            "ok": not failures,
            "failures": failures,
            "schedule": DRILL_SCHEDULE,
            "seed": seed,
            "frames": frames,
            "bit_identical": not any("bit-identical" in f
                                     for f in failures),
            "pool": pool_stats,
            "registry": registry_counters,
            "chaos_fired_parent": chaos.fired(),
            "attributed_faults": sorted(attributed),
            "incident_reasons": sorted(reasons),
            "incidents": incidents,
            "elapsed_s": round(time.perf_counter() - started, 3),
        }
    finally:
        if pool is not None and not pool.closed:
            pool.close(wait=False, timeout=5.0)
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        chaos.reset()
        flight.configure(directory=saved_flight_dir or "",
                         min_interval=flight.DEFAULT_MIN_INTERVAL)
        flight.reset()
        if keep_dir is None:
            shutil.rmtree(root, ignore_errors=True)


def format_summary(summary: dict) -> str:
    """The human report ``repro chaos-drill`` prints."""
    lines = []
    lines.append("chaos drill")
    lines.append("=" * 63)
    lines.append(f"schedule:  {summary['schedule']}")
    lines.append(f"seed:      {summary['seed']}")
    lines.append(f"frames:    {summary['frames']} "
                 f"(bit-identical: {summary['bit_identical']})")
    lines.append(f"elapsed:   {summary['elapsed_s']}s")
    pool = summary["pool"]
    lines.append(f"pool:      crashes={pool.get('crashes')} "
                 f"requeues={pool.get('requeues')} "
                 f"deadline_kills={pool.get('deadline_kills')} "
                 f"quarantined={pool.get('quarantined')}")
    registry = summary["registry"]
    lines.append(f"registry:  disk_rejects={registry.get('disk_rejects')} "
                 f"disk_hits={registry.get('disk_hits')} "
                 f"builds={registry.get('structure_builds')}")
    lines.append(f"doctor:    reasons={summary['incident_reasons']}")
    lines.append(f"           attributed={summary['attributed_faults']}")
    lines.append("")
    if summary["ok"]:
        lines.append("PASS: every fault fired, every hardening path "
                     "engaged, every frame bit-identical")
    else:
        lines.append(f"FAIL ({len(summary['failures'])} violations):")
        for failure in summary["failures"]:
            lines.append(f"  * {failure}")
    return "\n".join(lines)
