"""Registry snapshot files and the pretty-printer behind ``repro stats``.

A snapshot file is one JSON document: ``{"schema": "repro.obs/v1",
"created_unix": ..., "snapshot": <MetricsRegistry.snapshot()>}``. The
render/serve-bench CLIs write one with ``--stats-out``; ``repro stats``
loads and pretty-prints it (or dumps the raw JSON back with
``--json``).
"""

from __future__ import annotations

import json
import time

from repro.obs.metrics import MetricsRegistry, get_registry

SNAPSHOT_SCHEMA = "repro.obs/v1"
DEFAULT_SNAPSHOT_PATH = "obs_stats.json"


def write_snapshot(path: str, registry: MetricsRegistry | None = None) -> dict:
    """Write the registry snapshot to ``path``; returns the document."""
    reg = registry if registry is not None else get_registry()
    document = {
        "schema": SNAPSHOT_SCHEMA,
        "created_unix": time.time(),  # repro: lint-ok[parity-nondeterminism] snapshot provenance metadata; compared by no gate, feeds no image
        "snapshot": reg.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return document


def load_snapshot(path: str) -> dict:
    """Load a snapshot document; accepts bare snapshots too (a dict with
    ``counters``/``gauges``/``histograms`` at top level)."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if "snapshot" not in document and "counters" in document:
        document = {"schema": SNAPSHOT_SCHEMA, "snapshot": document}
    return document


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or float(value).is_integer():
            return f"{value:,.0f}"
        if abs(value) >= 0.01:
            return f"{value:.4g}"
        return f"{value:.3e}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_snapshot(document: dict) -> str:
    """Pretty-print a snapshot document as aligned text tables."""
    snapshot = document.get("snapshot", document)
    lines: list[str] = []
    created = document.get("created_unix")
    if created is not None:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created))
        lines.append(f"snapshot taken {stamp}")
        lines.append("")

    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}

    if counters:
        width = max(len(k) for k in counters)
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_fmt(counters[name])}")
        lines.append("")
    if gauges:
        width = max(len(k) for k in gauges)
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_fmt(gauges[name])}")
        lines.append("")
    if histograms:
        width = max(len(k) for k in histograms)
        header = (f"  {'':<{width}}  {'count':>8} {'mean':>10} {'p50':>10} "
                  f"{'p95':>10} {'p99':>10} {'max':>10}")
        lines.append("histograms (seconds)")
        lines.append(header)
        for name in sorted(histograms):
            h = histograms[name]
            mx = h.get("max")
            lines.append(
                f"  {name:<{width}}  {h.get('count', 0):>8,} "
                f"{_fmt(h.get('mean', 0.0)):>10} {_fmt(h.get('p50', 0.0)):>10} "
                f"{_fmt(h.get('p95', 0.0)):>10} {_fmt(h.get('p99', 0.0)):>10} "
                f"{_fmt(mx if mx is not None else 0.0):>10}")
        lines.append("")
    if not (counters or gauges or histograms):
        lines.append("(snapshot is empty)")
    return "\n".join(lines).rstrip() + "\n"
