"""Structured-event vocabulary shared by the span tracer and the
flight recorder.

One small, closed set of event *kinds* covers everything the stack
wants to remember about its own behavior: timed spans, lifecycle state
transitions, task dispatch/completion, crash/requeue recovery, load
shedding, engine fallbacks, and cache evictions. The flight recorder
(:mod:`repro.obs.flight`) stores events as compact tuples; incident
bundles and the ``repro doctor`` triage tool exchange them as dicts in
the shape documented by :data:`FLIGHT_EVENT_SCHEMA`.

Keeping the vocabulary here — below both ``tracing`` and ``flight`` in
the import graph — is what lets the span tracer mirror spans into the
flight ring without a cycle.
"""

from __future__ import annotations

#: A timed region (mirrors a tracer span; ``data`` carries ``dur_us``).
SPAN = "span"
#: A lifecycle transition (worker start/stop, pool spawn, server open).
STATE = "state"
#: The parent shipped a task to a worker.
DISPATCH = "dispatch"
#: The parent collected a task's successful result.
COMPLETE = "complete"
#: A worker process died while owning a task slot.
CRASH = "crash"
#: A crashed worker's in-flight task was requeued elsewhere.
REQUEUE = "requeue"
#: Admission control rejected work (load shedding).
SHED = "shed"
#: An engine degraded to a slower implementation, with the reason.
FALLBACK = "fallback"
#: A bounded cache evicted an entry.
EVICTION = "eviction"
#: An incident bundle was dumped (self-referential breadcrumb).
INCIDENT = "incident"
#: A task or subsystem raised; ``data`` carries the error repr.
ERROR = "error"
#: A scheduled fault fired at a registered :mod:`repro.chaos` injection
#: point (``data`` carries point/directive/hit) — the breadcrumb that
#: lets ``repro doctor`` attribute a manufactured failure to its drill.
CHAOS = "chaos"

#: Every kind the flight recorder accepts.
KINDS = frozenset({
    SPAN, STATE, DISPATCH, COMPLETE, CRASH, REQUEUE, SHED, FALLBACK,
    EVICTION, INCIDENT, ERROR, CHAOS,
})

#: JSON-Schema-shaped description of one flight event in dict form
#: (the shape inside incident bundles and worker checkpoints).
#: Validation is hand-rolled in :func:`validate_flight_event` — no
#: jsonschema dependency — this doc is the source of truth.
FLIGHT_EVENT_SCHEMA = {
    "type": "object",
    "required": ["ts", "pid", "tid", "kind", "name"],
    "properties": {
        "ts": {"type": "integer", "minimum": 0,
               "description": "wall-clock nanoseconds (time_ns)"},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "kind": {"enum": sorted(KINDS)},
        "name": {"type": "string", "minLength": 1,
                 "description": "dotted subsystem.event name"},
        "data": {"type": "object",
                 "description": "JSON-serializable payload (optional)"},
    },
}


def as_tuple(ts_ns: int, pid: int, tid: int, kind: str, name: str,
             data: dict | None) -> tuple:
    """The compact in-ring representation of one event."""
    return (ts_ns, pid, tid, kind, name, data)


def as_dict(event: tuple) -> dict:
    """Convert one in-ring tuple to the bundle/checkpoint dict shape."""
    ts_ns, pid, tid, kind, name, data = event
    out = {"ts": ts_ns, "pid": pid, "tid": tid, "kind": kind, "name": name}
    if data:
        out["data"] = data
    return out


def validate_flight_event(event) -> list[str]:
    """Validate one dict-form event against
    :data:`FLIGHT_EVENT_SCHEMA`; returns problems (empty = valid)."""
    problems = []
    if not isinstance(event, dict):
        return ["event is not an object"]
    for field in FLIGHT_EVENT_SCHEMA["required"]:
        if field not in event:
            problems.append(f"missing required field {field!r}")
    ts = event.get("ts")
    if "ts" in event and (not isinstance(ts, int) or isinstance(ts, bool)
                          or ts < 0):
        problems.append("ts must be a non-negative integer")
    for field in ("pid", "tid"):
        value = event.get(field)
        if field in event and (not isinstance(value, int)
                               or isinstance(value, bool)):
            problems.append(f"{field} must be an integer")
    kind = event.get("kind")
    if "kind" in event and kind not in KINDS:
        problems.append(f"unknown event kind {kind!r}")
    name = event.get("name")
    if "name" in event and (not isinstance(name, str) or not name):
        problems.append("name must be a non-empty string")
    if "data" in event and not isinstance(event["data"], dict):
        problems.append("data must be an object")
    return problems
