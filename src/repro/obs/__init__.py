"""repro.obs — the observability spine: metrics, tracing, profiling.

One subsystem gives the whole stack its measurement substrate:

* :class:`MetricsRegistry` — named counters/gauges/histograms with a
  lock-free write path, p50/p95/p99 latency histograms, and one
  ``snapshot()``/``merge()`` rule that also works across processes
  (worker deltas ride back with task results).
* :class:`span` / :func:`start_tracing` — Chrome
  ``about:tracing``-compatible JSON-lines traces of the request path
  end-to-end (server admission → queue wait → scene build → tile
  dispatch → worker trace → reassembly).
* :class:`PhaseAccumulator` / :func:`phase_timer` — per-phase engine
  and replay timing feeding the histograms (and, through the tile
  scheduler, the :class:`~repro.pool.TileCostModel`).
* :mod:`repro.obs.flight` / :mod:`repro.obs.doctor` — the always-on
  flight recorder (bounded ring of :mod:`repro.obs.events` structured
  events, worker spool checkpoints, incident bundles) and the
  ``repro doctor`` triage report over a bundle.

Metric naming: dotted ``subsystem.metric`` (``serve.latency``,
``pool.tasks_completed``, ``rt.phase.traversal``). Span naming mirrors
it (``serve.request``, ``tiles.tile``, ``worker.tile``,
``rt.packet.trace``). Gauges inside a snapshot are namespaced
``gauge.<name>`` so they can never shadow a counter.
"""

from repro.obs import doctor, events, flight
from repro.obs.flight import CHECKPOINT_SCHEMA, FLIGHT_SCHEMA
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.profile import PhaseAccumulator, phase_timer
from repro.obs.snapshot import (
    DEFAULT_SNAPSHOT_PATH,
    SNAPSHOT_SCHEMA,
    format_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.obs.tracing import (
    TRACE_EVENT_SCHEMA,
    BufferTraceSink,
    FileTraceSink,
    absorb_events,
    current_sink,
    emit_event,
    emit_span,
    install_sink,
    span,
    start_tracing,
    stop_tracing,
    tracing_active,
    validate_trace_event,
    validate_trace_file,
)


def absorb_worker_delta(delta) -> None:
    """Fold one worker-side observability delta into this process.

    The delta is what ``repro.pool.worker`` ships with each task
    result: a ``MetricsRegistry.collect()`` dict, optionally carrying a
    ``"trace_events"`` list of span events recorded in the worker.
    Metrics merge into the global registry; trace events re-emit through
    the active sink (dropped when tracing is off).
    """
    if not delta:
        return
    get_registry().merge(delta)
    events = delta.get("trace_events")
    if events:
        absorb_events(events)


__all__ = [
    "CHECKPOINT_SCHEMA",
    "DEFAULT_BUCKETS",
    "DEFAULT_SNAPSHOT_PATH",
    "FLIGHT_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "TRACE_EVENT_SCHEMA",
    "BufferTraceSink",
    "FileTraceSink",
    "Histogram",
    "MetricsRegistry",
    "PhaseAccumulator",
    "absorb_events",
    "absorb_worker_delta",
    "current_sink",
    "doctor",
    "emit_event",
    "emit_span",
    "events",
    "flight",
    "format_snapshot",
    "get_registry",
    "install_sink",
    "load_snapshot",
    "phase_timer",
    "reset_registry",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing_active",
    "validate_trace_event",
    "validate_trace_file",
    "write_snapshot",
]
