"""Span-based tracing with Chrome ``about:tracing`` output.

A *span* is one named, timed region (``with span("serve.render",
scene=h):``). When tracing is active, finished spans are emitted as
JSON-lines complete events (``ph: "X"`` with ``ts``/``dur`` in
microseconds, ``pid``/``tid``) — the format ``chrome://tracing`` /
Perfetto load directly, so a whole serve-bench run opens as a flame
graph with server, scheduler, worker, and engine rows.

The tracer is a process-global sink to keep the off path free: when no
sink is installed, ``span.__enter__`` is a couple of attribute loads and
``__exit__`` is one None check. Timestamps are wall-clock
(``time.time_ns``), not monotonic, deliberately: worker processes emit
into their own buffers and the parent re-emits those events verbatim, so
all processes must share a clock for the rows to line up in the viewer.

Worker side: :class:`BufferTraceSink` accumulates events in memory; the
pool drains it after each task and ships the events with the result
(see ``repro.pool.worker``). The parent re-emits them through its own
sink via :func:`absorb_events` — or drops them when tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.obs import flight

_sink = None  # the process-global sink; None = tracing off
_sink_lock = threading.Lock()


class FileTraceSink:
    """Writes trace events as JSON lines to a file (thread-safe)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None


class BufferTraceSink:
    """Accumulates trace events in memory (worker side of the pool wire)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def emit(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def drain(self) -> list[dict]:
        """Return buffered events and clear the buffer."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def close(self) -> None:
        self.drain()


def install_sink(sink) -> None:
    """Install a trace sink (anything with ``emit(event)``)."""
    global _sink
    with _sink_lock:
        _sink = sink


def start_tracing(path: str) -> FileTraceSink:
    """Start tracing to a JSON-lines file; returns the sink."""
    sink = FileTraceSink(path)
    install_sink(sink)
    return sink


def stop_tracing() -> None:
    """Stop tracing and close the current sink, if any."""
    global _sink
    with _sink_lock:
        sink, _sink = _sink, None
    if sink is not None:
        sink.close()


def tracing_active() -> bool:
    return _sink is not None


def current_sink():
    return _sink


def emit_event(event: dict) -> None:
    """Emit one raw trace event (dropped when tracing is off)."""
    sink = _sink
    if sink is not None:
        sink.emit(event)


def emit_span(name: str, start_ns: int, end_ns: int, **args) -> None:
    """Emit one complete-span event from explicit timestamps.

    Finished spans also mirror into the flight recorder's ring (when
    enabled), so an incident bundle reconstructs the request timeline
    even when no trace sink was ever installed.
    """
    flight.record_span(name, start_ns, end_ns, args or None)
    sink = _sink
    if sink is None:
        return
    event = {
        "name": name,
        "ph": "X",
        "ts": start_ns // 1000,
        "dur": max(0, end_ns - start_ns) // 1000,
        "pid": os.getpid(),
        "tid": threading.get_ident() & 0x7FFFFFFF,
        "cat": "repro",
    }
    if args:
        event["args"] = args
    sink.emit(event)


def absorb_events(events) -> None:
    """Re-emit events recorded in another process (worker ride-back).

    Events carry their own ``pid``/``tid``/timestamps, so the worker
    shows up as its own process row in the flame viewer. No-op when
    tracing is off.
    """
    sink = _sink
    if sink is None or not events:
        return
    for event in events:
        sink.emit(event)


class span:
    """Context manager timing one named region.

    ``with span("tiles.tile", index=3):`` emits a complete event on
    exit. When both tracing and the flight recorder are off the
    overhead is one global load on enter and one None check on exit;
    with only the (default-on) flight recorder, exit adds one bounded
    ring append — cheap enough to leave instrumentation in hot-ish
    paths permanently (per-tile, per-request; not per-ray).
    """

    __slots__ = ("name", "args", "_start_ns", "_active")

    def __init__(self, name: str, **args) -> None:
        self.name = name
        self.args = args
        self._start_ns = 0
        self._active = False

    def __enter__(self) -> "span":
        if _sink is not None or flight.enabled():
            self._active = True
            self._start_ns = time.time_ns()  # repro: lint-ok[parity-nondeterminism] Chrome-trace spans need wall-clock stamps that align across processes; never feeds the image
        return self

    def __exit__(self, *_exc) -> None:
        if self._active:
            self._active = False
            emit_span(self.name, self._start_ns, time.time_ns(), **self.args)  # repro: lint-ok[parity-nondeterminism] same wall-clock span contract as __enter__


# ---------------------------------------------------------------------------
# Trace-file validation (the CI obs-smoke gate).

#: JSON-Schema-shaped description of one trace event line. Validation is
#: hand-rolled below (no jsonschema dependency); this doc is the source
#: of truth for what a line must contain.
TRACE_EVENT_SCHEMA = {
    "type": "object",
    "required": ["name", "ph", "ts", "pid", "tid"],
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "ph": {"enum": ["X", "i", "M"]},
        "ts": {"type": "integer", "minimum": 0},
        "dur": {"type": "integer", "minimum": 0},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "cat": {"type": "string"},
        "args": {"type": "object"},
    },
}


def validate_trace_event(event) -> list[str]:
    """Validate one parsed event against :data:`TRACE_EVENT_SCHEMA`;
    returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(event, dict):
        return ["event is not an object"]
    for field in TRACE_EVENT_SCHEMA["required"]:
        if field not in event:
            problems.append(f"missing required field {field!r}")
    name = event.get("name")
    if "name" in event and (not isinstance(name, str) or not name):
        problems.append("name must be a non-empty string")
    ph = event.get("ph")
    if "ph" in event and ph not in ("X", "i", "M"):
        problems.append(f"unsupported phase {ph!r}")
    for field in ("ts", "dur"):
        value = event.get(field)
        if field in event and (not isinstance(value, int) or isinstance(value, bool)
                               or value < 0):
            problems.append(f"{field} must be a non-negative integer")
    for field in ("pid", "tid"):
        value = event.get(field)
        if field in event and (not isinstance(value, int) or isinstance(value, bool)):
            problems.append(f"{field} must be an integer")
    if ph == "X" and "dur" not in event:
        problems.append("complete events (ph=X) require dur")
    if "args" in event and not isinstance(event["args"], dict):
        problems.append("args must be an object")
    return problems


def validate_trace_file(path: str) -> dict:
    """Validate a JSON-lines trace file.

    Returns ``{"events": n, "names": {...}, "errors": [...]}`` — errors
    is empty for a valid file. Each error names its line number.
    """
    n_events = 0
    names: set[str] = set()
    errors: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
                continue
            for problem in validate_trace_event(event):
                errors.append(f"line {lineno}: {problem}")
            n_events += 1
            if isinstance(event, dict) and isinstance(event.get("name"), str):
                names.add(event["name"])
    if n_events == 0:
        errors.append("trace file contains no events")
    return {"events": n_events, "names": names, "errors": errors}
