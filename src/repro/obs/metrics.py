"""Named counters, gauges, and latency histograms with one merge rule.

:class:`MetricsRegistry` is the measurement substrate of the whole
stack: the render server's request counters, the worker pool's task
counters, the engines' per-phase timings, and the campaign's per-config
costs all land in registries of this one type, so there is exactly one
snapshot format and one cross-process aggregation rule.

Design points:

* **Lock-free fast path.**  Each thread increments into its own private
  shard (a per-thread dict registered once under the registry lock), so
  ``add()``/``observe()`` never take a lock and never contend.  Readers
  (:meth:`~MetricsRegistry.snapshot`) sum across shards under the lock;
  per-shard values only ever grow, so successive snapshots of a counter
  are monotonically non-decreasing even while writers are running.
* **Explicit-bucket histograms.**  :class:`Histogram` keeps counts per
  fixed upper-bound bucket plus exact ``count``/``sum``/``min``/``max``;
  p50/p95/p99 are interpolated within the winning bucket and clamped to
  the observed range.  Two histograms over the same buckets merge by
  adding bucket counts — which is what makes worker-side measurements
  foldable into the parent without shipping raw samples.
* **Cross-process aggregation.**  A worker calls
  :meth:`~MetricsRegistry.collect` (``reset=True``) after each task and
  ships the plain-dict delta with its result; the parent folds it in
  with :meth:`~MetricsRegistry.merge`.  Deltas are additive, so metrics
  survive any interleaving of workers and tasks.
* **Gauges are providers, not state.**  A gauge is a callable returning
  the *instantaneous* value (queue depth, utilization); it is evaluated
  at snapshot time, outside the registry lock (a provider may take other
  locks — e.g. the pool's — and holding ours would order them).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable

#: Default histogram buckets: latency seconds, roughly exponential from
#: 50 microseconds to one minute.  Everything above the last bound lands
#: in the implicit +inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_INF = float("inf")


class Histogram:
    """An explicit-bucket histogram with exact count/sum/min/max.

    ``buckets`` are ascending upper bounds; values above the last bound
    fall into an implicit overflow bucket.  Instances are not
    thread-safe on their own — the registry gives each thread its own.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly ascending")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = _INF
        self.max = -_INF

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.buckets, v)] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    # -- aggregation ----------------------------------------------------

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram (or its :meth:`state` dict) into this
        one.  Bucket layouts must match — both sides of the pool wire
        are this module, so they do by construction."""
        if isinstance(other, dict):
            buckets = tuple(other["buckets"])
            counts = other["counts"]
            count = other["count"]
            total = other["sum"]
            lo = other["min"]
            hi = other["max"]
            lo = _INF if lo is None else lo
            hi = -_INF if hi is None else hi
        else:
            buckets, counts = other.buckets, other.counts
            count, total, lo, hi = other.count, other.sum, other.min, other.max
        if buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(counts):
            self.counts[i] += c
        self.count += count
        self.sum += total
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def copy(self) -> "Histogram":
        dup = Histogram(self.buckets)
        dup.merge(self)
        return dup

    # -- derived values -------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation inside the winning bucket, clamped to the observed
        ``[min, max]`` range (so a one-sample histogram reports that
        sample for every quantile)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                lo = self.buckets[i - 1] if i > 0 else min(self.min, self.buckets[0])
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                frac = (rank - cumulative) / c
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return max(self.min, min(self.max, value))
            cumulative += c
        return self.max

    def percentiles(self) -> dict[str, float]:
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    # -- wire formats ---------------------------------------------------

    def state(self) -> dict:
        """Mergeable plain-dict form (what worker deltas ship)."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def summary(self) -> dict:
        """Human-facing form: state plus mean and percentiles."""
        data = self.state()
        data["mean"] = self.mean
        data.update(self.percentiles())
        return data


class _Shard:
    """One thread's (or one merged-delta) private metric store."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}


class MetricsRegistry:
    """A set of named counters, gauges, and histograms.

    One registry is the process-wide default (:func:`get_registry`);
    subsystems with per-instance counters (e.g. one
    :class:`~repro.serve.server.RenderServer`) own private registries of
    the same type and can be merged into the global view.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: list[_Shard] = []
        # Cross-process deltas folded in via merge() accumulate here
        # (under the lock; merges are rare relative to increments).
        self._merged = _Shard()
        self._gauges: dict[str, Callable[[], float]] = {}

    # -- write fast path (lock-free: per-thread shards) -----------------

    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        return shard

    def add(self, name: str, amount: float = 1) -> None:
        """Increment a counter (floats allowed: seconds accumulate)."""
        counters = self._shard().counters
        counters[name] = counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one value into the named histogram."""
        histograms = self._shard().histograms
        hist = histograms.get(name)
        if hist is None:
            hist = histograms[name] = Histogram(self._buckets)
        hist.observe(value)

    def register_gauge(self, name: str, provider: Callable[[], float]) -> None:
        """Register an instantaneous-value provider, read at snapshot."""
        with self._lock:
            self._gauges[name] = provider

    # -- read side ------------------------------------------------------

    def _all_shards(self) -> list[_Shard]:
        with self._lock:
            return [*self._shards, self._merged]

    def counter_value(self, name: str) -> float:
        return sum(shard.counters.get(name, 0) for shard in self._all_shards())

    def histogram(self, name: str) -> Histogram | None:
        """A merged copy of the named histogram (None when unobserved)."""
        merged: Histogram | None = None
        for shard in self._all_shards():
            hist = shard.histograms.get(name)
            if hist is None:
                continue
            if merged is None:
                merged = Histogram(hist.buckets)
            merged.merge(hist)
        return merged

    def collect(self, reset: bool = False) -> dict:
        """Counters + histogram states as one additive plain dict.

        With ``reset`` the shards are cleared after collection — the
        worker-side delta-shipping primitive.  Resetting is only exact
        when no other thread is writing concurrently (worker processes
        execute one task at a time, which is exactly that case); the
        parent side never resets.
        """
        counters: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        with self._lock:
            shards = [*self._shards, self._merged]
            for shard in shards:
                for name, value in list(shard.counters.items()):
                    counters[name] = counters.get(name, 0) + value
                for name, hist in list(shard.histograms.items()):
                    if name in histograms:
                        merged = Histogram(tuple(histograms[name]["buckets"]))
                        merged.merge(histograms[name])
                        merged.merge(hist)
                        histograms[name] = merged.state()
                    else:
                        histograms[name] = hist.copy().state()
                if reset:
                    shard.counters.clear()
                    shard.histograms.clear()
        return {"counters": counters, "histograms": histograms}

    def merge(self, delta: dict | None) -> None:
        """Fold a :meth:`collect`-shaped delta (e.g. shipped back from a
        pool worker) into this registry.  Unknown keys are ignored, so
        deltas may carry side-channel payloads (trace events)."""
        if not delta:
            return
        counters = delta.get("counters") or {}
        histograms = delta.get("histograms") or {}
        with self._lock:
            target = self._merged
            for name, value in counters.items():
                target.counters[name] = target.counters.get(name, 0) + value
            for name, state in histograms.items():
                hist = target.histograms.get(name)
                if hist is None:
                    hist = target.histograms[name] = Histogram(
                        tuple(state["buckets"]))
                hist.merge(state)

    def snapshot(self) -> dict:
        """One self-describing dict: counters, gauges, histograms.

        Counter values are monotonically non-decreasing across
        successive snapshots (per-shard values only grow and shards are
        never dropped).  Gauge providers run *outside* the lock.
        """
        data = self.collect(reset=False)
        with self._lock:
            gauges = dict(self._gauges)
        gauge_values = {}
        for name, provider in gauges.items():
            gauge_values[name] = provider()
        histograms = {}
        for name, state in data["histograms"].items():
            hist = Histogram(tuple(state["buckets"]))
            hist.merge(state)
            histograms[name] = hist.summary()
        return {
            "counters": {k: data["counters"][k] for k in sorted(data["counters"])},
            "gauges": {k: gauge_values[k] for k in sorted(gauge_values)},
            "histograms": {k: histograms[k] for k in sorted(histograms)},
        }

    def reset(self) -> None:
        """Drop every recorded value (tests).  Registered gauges stay."""
        with self._lock:
            for shard in [*self._shards, self._merged]:
                shard.counters.clear()
                shard.histograms.clear()


# ---------------------------------------------------------------------------
# The process-wide default registry: process-scoped subsystems (engines,
# pool, tile scheduler, replay, campaign) all record here, and worker
# deltas are folded into the parent's instance.

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def reset_registry() -> None:
    """Clear the default registry in place (tests; references stay valid)."""
    _default_registry.reset()
