"""Per-phase profiling helpers for the engines and the hwsim replay.

Engine inner loops are too hot for a context manager per phase; they
accumulate raw seconds into a :class:`PhaseAccumulator` (a plain dict
add per phase) and flush once per bundle/replay into histogram metrics
(``rt.phase.traversal``, ``replay.phase.decode``, ...). Code that runs
per-tile or coarser can use :func:`phase_timer` directly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import emit_span, tracing_active


class PhaseAccumulator:
    """Accumulates seconds per named phase; flushes into histograms.

    One accumulator covers one unit of work (a ray bundle, one replay);
    ``flush()`` records each phase total as a single histogram sample,
    so the histogram's distribution is *per unit of work*, which is the
    granularity the tile cost model and the bench reports want.
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds

    def flush(self, prefix: str, registry: MetricsRegistry | None = None) -> None:
        """Record each phase total as one sample of ``prefix.<phase>``
        and clear the accumulator. No-op when nothing was recorded."""
        if not self.seconds:
            return
        reg = registry if registry is not None else get_registry()
        for phase, seconds in self.seconds.items():
            reg.observe(f"{prefix}.{phase}", seconds)
        self.seconds.clear()


@contextmanager
def phase_timer(metric: str, registry: MetricsRegistry | None = None,
                span_name: str | None = None, **span_args):
    """Time a block into histogram ``metric``; optionally emit a span.

    For per-tile-or-coarser code paths. The histogram sample is always
    recorded; the span only when tracing is active and ``span_name`` is
    given.
    """
    start_ns = time.time_ns()  # repro: lint-ok[parity-nondeterminism] span timestamps must share the workers' wall clock for cross-process timelines; observability only, never image bits
    try:
        yield
    finally:
        end_ns = time.time_ns()  # repro: lint-ok[parity-nondeterminism] same wall-clock span contract as the start stamp above

        reg = registry if registry is not None else get_registry()
        reg.observe(metric, (end_ns - start_ns) / 1e9)
        if span_name is not None and tracing_active():
            emit_span(span_name, start_ns, end_ns, **span_args)
