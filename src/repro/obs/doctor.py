"""``repro doctor`` — triage an incident bundle into a human report.

A bundle (:data:`repro.obs.flight.FLIGHT_SCHEMA`) is raw forensics:
the parent's event ring, every worker's last spooled checkpoint, a
metrics snapshot, and the incident context. :func:`triage` distills it
into the questions an operator actually asks — *what is the timeline,
where did each process last get to, which counters look wrong, and
what probably happened* — and :func:`render_report` prints the answer.

The probable-cause heuristics are keyed on the known failure classes
the stack itself reports (worker crash reaps, exhausted task retries,
remote task errors, saturated-server shedding, unhandled CLI
exceptions); unknown reasons still get the timeline and counter
analysis, just no diagnosis.
"""

from __future__ import annotations

import json

from repro.obs.events import (
    CHAOS,
    CRASH,
    ERROR,
    REQUEUE,
    SHED,
    validate_flight_event,
)
from repro.obs.flight import CHECKPOINT_SCHEMA, FLIGHT_SCHEMA

#: Counters whose mere presence in a bundle is an anomaly worth
#: surfacing (value > 0 means something on a failure path fired).
ANOMALY_COUNTERS = (
    "pool.crashes",
    "pool.requeues",
    "pool.tasks_failed",
    "pool.deadline_kills",
    "pool.quarantined",
    "serve.rejected",
    "serve.timed_out",
    "serve.pool_fallbacks",
    "registry.disk_rejects",
    "rt.packet_fallbacks",
    "chaos.injected",
)

#: Signal exit codes worth naming (negative exitcode = -signal).
_SIGNALS = {-9: "SIGKILL (OOM killer or external kill)",
            -11: "SIGSEGV (native crash)",
            -15: "SIGTERM",
            -6: "SIGABRT"}


def load_bundle(path: str) -> dict:
    """Load and schema-check one incident bundle; raises ``ValueError``
    on a non-bundle document, ``OSError`` on unreadable files."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    if not isinstance(document, dict) \
            or document.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"{path} is not an incident bundle "
            f"(expected schema {FLIGHT_SCHEMA!r}, "
            f"got {document.get('schema') if isinstance(document, dict) else type(document).__name__!r})")
    return document


def validate_bundle(bundle: dict) -> list[str]:
    """Structural problems in a bundle (empty = valid). Used by tests
    and the CI crash drill to pin the bundle format."""
    problems = []
    for field in ("schema", "created_unix", "reason", "context", "process",
                  "environment", "events", "workers", "metrics"):
        if field not in bundle:
            problems.append(f"missing required field {field!r}")
    for index, event in enumerate(bundle.get("events", [])):
        for problem in validate_flight_event(event):
            problems.append(f"events[{index}]: {problem}")
    for windex, checkpoint in enumerate(bundle.get("workers", [])):
        if not isinstance(checkpoint, dict) \
                or checkpoint.get("schema") != CHECKPOINT_SCHEMA:
            problems.append(f"workers[{windex}]: not a checkpoint document")
            continue
        for index, event in enumerate(checkpoint.get("events", [])):
            for problem in validate_flight_event(event):
                problems.append(f"workers[{windex}].events[{index}]: {problem}")
    return problems


# ---------------------------------------------------------------------------
# Triage.


def _merged_timeline(bundle: dict) -> list[dict]:
    """Parent + worker events as one timeline, oldest first. Each event
    gains a ``source`` label ("parent" or "worker <id>")."""
    timeline = []
    for event in bundle.get("events", []):
        if isinstance(event, dict):
            timeline.append(dict(event, source="parent"))
    for checkpoint in bundle.get("workers", []):
        if not isinstance(checkpoint, dict):
            continue
        label = f"worker {checkpoint.get('worker_id', '?')}"
        for event in checkpoint.get("events", []):
            if isinstance(event, dict):
                timeline.append(dict(event, source=label))
    timeline.sort(key=lambda event: event.get("ts", 0))
    return timeline


def _last_event_per_source(timeline: list[dict]) -> dict:
    last: dict = {}
    for event in timeline:
        last[event["source"]] = event
    return last


def _counter_anomalies(bundle: dict) -> list[tuple[str, int]]:
    counters = {}
    metrics = bundle.get("metrics")
    if isinstance(metrics, dict):
        counters = metrics.get("counters", {}) or {}
    anomalies = []
    for name in ANOMALY_COUNTERS:
        value = counters.get(name, 0)
        if value:
            anomalies.append((name, int(value)))
    return anomalies


def _crashed_worker_checkpoint(bundle: dict) -> dict | None:
    """The checkpoint of the worker the incident context names."""
    context = bundle.get("context", {})
    wid = context.get("worker")
    if wid is None:
        return None
    for checkpoint in bundle.get("workers", []):
        if isinstance(checkpoint, dict) and checkpoint.get("worker_id") == wid:
            return checkpoint
    return None


def _chaos_attributions(timeline: list[dict]) -> list[str]:
    """Injected faults visible anywhere in the merged timeline.

    A chaos event in the ring means the failure being triaged was (or
    may have been) *manufactured* — naming the schedule entry first
    stops an operator chasing a drill as a production fault.
    """
    causes = []
    for event in timeline:
        if event.get("kind") != CHAOS:
            continue
        data = event.get("data") or {}
        causes.append(
            f"injected fault: {data.get('directive', '?')!r} fired at "
            f"chaos point {data.get('point', '?')!r} "
            f"(invocation {data.get('hit', '?')}, {event.get('source')}) — "
            "this failure was manufactured by the fault-injection schedule")
    return causes


def _probable_causes(bundle: dict, timeline: list[dict]) -> list[str]:
    reason = bundle.get("reason", "")
    context = bundle.get("context", {})
    causes: list[str] = _chaos_attributions(timeline)
    if reason in ("worker-crash", "task-retries-exhausted",
                  "poison-task-quarantined"):
        wid = context.get("worker")
        exitcode = context.get("exitcode")
        if context.get("watchdog_deadline_s") is not None:
            causes.append(
                f"worker {wid} was SIGKILLed by the pool's own hung-worker "
                f"watchdog: task {context.get('task')} exceeded its "
                f"{context.get('watchdog_deadline_s')}s deadline "
                f"(overdue {context.get('overdue_s', '?')}s) — a hang, "
                "not an OOM or external kill")
        elif exitcode in _SIGNALS:
            causes.append(f"worker {wid} exited with {exitcode}: "
                          f"killed by {_SIGNALS[exitcode]}")
        elif isinstance(exitcode, int) and exitcode != 0:
            causes.append(f"worker {wid} exited with code {exitcode} "
                          "(uncaught exit in the worker process)")
        checkpoint = _crashed_worker_checkpoint(bundle)
        if checkpoint:
            events = [e for e in checkpoint.get("events", [])
                      if isinstance(e, dict)]
            if events and events[-1].get("name") == "worker.task_start":
                task = (events[-1].get("data") or {}).get("task")
                causes.append(
                    f"worker {wid}'s last checkpointed event is the start "
                    f"of task {task} — it died mid-task, not idle")
        else:
            causes.append(
                f"no spool checkpoint for worker {wid}: it died before "
                "its first task start (startup crash / import failure?)")
        if reason == "poison-task-quarantined":
            causes.append(
                f"task {context.get('task')} was quarantined after killing "
                f"{len(context.get('fatal_pids', []) or [])} distinct worker "
                "processes — a poison payload, failed fast instead of "
                "burning more workers")
        elif reason == "task-retries-exhausted":
            causes.append(
                f"task {context.get('task')} killed its worker "
                f"{context.get('retries', '?')} times — the task itself is "
                "the likely culprit (poison payload), not the host")
        elif any(event.get("kind") == REQUEUE for event in timeline):
            causes.append("the in-flight task was requeued on another "
                          "worker — one-off crash, service continued")
    elif reason == "remote-task-error":
        causes.append(
            f"task {context.get('task')} raised "
            f"{context.get('error', 'an exception')} inside worker "
            f"{context.get('worker')}; the worker survived — this is an "
            "application error, not an infrastructure crash")
    elif reason == "server-saturated":
        causes.append(
            f"submit queue hit max_pending={context.get('max_pending', '?')}"
            " — offered load exceeds render throughput; shed load is by "
            "design, raise max_pending or add workers only if sustained")
        sheds = sum(1 for event in timeline if event.get("kind") == SHED)
        if sheds > 1:
            causes.append(f"{sheds} shed events in the ring: a sustained "
                          "overload burst, not a single spike")
    elif reason == "pool-circuit-open":
        causes.append(
            f"the server's pool-health circuit breaker opened after "
            f"{context.get('threshold', '?')} consecutive pooled-render "
            f"failures ({context.get('error', 'WorkerCrashError')}); "
            f"requests are degrading to the serial in-process path "
            f"(bit-identical pixels) for {context.get('cooldown_s', '?')}s "
            "— investigate the pool, the images are safe")
    elif reason == "cli-unhandled-exception":
        causes.append(
            f"command {context.get('command')!r} died with "
            f"{context.get('error', 'an exception')} — the traceback on "
            "stderr is primary; this bundle preserves what led up to it")
    if not causes:
        causes.append(f"no heuristic for reason {reason!r}; read the "
                      "timeline below")
    return causes


def triage(bundle: dict) -> dict:
    """Distill a bundle into timeline/last-events/anomalies/causes."""
    timeline = _merged_timeline(bundle)
    return {
        "reason": bundle.get("reason"),
        "context": bundle.get("context", {}),
        "timeline": timeline,
        "last_events": _last_event_per_source(timeline),
        "anomalies": _counter_anomalies(bundle),
        "probable_causes": _probable_causes(bundle, timeline),
        "crashes": sum(1 for e in timeline if e.get("kind") == CRASH),
        "errors": sum(1 for e in timeline if e.get("kind") == ERROR),
    }


# ---------------------------------------------------------------------------
# Rendering.


def _fmt_event(event: dict, t0_ns: int) -> str:
    offset_ms = (event.get("ts", t0_ns) - t0_ns) / 1e6
    data = event.get("data")
    suffix = ""
    if data:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(data.items()))
        suffix = f"  {{{pairs}}}"
    return (f"  {offset_ms:+12.3f} ms  [{event.get('source', '?'):>9s}] "
            f"{event.get('kind', '?'):<9s} {event.get('name', '?')}{suffix}")


def render_report(bundle: dict, tail: int = 40) -> str:
    """The human triage report ``repro doctor`` prints."""
    analysis = triage(bundle)
    process = bundle.get("process", {})
    lines = []
    lines.append("incident bundle")
    lines.append("=" * 63)
    lines.append(f"reason:    {analysis['reason']}")
    lines.append(f"process:   pid {process.get('pid')} "
                 f"({' '.join(process.get('argv', [])) or 'unknown argv'})")
    context = analysis["context"]
    if context:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
        lines.append(f"context:   {pairs}")
    lines.append("")
    lines.append("probable cause")
    lines.append("-" * 63)
    for cause in analysis["probable_causes"]:
        lines.append(f"* {cause}")
    if analysis["anomalies"]:
        lines.append("")
        lines.append("counter anomalies")
        lines.append("-" * 63)
        for name, value in analysis["anomalies"]:
            lines.append(f"  {name:<28s} {value}")
    lines.append("")
    lines.append("last event per process")
    lines.append("-" * 63)
    timeline = analysis["timeline"]
    t0_ns = timeline[0].get("ts", 0) if timeline else 0
    for source in sorted(analysis["last_events"]):
        event = analysis["last_events"][source]
        lines.append(f"  {source:>9s}: {event.get('kind')} "
                     f"{event.get('name')} "
                     f"(+{(event.get('ts', t0_ns) - t0_ns) / 1e6:.3f} ms)")
    lines.append("")
    shown = timeline[-tail:]
    dropped = len(timeline) - len(shown)
    header = f"timeline (last {len(shown)} of {len(timeline)} events"
    header += f", {dropped} older omitted)" if dropped else ")"
    lines.append(header)
    lines.append("-" * 63)
    for event in shown:
        lines.append(_fmt_event(event, t0_ns))
    if not timeline:
        lines.append("  (no events recorded)")
    return "\n".join(lines)
