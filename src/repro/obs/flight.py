"""The flight recorder: always-on ring-buffer telemetry + crash bundles.

Production systems keep a black box so the *first* occurrence of a
fault is diagnosable. This module is that box for the whole stack:

* :class:`FlightRecorder` — a fixed-size per-process ring of structured
  events (:mod:`repro.obs.events`). Recording is one ``deque.append``
  of a small tuple (GIL-atomic, O(ns), bounded memory); the ring is on
  by default and cheap enough to stay on in every run.
* **Worker checkpoints** — pool workers spool their ring + metrics
  snapshot to ``<flight dir>/spool/`` at each task start
  (:func:`checkpoint_worker`), so a SIGKILL'd worker still leaves its
  last checkpoint instead of losing all telemetry with the process.
* **Incident bundles** — on any incident (worker crash reap, remote
  task error, saturated-server shedding, an unhandled CLI exception)
  :func:`dump_incident` writes one self-contained JSON bundle: the
  parent ring, every worker's last checkpoint, the task payload
  summary, pool topology, a registry snapshot, and the environment.
  ``repro doctor <bundle>`` (:mod:`repro.obs.doctor`) turns it into a
  triage report.

Knobs (environment):

* ``REPRO_FLIGHT=0`` — disable the recorder entirely (no ring, no
  checkpoints, no bundles).
* ``REPRO_FLIGHT_DIR`` — where bundles and worker spools go (default:
  ``<tmp>/repro-flight-<uid>``).
* ``REPRO_FLIGHT_CAPACITY`` — ring size in events (default 512).
* ``REPRO_FLIGHT_INTERVAL`` — minimum seconds between two bundles for
  the *same* reason (default 10; rate-limits incident storms).

Dump paths never raise: forensics must not turn an incident into a
second failure. All wall-clock reads here feed bundles and event
timestamps only — never the image.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from collections import deque

import repro.chaos as chaos
from repro.obs import events as ev
from repro.obs.metrics import get_registry

#: Bundle document schema tag.
FLIGHT_SCHEMA = "repro.flight/v1"
#: Worker spool checkpoint schema tag.
CHECKPOINT_SCHEMA = "repro.flight-checkpoint/v1"
#: Default ring capacity (events). Small enough that a worker
#: checkpoint is one modest JSON write per task.
DEFAULT_CAPACITY = 512
#: Default minimum seconds between bundles sharing a reason.
DEFAULT_MIN_INTERVAL = 10.0
#: Bundles kept on disk before the oldest are pruned.
MAX_BUNDLES = 32


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw:
        try:
            value = int(raw)
            if value >= 1:
                return value
        except ValueError:
            pass
    return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw:
        try:
            value = float(raw)
            if value >= 0:
                return value
        except ValueError:
            pass
    return default


class FlightRecorder:
    """A fixed-size ring of event tuples.

    ``deque(maxlen=n).append`` is GIL-atomic, so the hot
    :meth:`record` path takes no lock and never allocates beyond the
    ring's bound — old events simply fall off the far end.
    """

    __slots__ = ("_ring",)

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight ring capacity must be >= 1")
        self._ring = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, kind: str, name: str, data: dict | None = None,
               ts_ns: int | None = None) -> None:
        """Append one event; ``ts_ns`` lets span mirrors backdate to
        their start time."""
        if ts_ns is None:
            ts_ns = time.time_ns()  # repro: lint-ok[parity-nondeterminism] event timestamps line up with tracer spans across processes; never feeds the image
        self._ring.append(ev.as_tuple(
            ts_ns, os.getpid(), threading.get_ident() & 0x7FFFFFFF,
            kind, name, data))

    def events(self) -> list[tuple]:
        """A snapshot copy of the ring, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()


# ---------------------------------------------------------------------------
# Process-global recorder + configuration. The module lock guards the
# slow paths (configure, rate limiting, dump bookkeeping); the record
# hot path deliberately reads the two globals without it — both are
# replaced atomically, and a racing reader only ever sees a whole
# recorder or a whole bool.

_lock = threading.Lock()
_enabled: bool = os.environ.get("REPRO_FLIGHT", "1") != "0"


def _reinit_after_fork() -> None:
    """Replace the module lock in forked children.

    The pool respawns workers by forking from its collector thread
    while other threads run; a child forked while some parent thread
    holds ``_lock`` inherits it locked forever, and the first thing a
    worker does is ``configure()`` — which takes it. A fresh lock (plus
    cleared dump bookkeeping, which belongs to the parent) makes the
    child immune to whatever the parent's threads were doing.
    """
    global _lock
    _lock = threading.Lock()
    with _lock:
        _last_dump.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)
_recorder = FlightRecorder(_env_int("REPRO_FLIGHT_CAPACITY",
                                    DEFAULT_CAPACITY))
_dir_override: str | None = None
_min_interval: float = _env_float("REPRO_FLIGHT_INTERVAL",
                                  DEFAULT_MIN_INTERVAL)
_last_dump: dict = {}  # reason -> monotonic seconds of last bundle
_last_error: str | None = None  # last swallowed dump failure (debugging)


def enabled() -> bool:
    """Whether the recorder is on (``REPRO_FLIGHT=0`` turns it off)."""
    return _enabled


def record(kind: str, name: str, **data) -> None:
    """Record one event into this process's ring (no-op when off).

    Payload values must be JSON-serializable plain data — the ring ends
    up verbatim inside bundles and checkpoints (the
    ``flight-serializable`` lint rule enforces this statically).
    """
    if not _enabled:
        return
    _recorder.record(kind, name, data or None)


def record_span(name: str, start_ns: int, end_ns: int,
                args: dict | None = None) -> None:
    """Mirror one finished tracer span into the ring, stamped at its
    start so the doctor's timeline interleaves correctly."""
    if not _enabled:
        return
    data = {"dur_us": max(0, end_ns - start_ns) // 1000}
    if args:
        data.update(args)
    _recorder.record(ev.SPAN, name, data, ts_ns=start_ns)


def events() -> list[tuple]:
    """Snapshot of this process's ring (oldest first)."""
    return _recorder.events()


def clear() -> None:
    """Empty the ring (workers call this at startup: a forked child
    inherits the parent's ring and must not re-report its events)."""
    _recorder.clear()


def configure(directory: str | None = None, capacity: int | None = None,
              enabled: bool | None = None,
              min_interval: float | None = None) -> None:
    """Reconfigure the process-global recorder (tests, worker startup).

    ``capacity`` replaces the ring (events are kept up to the new
    bound); ``directory`` overrides ``REPRO_FLIGHT_DIR`` (an empty
    string clears the override back to the env/default resolution).
    """
    global _recorder, _dir_override, _enabled, _min_interval
    with _lock:
        if directory is not None:
            _dir_override = str(directory) or None
        if capacity is not None:
            fresh = FlightRecorder(capacity)
            for event in _recorder.events()[-capacity:]:
                fresh._ring.append(event)
            _recorder = fresh
        if enabled is not None:
            _enabled = bool(enabled)
        if min_interval is not None:
            _min_interval = float(min_interval)


def reset() -> None:
    """Clear the ring and all rate-limit/dump bookkeeping (tests)."""
    global _last_error
    with _lock:
        _recorder.clear()
        _last_dump.clear()
        _last_error = None


def flight_dir() -> str:
    """Where bundles and worker spools live (not created until used)."""
    if _dir_override is not None:
        return _dir_override
    env = os.environ.get("REPRO_FLIGHT_DIR")
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-flight-{uid}")


def dir_override() -> str | None:
    """The explicitly configured directory, or None when resolution
    falls through to ``REPRO_FLIGHT_DIR``/the default (callers that
    temporarily reroute the recorder restore *this*, not the resolved
    :func:`flight_dir`, so they never pin the env fallback)."""
    return _dir_override


def spool_dir() -> str:
    """Where workers checkpoint their rings."""
    return os.path.join(flight_dir(), "spool")


def last_error() -> str | None:
    """The last swallowed dump/checkpoint failure, if any (debugging)."""
    return _last_error


def _note_failure(exc: BaseException) -> None:
    global _last_error
    with _lock:
        _last_error = repr(exc)


def _uname() -> tuple:
    """system/release/machine without subprocesses (``os.uname`` is a
    plain syscall; ``platform.platform()`` may fork ``uname -p``)."""
    try:
        info = os.uname()
        return (info.sysname, info.release, info.machine)
    except (AttributeError, OSError):
        return (sys.platform,)


def _json_default(obj):
    """Make bundles survive numpy scalars and arbitrary objects."""
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(obj)


def _write_atomic(path: str, document: dict) -> None:
    """tmp + rename so a SIGKILL mid-write never leaves a torn file."""
    body = json.dumps(document, default=_json_default,
                      separators=(",", ":"), sort_keys=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(body)
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Worker spool checkpoints.


def _spool_path(worker_id: int) -> str:
    return os.path.join(spool_dir(), f"worker-{int(worker_id)}.json")


def checkpoint_worker(worker_id: int) -> str | None:
    """Spool this process's ring + metrics snapshot for ``worker_id``.

    Called by ``pool.worker`` at each task start, so the spool always
    holds the in-flight task's ``task_start`` event when the process is
    killed mid-task. Returns the spool path, or None when disabled or
    the write failed (checkpoints must never kill a worker).
    """
    if not _enabled:
        return None
    path = _spool_path(worker_id)
    try:
        directive = chaos.point("flight.spool")
        if directive is not None:
            # The injected OSError lands in the except below — exactly
            # the transient-spool-failure path this point drills.
            chaos.execute("flight.spool", directive)
        os.makedirs(spool_dir(), exist_ok=True)
        _write_atomic(path, {
            "schema": CHECKPOINT_SCHEMA,
            "worker_id": int(worker_id),
            "pid": os.getpid(),
            "written_unix": time.time(),  # repro: lint-ok[parity-nondeterminism] checkpoint bookkeeping timestamp; never feeds the image
            "events": [ev.as_dict(event) for event in _recorder.events()],
            "metrics": get_registry().snapshot(),
        })
    except Exception as exc:  # forensics must never become a second failure
        _note_failure(exc)
        return None
    return path


def clear_worker_checkpoint(worker_id: int) -> None:
    """Remove a worker's spool file (clean shutdown — nothing to
    autopsy)."""
    try:
        os.remove(_spool_path(worker_id))
    except OSError:
        pass


def load_worker_checkpoints() -> list[dict]:
    """Every parseable worker checkpoint in the spool, by worker id."""
    spool = spool_dir()
    checkpoints = []
    try:
        names = sorted(os.listdir(spool))
    except OSError:
        return []
    for name in names:
        if not (name.startswith("worker-") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(spool, name), "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, ValueError):
            continue  # torn/garbage spool: skip, don't fail the dump
        if isinstance(document, dict) \
                and document.get("schema") == CHECKPOINT_SCHEMA:
            checkpoints.append(document)
    return checkpoints


# ---------------------------------------------------------------------------
# Incident bundles.


def _rate_limited(reason: str) -> bool:
    """True when a bundle for ``reason`` was dumped too recently
    (and otherwise stamps now as the last dump)."""
    now = time.monotonic()
    with _lock:
        last = _last_dump.get(reason)
        if last is not None and now - last < _min_interval:
            return True
        _last_dump[reason] = now
    return False


def _prune_bundles(directory: str) -> None:
    """Keep only the newest :data:`MAX_BUNDLES` bundles."""
    bundles = []
    for name in os.listdir(directory):
        if name.startswith("incident-") and name.endswith(".json"):
            path = os.path.join(directory, name)
            try:
                bundles.append((os.path.getmtime(path), path))
            except OSError:
                continue
    bundles.sort(reverse=True)
    for _, path in bundles[MAX_BUNDLES:]:
        try:
            os.remove(path)
        except OSError:
            pass


def _environment() -> dict:
    """The knobs that shape a run (REPRO_*/GRTX_* only — no secrets)."""
    return {key: value for key, value in os.environ.items()
            if key.startswith(("REPRO_", "GRTX_"))}


def dump_incident(reason: str, **context) -> str | None:
    """Write one incident bundle; returns its path.

    Returns None when the recorder is off, the reason is rate-limited,
    or the write failed — dumping is forensics, never control flow, so
    this function never raises.
    """
    if not _enabled or _rate_limited(reason):
        return None
    try:
        directory = flight_dir()
        os.makedirs(directory, exist_ok=True)
        created = time.time()  # repro: lint-ok[parity-nondeterminism] bundle bookkeeping timestamp; never feeds the image
        slug = "".join(c if c.isalnum() else "-" for c in reason)[:48]
        path = os.path.join(
            directory,
            f"incident-{slug}-{os.getpid()}-{time.time_ns()}.json")  # repro: lint-ok[parity-nondeterminism] unique bundle filename; never feeds the image
        bundle = {
            "schema": FLIGHT_SCHEMA,
            "created_unix": created,
            "reason": reason,
            "context": context,
            "process": {
                "pid": os.getpid(),
                "argv": list(sys.argv),
                "python": sys.version.split()[0],
                # os.uname(), NOT platform.platform(): the latter lazily
                # shells out (uname -p) on first use, and forking a
                # subprocess from a dump racing the pool's own worker
                # respawn fork leaks the subprocess's error pipe into
                # the new worker — the dump then blocks forever waiting
                # for an EOF that can no longer arrive.
                "platform": " ".join(_uname()),
                "cwd": os.getcwd(),
            },
            "environment": _environment(),
            "events": [ev.as_dict(event) for event in _recorder.events()],
            "workers": load_worker_checkpoints(),
            "metrics": get_registry().snapshot(),
        }
        _write_atomic(path, bundle)
        _prune_bundles(directory)
    except Exception as exc:  # forensics must never become a second failure
        _note_failure(exc)
        return None
    record(ev.INCIDENT, "flight.incident", reason=reason,
           bundle=os.path.basename(path))
    return path
