"""Acceleration structures for Gaussian ray tracing.

Two families, matching the paper's comparison:

* :mod:`repro.bvh.monolithic` — the prior-work layout: one BVH over every
  proxy triangle (or custom primitive) of every Gaussian in the scene.
* :mod:`repro.bvh.two_level` — GRTX-SW: a TLAS whose leaves are
  per-Gaussian instances, all sharing a single template BLAS (unit sphere
  or icosphere).
"""

from repro.bvh.builder import BuildParams, build_bvh
from repro.bvh.layout import (
    INSTANCE_BYTES,
    LEAF_HEADER_BYTES,
    SPHERE_PRIM_BYTES,
    TRIANGLE_BYTES,
    CUSTOM_PRIM_BYTES,
    internal_node_bytes,
)
from repro.bvh.morton import morton_codes, radix_split
from repro.bvh.node import FlatBVH, KIND_EMPTY, KIND_INTERNAL, KIND_LEAF
from repro.bvh.monolithic import MonolithicBVH, build_monolithic
from repro.bvh.flatten import (
    FlatBlas,
    FlatMesh,
    FlatStructure,
    flatten,
    flattenable,
)
from repro.bvh.quality import TreeQuality, sah_cost, tree_quality
from repro.bvh.refit import RefitDrift, measure_drift, refit_bvh
from repro.bvh.serialize import (
    FORMAT_VERSION,
    StructureFormatError,
    load_structure,
    save_structure,
)
from repro.bvh.multi_object import (
    GaussianObject,
    MultiObjectScene,
    ObjectPose,
)
from repro.bvh.two_level import (
    HeteroTwoLevelBVH,
    SharedBlas,
    TwoLevelBVH,
    build_two_level,
    build_two_level_hetero,
)
from repro.bvh.stats import BVHStats, structure_stats

__all__ = [
    "BVHStats",
    "BuildParams",
    "CUSTOM_PRIM_BYTES",
    "FORMAT_VERSION",
    "FlatBVH",
    "FlatBlas",
    "FlatMesh",
    "FlatStructure",
    "GaussianObject",
    "HeteroTwoLevelBVH",
    "INSTANCE_BYTES",
    "KIND_EMPTY",
    "KIND_INTERNAL",
    "KIND_LEAF",
    "LEAF_HEADER_BYTES",
    "MonolithicBVH",
    "MultiObjectScene",
    "ObjectPose",
    "RefitDrift",
    "SPHERE_PRIM_BYTES",
    "SharedBlas",
    "StructureFormatError",
    "TRIANGLE_BYTES",
    "TreeQuality",
    "TwoLevelBVH",
    "build_bvh",
    "build_monolithic",
    "build_two_level",
    "build_two_level_hetero",
    "flatten",
    "flattenable",
    "internal_node_bytes",
    "load_structure",
    "measure_drift",
    "morton_codes",
    "radix_split",
    "refit_bvh",
    "sah_cost",
    "save_structure",
    "structure_stats",
    "tree_quality",
]
