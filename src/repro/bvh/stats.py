"""Size and shape statistics for acceleration structures (Table II, Fig 5b)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.two_level import TwoLevelBVH


@dataclass(frozen=True)
class BVHStats:
    """Structural summary of one acceleration structure."""

    proxy: str
    n_gaussians: int
    n_primitives: int
    n_internal_nodes: int
    n_leaves: int
    height: int
    total_bytes: int

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)

    @property
    def total_gb(self) -> float:
        return self.total_bytes / (1024.0 ** 3)


def structure_stats(structure: MonolithicBVH | TwoLevelBVH) -> BVHStats:
    """Compute :class:`BVHStats` for either structure family."""
    if isinstance(structure, MonolithicBVH):
        bvh = structure.bvh
        return BVHStats(
            proxy=structure.proxy,
            n_gaussians=structure.n_gaussians,
            n_primitives=bvh.n_prims,
            n_internal_nodes=bvh.n_nodes,
            n_leaves=bvh.n_leaves,
            height=structure.height,
            total_bytes=structure.total_bytes,
        )
    if isinstance(structure, TwoLevelBVH):
        tlas = structure.tlas
        blas_nodes = 0 if structure.blas.bvh is None else structure.blas.bvh.n_nodes
        blas_leaves = 0 if structure.blas.bvh is None else structure.blas.bvh.n_leaves
        return BVHStats(
            proxy=structure.proxy,
            n_gaussians=structure.n_gaussians,
            n_primitives=tlas.n_prims + structure.blas.n_triangles,
            n_internal_nodes=tlas.n_nodes + blas_nodes,
            n_leaves=tlas.n_leaves + max(blas_leaves, 1),
            height=structure.height,
            total_bytes=structure.total_bytes,
        )
    raise TypeError(f"unsupported structure type {type(structure).__name__}")
