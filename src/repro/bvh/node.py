"""Flattened wide-BVH representation.

A :class:`FlatBVH` stores the tree in struct-of-arrays form: per internal
node, up to ``width`` child slots each carrying a bounding box, a kind tag
and a reference (child node index or leaf record index). Leaf records index
into a primitive permutation. Every node and leaf has an explicit byte
address so the timing model can replay real fetch traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.layout import LEAF_HEADER_BYTES, internal_node_bytes

KIND_EMPTY = 0
KIND_INTERNAL = 1
KIND_LEAF = 2


@dataclass
class FlatBVH:
    """A flattened ``width``-ary BVH.

    Attributes
    ----------
    width:
        Maximum children per internal node (the paper uses Embree BVH-6).
    child_lo / child_hi:
        ``(n_nodes, width, 3)`` child bounding boxes. Empty slots hold
        inverted infinite boxes so vectorized slab tests always miss them.
    child_kind / child_ref:
        ``(n_nodes, width)`` slot tag and reference (node index for
        ``KIND_INTERNAL``, leaf record index for ``KIND_LEAF``).
    leaf_start / leaf_count:
        Per-leaf-record range into ``prim_order``.
    prim_order:
        Permutation of primitive ids induced by the build.
    node_addr / leaf_addr / leaf_bytes:
        Byte addresses (relative to the structure's base) and sizes used by
        the fetch-trace recorder.
    """

    width: int
    child_lo: np.ndarray
    child_hi: np.ndarray
    child_kind: np.ndarray
    child_ref: np.ndarray
    leaf_start: np.ndarray
    leaf_count: np.ndarray
    prim_order: np.ndarray
    node_addr: np.ndarray
    leaf_addr: np.ndarray
    leaf_bytes: np.ndarray
    height: int
    base_address: int = 0

    @property
    def n_nodes(self) -> int:
        return self.child_kind.shape[0]

    @property
    def n_leaves(self) -> int:
        return self.leaf_start.shape[0]

    @property
    def n_prims(self) -> int:
        return self.prim_order.shape[0]

    @property
    def internal_bytes_total(self) -> int:
        return self.n_nodes * internal_node_bytes(self.width)

    @property
    def leaf_bytes_total(self) -> int:
        return int(self.leaf_bytes.sum())

    @property
    def total_bytes(self) -> int:
        """Total serialized size of this (sub)structure."""
        return self.internal_bytes_total + self.leaf_bytes_total

    def rebase(self, base_address: int) -> None:
        """Shift all byte addresses to start at ``base_address``.

        Used when multiple structures (TLAS, BLAS, instance table) are laid
        out in one global address space.
        """
        delta = base_address - self.base_address
        self.node_addr = self.node_addr + delta
        self.leaf_addr = self.leaf_addr + delta
        self.base_address = base_address

    def leaf_prims(self, leaf_index: int) -> np.ndarray:
        """Primitive ids stored in one leaf record."""
        start = int(self.leaf_start[leaf_index])
        count = int(self.leaf_count[leaf_index])
        return self.prim_order[start : start + count]

    def root_box(self) -> tuple[np.ndarray, np.ndarray]:
        """The bounding box of the whole tree (union of root children)."""
        valid = self.child_kind[0] != KIND_EMPTY
        return (
            self.child_lo[0][valid].min(axis=0),
            self.child_hi[0][valid].max(axis=0),
        )

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on corruption.

        Verified invariants:

        * every primitive appears exactly once across all leaves;
        * child node references are forward-only (acyclic, preorder);
        * parent boxes contain their children's boxes;
        * empty slots never precede occupied ones in a node.
        """
        seen = np.zeros(self.n_prims, dtype=bool)
        for leaf in range(self.n_leaves):
            prims = self.leaf_prims(leaf)
            if np.any(seen[prims]):
                raise ValueError("primitive referenced by multiple leaves")
            seen[prims] = True
        if not np.all(seen):
            raise ValueError("some primitives missing from leaves")
        for node in range(self.n_nodes):
            occupied = self.child_kind[node] != KIND_EMPTY
            if np.any(np.diff(occupied.astype(int)) > 0):
                raise ValueError("empty child slot precedes an occupied one")
            for slot in np.nonzero(occupied)[0]:
                if self.child_kind[node, slot] == KIND_INTERNAL:
                    child = int(self.child_ref[node, slot])
                    if child <= node or child >= self.n_nodes:
                        raise ValueError("child node reference is not forward-only")
                    child_occ = self.child_kind[child] != KIND_EMPTY
                    lo = self.child_lo[child][child_occ].min(axis=0)
                    hi = self.child_hi[child][child_occ].max(axis=0)
                    if np.any(lo < self.child_lo[node, slot] - 1e-9) or np.any(
                        hi > self.child_hi[node, slot] + 1e-9
                    ):
                        raise ValueError("parent box does not contain child box")


def leaf_addresses(
    leaf_count: np.ndarray,
    prim_bytes: int,
    leaf_region_base: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Bump-allocate leaf records after the internal-node region."""
    sizes = LEAF_HEADER_BYTES + leaf_count.astype(np.int64) * prim_bytes
    addr = leaf_region_base + np.concatenate([[0], np.cumsum(sizes[:-1])])
    return addr.astype(np.int64), sizes
