"""GRTX-SW: two-level acceleration structure with a single shared BLAS.

The TLAS is a BVH over per-Gaussian world AABBs whose leaves hold
*instances*: a 64-byte record with the world->object transform that maps
the Gaussian's kappa-sigma ellipsoid onto the unit sphere. Every instance
references the same BLAS — either a lone unit-sphere primitive (one
ray-AABB + one ray-sphere test per Gaussian, Blackwell-style) or a
template icosphere mesh of 20/80 triangles (ray-triangle hardware path).

Because the BLAS is shared, it is a few hundred bytes to a few KB total
and stays resident in the L1 cache, which is where the paper's >70% L1
hit rates come from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.builder import BuildParams, build_bvh
from repro.bvh.layout import (
    INSTANCE_BYTES,
    LEAF_HEADER_BYTES,
    SPHERE_PRIM_BYTES,
    TRIANGLE_BYTES,
    internal_node_bytes,
)
from repro.bvh.node import FlatBVH
from repro.gaussians import GaussianCloud, canonical_transforms, world_aabbs
from repro.geometry import unit_icosahedron_circumscribed
from repro.math3d import quat_to_rotation_matrix

#: Alignment between the TLAS region and the BLAS region.
_REGION_ALIGN = 256


@dataclass
class SharedBlas:
    """The single template BLAS shared by all Gaussian instances.

    ``kind`` is ``"sphere"`` (one unit-sphere primitive; no tree needed —
    the RT unit performs one root-box test and one sphere test) or
    ``"icosphere"`` (a small triangle BVH over the circumscribed template
    mesh in object space).
    """

    kind: str
    base_address: int
    subdivisions: int = 0
    bvh: FlatBVH | None = None
    tri_v0: np.ndarray | None = None
    tri_v1: np.ndarray | None = None
    tri_v2: np.ndarray | None = None

    @property
    def root_address(self) -> int:
        if self.kind == "sphere":
            return self.base_address
        return self.base_address + int(self.bvh.node_addr[0])

    @property
    def total_bytes(self) -> int:
        if self.kind == "sphere":
            # One root record: header + box + one sphere primitive.
            return LEAF_HEADER_BYTES + 24 + SPHERE_PRIM_BYTES
        return self.bvh.total_bytes

    @property
    def n_triangles(self) -> int:
        return 0 if self.kind == "sphere" else self.tri_v0.shape[0]


@dataclass
class TwoLevelBVH:
    """TLAS over Gaussian instances + one shared BLAS (GRTX-SW)."""

    tlas: FlatBVH
    blas: SharedBlas
    n_gaussians: int
    world_to_obj_linear: np.ndarray
    world_to_obj_offset: np.ndarray

    @property
    def proxy(self) -> str:
        if self.blas.kind == "sphere":
            return "tlas+sphere"
        return f"tlas+{20 * 4 ** self.blas.subdivisions}-tri"

    @property
    def total_bytes(self) -> int:
        """TLAS (nodes + inline instance records) + shared BLAS."""
        return self.tlas.total_bytes + self.blas.total_bytes

    @property
    def height(self) -> int:
        """Worst-case traversal depth: TLAS height plus BLAS height."""
        blas_height = 1 if self.blas.kind == "sphere" else self.blas.bvh.height
        return self.tlas.height + blas_height

    def instance_address(self, leaf_index: int, slot: int) -> int:
        """Byte address of one instance record inside a TLAS leaf."""
        return int(self.tlas.leaf_addr[leaf_index]) + LEAF_HEADER_BYTES + slot * INSTANCE_BYTES


@dataclass
class HeteroTwoLevelBVH:
    """TLAS over Gaussian instances + *several* shared BLAS templates.

    The homogeneous :class:`TwoLevelBVH` references one template from
    every instance; here each Gaussian picks one of a small set of
    templates (``gaussian_blas[i]`` is the slot into ``blas``).  This is
    how a merged multi-object scene keeps per-object proxy fidelity —
    one object can use the unit-sphere BLAS while another uses an
    icosphere mesh — without rebuilding either template per instance.
    """

    tlas: FlatBVH
    blas: tuple[SharedBlas, ...]
    gaussian_blas: np.ndarray
    n_gaussians: int
    world_to_obj_linear: np.ndarray
    world_to_obj_offset: np.ndarray

    @property
    def proxy(self) -> str:
        return "tlas+hetero"

    @property
    def total_bytes(self) -> int:
        """TLAS (nodes + inline instance records) + every shared BLAS."""
        return self.tlas.total_bytes + sum(b.total_bytes for b in self.blas)

    @property
    def height(self) -> int:
        """Worst-case traversal depth: TLAS height plus deepest BLAS."""
        blas_height = max(
            1 if b.kind == "sphere" else b.bvh.height for b in self.blas
        )
        return self.tlas.height + blas_height

    def instance_address(self, leaf_index: int, slot: int) -> int:
        """Byte address of one instance record inside a TLAS leaf."""
        return int(self.tlas.leaf_addr[leaf_index]) + LEAF_HEADER_BYTES + slot * INSTANCE_BYTES


def _build_shared_blas(blas_kind: str, subdivisions: int, base_address: int) -> SharedBlas:
    if blas_kind == "sphere":
        return SharedBlas(kind="sphere", base_address=base_address)
    if blas_kind != "icosphere":
        raise ValueError(f"unknown BLAS kind {blas_kind!r}; expected sphere or icosphere")
    verts, faces = unit_icosahedron_circumscribed(subdivisions)
    v0 = verts[faces[:, 0]]
    v1 = verts[faces[:, 1]]
    v2 = verts[faces[:, 2]]
    lo = np.minimum(np.minimum(v0, v1), v2)
    hi = np.maximum(np.maximum(v0, v1), v2)
    # The template mesh is tiny; a shallow wide tree keeps it to one or
    # two nodes of depth, as a real builder would produce.
    bvh = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(width=6, leaf_size=4))
    return SharedBlas(
        kind="icosphere",
        base_address=base_address,
        subdivisions=subdivisions,
        bvh=bvh,
        tri_v0=v0,
        tri_v1=v1,
        tri_v2=v2,
    )


def _instance_proxy_aabbs(
    cloud: GaussianCloud, subdivisions: int
) -> tuple[np.ndarray, np.ndarray]:
    """World AABBs of each instance-transformed template icosphere.

    The circumscribed template sticks out beyond the ellipsoid, so the
    TLAS must bound the *proxy geometry* the BLAS actually reports hits
    on (exactly as a Vulkan TLAS instance box derives from the BLAS root
    box).  Bounding only the ellipsoid made interval-constrained
    multiround traversal unsound: a proxy hit beyond its leaf box exit
    was pruned by the next round's ``t_min`` and dropped forever,
    diverging from singleround.
    """
    verts, _ = unit_icosahedron_circumscribed(subdivisions)
    rot = quat_to_rotation_matrix(cloud.rotations)
    radii = cloud.kappa * cloud.scales
    scaled = verts[None, :, :] * radii[:, None, :]
    world = np.einsum("nij,nvj->nvi", rot, scaled) + cloud.means[:, None, :]
    return world.min(axis=1), world.max(axis=1)


def build_two_level(
    cloud: GaussianCloud,
    blas_kind: str = "sphere",
    subdivisions: int = 0,
    params: BuildParams | None = None,
) -> TwoLevelBVH:
    """Build the GRTX-SW structure for a scene.

    ``blas_kind="sphere"`` gives the unit-sphere BLAS (Fig 22);
    ``blas_kind="icosphere"`` with ``subdivisions`` 0/1 gives the
    TLAS+20-tri / TLAS+80-tri configurations of Fig 12.
    """
    if blas_kind == "icosphere":
        lo, hi = _instance_proxy_aabbs(cloud, subdivisions)
    else:
        lo, hi = world_aabbs(cloud)
    if params is None:
        params = BuildParams()
    # TLAS leaves hold exactly one instance: hardware instance nodes are
    # individual records the RT unit fetches (and transforms through) one
    # at a time, unlike packed triangle leaves.
    from dataclasses import replace as _replace
    tlas_params = _replace(params, leaf_size=1)
    tlas = build_bvh(lo, hi, INSTANCE_BYTES, tlas_params)
    blas_base = -(-tlas.total_bytes // _REGION_ALIGN) * _REGION_ALIGN
    blas = _build_shared_blas(blas_kind, subdivisions, blas_base)
    if blas.bvh is not None:
        blas.bvh.rebase(blas_base)
    _, world_to_obj = canonical_transforms(cloud)
    return TwoLevelBVH(
        tlas=tlas,
        blas=blas,
        n_gaussians=len(cloud),
        world_to_obj_linear=world_to_obj.linear,
        world_to_obj_offset=world_to_obj.offset,
    )


def build_two_level_hetero(
    cloud: GaussianCloud,
    blas_specs: list[tuple[str, int]],
    gaussian_blas: np.ndarray,
    params: BuildParams | None = None,
) -> HeteroTwoLevelBVH:
    """Build a TLAS whose instances reference per-Gaussian BLAS templates.

    ``blas_specs`` lists the distinct templates as ``(kind,
    subdivisions)`` pairs; ``gaussian_blas[i]`` selects the slot for
    Gaussian ``i``.  TLAS leaf boxes bound whichever proxy geometry the
    selected template actually reports hits on (ellipsoid AABB for
    sphere slots, circumscribed template AABB for icosphere slots), and
    the BLAS regions are laid out sequentially after the TLAS on the
    same 256-byte alignment the homogeneous build uses.
    """
    if not blas_specs:
        raise ValueError("blas_specs must name at least one BLAS template")
    gaussian_blas = np.ascontiguousarray(
        np.asarray(gaussian_blas, dtype=np.int64)
    )
    if gaussian_blas.shape != (len(cloud),):
        raise ValueError(
            f"gaussian_blas must have one slot per Gaussian "
            f"({len(cloud)}), got shape {gaussian_blas.shape}"
        )
    if gaussian_blas.size and (
        gaussian_blas.min() < 0 or gaussian_blas.max() >= len(blas_specs)
    ):
        raise ValueError(
            f"gaussian_blas slots must be in [0, {len(blas_specs)}); "
            f"got range [{gaussian_blas.min()}, {gaussian_blas.max()}]"
        )
    lo = np.empty((len(cloud), 3), dtype=np.float64)
    hi = np.empty((len(cloud), 3), dtype=np.float64)
    sphere_boxes = None
    for slot, (kind, subdivisions) in enumerate(blas_specs):
        mask = gaussian_blas == slot
        if not mask.any():
            continue
        if kind == "sphere":
            if sphere_boxes is None:
                sphere_boxes = world_aabbs(cloud)
            lo[mask] = sphere_boxes[0][mask]
            hi[mask] = sphere_boxes[1][mask]
        elif kind == "icosphere":
            proxy_lo, proxy_hi = _instance_proxy_aabbs(cloud, subdivisions)
            lo[mask] = proxy_lo[mask]
            hi[mask] = proxy_hi[mask]
        else:
            raise ValueError(
                f"unknown BLAS kind {kind!r}; expected sphere or icosphere"
            )
    if params is None:
        params = BuildParams()
    from dataclasses import replace as _replace
    tlas_params = _replace(params, leaf_size=1)
    tlas = build_bvh(lo, hi, INSTANCE_BYTES, tlas_params)
    base = -(-tlas.total_bytes // _REGION_ALIGN) * _REGION_ALIGN
    blas_list = []
    for kind, subdivisions in blas_specs:
        blas = _build_shared_blas(kind, subdivisions, base)
        if blas.bvh is not None:
            blas.bvh.rebase(base)
        blas_list.append(blas)
        base += -(-blas.total_bytes // _REGION_ALIGN) * _REGION_ALIGN
    _, world_to_obj = canonical_transforms(cloud)
    return HeteroTwoLevelBVH(
        tlas=tlas,
        blas=tuple(blas_list),
        gaussian_blas=gaussian_blas,
        n_gaussians=len(cloud),
        world_to_obj_linear=world_to_obj.linear,
        world_to_obj_offset=world_to_obj.offset,
    )
