"""BVH refit for dynamic scenes.

Section VI of the paper argues GRTX extends naturally to dynamic scenes:
object movement only updates per-object transforms, and Gaussian motion
within an object only requires a *refit* — recomputing node bounding boxes
bottom-up without changing topology. Refit is orders of magnitude cheaper
than a rebuild but degrades tree quality as primitives drift, so engines
rebuild after enough frames. This module provides both the refit kernel
and the quality-degradation measurement that drives the rebuild heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.node import KIND_EMPTY, KIND_INTERNAL, KIND_LEAF, FlatBVH


def refit_bvh(bvh: FlatBVH, prim_lo: np.ndarray, prim_hi: np.ndarray) -> None:
    """Recompute all node boxes in place from new primitive AABBs.

    Topology (child links, leaf assignment, addresses) is untouched, so
    refit preserves every structural invariant :meth:`FlatBVH.validate`
    checks. Nodes are stored in preorder — children always follow their
    parent — so one reverse sweep sees every child before its parent.
    """
    prim_lo = np.asarray(prim_lo, dtype=np.float64)
    prim_hi = np.asarray(prim_hi, dtype=np.float64)
    if prim_lo.shape != (bvh.n_prims, 3) or prim_hi.shape != (bvh.n_prims, 3):
        raise ValueError("refit boxes must match the primitive count")

    # Tight boxes per leaf record, computed once.
    leaf_lo = np.empty((bvh.n_leaves, 3))
    leaf_hi = np.empty((bvh.n_leaves, 3))
    for leaf in range(bvh.n_leaves):
        prims = bvh.leaf_prims(leaf)
        leaf_lo[leaf] = prim_lo[prims].min(axis=0)
        leaf_hi[leaf] = prim_hi[prims].max(axis=0)

    # Union box per internal node, filled as the reverse sweep reaches it.
    node_lo = np.empty((bvh.n_nodes, 3))
    node_hi = np.empty((bvh.n_nodes, 3))
    for node in range(bvh.n_nodes - 1, -1, -1):
        for slot in range(bvh.width):
            kind = bvh.child_kind[node, slot]
            if kind == KIND_EMPTY:
                break
            ref = int(bvh.child_ref[node, slot])
            if kind == KIND_LEAF:
                bvh.child_lo[node, slot] = leaf_lo[ref]
                bvh.child_hi[node, slot] = leaf_hi[ref]
            else:
                bvh.child_lo[node, slot] = node_lo[ref]
                bvh.child_hi[node, slot] = node_hi[ref]
        occupied = bvh.child_kind[node] != KIND_EMPTY
        node_lo[node] = bvh.child_lo[node][occupied].min(axis=0)
        node_hi[node] = bvh.child_hi[node][occupied].max(axis=0)


@dataclass(frozen=True)
class RefitDrift:
    """How far a refitted tree has degraded from rebuild quality."""

    #: SAH cost of the refitted tree divided by a fresh rebuild's cost.
    sah_ratio: float
    #: Root surface area of the refitted tree over the rebuild's.
    root_area_ratio: float

    @property
    def should_rebuild(self) -> bool:
        """Conventional engine heuristic: rebuild past 2x SAH degradation."""
        return self.sah_ratio > 2.0


def measure_drift(refitted: FlatBVH, rebuilt: FlatBVH) -> RefitDrift:
    """Compare a refitted tree's quality against a fresh rebuild."""
    from repro.bvh.quality import sah_cost

    refit_cost = sah_cost(refitted)
    rebuild_cost = sah_cost(rebuilt)
    lo_a, hi_a = refitted.root_box()
    lo_b, hi_b = rebuilt.root_box()
    area_a = _half_area(lo_a, hi_a)
    area_b = _half_area(lo_b, hi_b)
    return RefitDrift(
        sah_ratio=refit_cost / rebuild_cost if rebuild_cost > 0 else 1.0,
        root_area_ratio=area_a / area_b if area_b > 0 else 1.0,
    )


def _half_area(lo: np.ndarray, hi: np.ndarray) -> float:
    ext = np.maximum(hi - lo, 0.0)
    return float(ext[0] * ext[1] + ext[1] * ext[2] + ext[2] * ext[0])
