"""One flattened SoA layout for every acceleration structure.

Both structure families — the monolithic proxy BVH and GRTX-SW's
TLAS + shared BLAS — lower to a single numpy representation,
:class:`FlatStructure`:

* a **root level** (the monolithic BVH or the TLAS) as the familiar
  struct-of-arrays wide-BVH tables of :class:`~repro.bvh.node.FlatBVH`;
* **leaf-ordered primitive tables**: the triangle soup
  (``v0``/``e1``/``e2`` + owning Gaussian) for triangle proxies, or the
  Gaussian-id permutation for custom primitives and instances — gathered
  into leaf order once at flatten time so no traverser re-permutes;
* for two-level structures, an **instance table** (leaf-ordered Gaussian
  id, world->object transform, shared-BLAS slot) and a **BLAS table**
  whose entries are either the analytic unit sphere or a template
  triangle mesh with its own flattened level.

Both tracing engines consume this one layout — the scalar
:class:`~repro.rt.tracer.Tracer` builds its plain-list hot-loop tables
from it and the vectorized :class:`~repro.rt.packet.PacketTracer`
traverses its arrays directly — so the engines cannot drift apart on
what a structure *is*.  The flattened form is also what ships to pool
workers: it is self-contained (a worker can build either engine from it
without the original structure objects) and it round-trips the byte
accounting — ``total_bytes``, ``height`` and ``instance_address`` match
the source structure exactly.

``flatten`` memoizes per structure object (identity-checked weak
registry, so recycled ids can never serve a stale layout), making the
per-frame flatten in the serving path a dictionary hit.  Like
``stable_fingerprint`` in the pool layer, it treats structures as
immutable once flattened: the layout shares the source's node tables
(in-place box refits flow through) but snapshots leaf-ordered copies of
the primitive soup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.layout import INSTANCE_BYTES, LEAF_HEADER_BYTES
from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.node import FlatBVH
from repro.bvh.two_level import HeteroTwoLevelBVH, TwoLevelBVH
from repro.util import IdentityMemo

#: What a root level's leaves reference.
PRIMS_TRIANGLES = "triangles"
PRIMS_GAUSSIANS = "gaussians"
PRIMS_INSTANCES = "instances"

#: BLAS kinds in the flattened layout (``"mesh"`` covers every template
#: triangle BLAS; the source structure's ``"icosphere"`` label maps here).
BLAS_SPHERE = "sphere"
BLAS_MESH = "mesh"


@dataclass
class FlatMesh:
    """A leaf-ordered triangle soup for one level.

    ``v0`` is the anchor vertex and ``e1``/``e2`` the edge vectors — the
    precomputed Möller–Trumbore inputs both engines consume.  ``owner``
    maps each triangle to its Gaussian (monolithic proxies); the shared
    template BLAS has no owner (the instance supplies the Gaussian).
    """

    v0: np.ndarray
    e1: np.ndarray
    e2: np.ndarray
    owner: np.ndarray | None = None

    @property
    def n_triangles(self) -> int:
        return self.v0.shape[0]


@dataclass
class FlatBlas:
    """One shared-BLAS slot of a flattened two-level structure."""

    kind: str
    base_address: int
    root_address: int
    total_bytes: int
    height: int
    bvh: FlatBVH | None = None
    mesh: FlatMesh | None = None


@dataclass
class FlatStructure:
    """The single flattened layout every structure lowers to.

    ``root`` is the monolithic BVH or the TLAS; ``root_prims`` says what
    its leaves hold (one of :data:`PRIMS_TRIANGLES` /
    :data:`PRIMS_GAUSSIANS` / :data:`PRIMS_INSTANCES`).  The byte
    accounting (``total_bytes``, ``height``, ``instance_address``)
    round-trips the source structure exactly.
    """

    proxy: str
    n_gaussians: int
    two_level: bool
    root: FlatBVH
    root_prims: str
    #: Leaf-ordered triangle soup (triangle proxies only).
    mesh: FlatMesh | None = None
    #: Leaf-ordered Gaussian id per root primitive (custom primitives
    #: and instances; ``None`` for triangle proxies, whose triangles
    #: carry owners in ``mesh``).
    prim_gid: np.ndarray | None = None
    #: Per-instance shared-BLAS slot, leaf order (two-level only).
    inst_blas: np.ndarray | None = None
    #: Per-instance world->object transform, leaf order (two-level
    #: only); what the packet tracer transforms ray bundles with.  Equal
    #: by construction to the shading tables gathered by ``prim_gid`` —
    #: both derive from ``canonical_transforms`` over the same cloud —
    #: which the test suite guards (that equality is what keeps the two
    #: engines' object-space rays bit-identical).
    inst_w2o_linear: np.ndarray | None = None
    inst_w2o_offset: np.ndarray | None = None
    #: Shared-BLAS table indexed by ``inst_blas`` slot (empty when
    #: monolithic).
    blas: tuple[FlatBlas, ...] = ()

    @property
    def is_triangle_proxy(self) -> bool:
        return self.root_prims == PRIMS_TRIANGLES

    @property
    def total_bytes(self) -> int:
        return self.root.total_bytes + sum(b.total_bytes for b in self.blas)

    @property
    def height(self) -> int:
        blas_height = max((b.height for b in self.blas), default=0)
        return self.root.height + blas_height

    def instance_address(self, leaf_index: int, slot: int) -> int:
        """Byte address of one instance record inside a TLAS leaf."""
        if not self.two_level:
            raise ValueError("monolithic structures have no instance records")
        return (int(self.root.leaf_addr[leaf_index]) + LEAF_HEADER_BYTES
                + slot * INSTANCE_BYTES)


def _leaf_ordered_mesh(v0, v1, v2, order, owner=None) -> FlatMesh:
    """Gather a triangle soup into leaf order with precomputed edges."""
    return FlatMesh(
        v0=np.ascontiguousarray(v0[order]),
        e1=np.ascontiguousarray(v1[order] - v0[order]),
        e2=np.ascontiguousarray(v2[order] - v0[order]),
        owner=(np.ascontiguousarray(owner[order].astype(np.int64))
               if owner is not None else None),
    )


def _flatten_monolithic(structure: MonolithicBVH) -> FlatStructure:
    order = structure.bvh.prim_order
    if structure.is_triangle_proxy:
        return FlatStructure(
            proxy=structure.proxy,
            n_gaussians=structure.n_gaussians,
            two_level=False,
            root=structure.bvh,
            root_prims=PRIMS_TRIANGLES,
            mesh=_leaf_ordered_mesh(structure.tri_v0, structure.tri_v1,
                                    structure.tri_v2, order,
                                    owner=structure.tri_gaussian),
        )
    return FlatStructure(
        proxy=structure.proxy,
        n_gaussians=structure.n_gaussians,
        two_level=False,
        root=structure.bvh,
        root_prims=PRIMS_GAUSSIANS,
        prim_gid=np.ascontiguousarray(order.astype(np.int64)),
    )


def _flatten_blas(blas) -> FlatBlas:
    """Lower one :class:`~repro.bvh.two_level.SharedBlas` template."""
    if blas.kind == "sphere":
        return FlatBlas(
            kind=BLAS_SPHERE,
            base_address=blas.base_address,
            root_address=blas.root_address,
            total_bytes=blas.total_bytes,
            height=1,
        )
    blas_order = blas.bvh.prim_order
    return FlatBlas(
        kind=BLAS_MESH,
        base_address=blas.base_address,
        root_address=blas.root_address,
        total_bytes=blas.total_bytes,
        height=blas.bvh.height,
        bvh=blas.bvh,
        mesh=_leaf_ordered_mesh(blas.tri_v0, blas.tri_v1, blas.tri_v2,
                                blas_order),
    )


def _flatten_two_level(structure: TwoLevelBVH) -> FlatStructure:
    order = structure.tlas.prim_order
    return FlatStructure(
        proxy=structure.proxy,
        n_gaussians=structure.n_gaussians,
        two_level=True,
        root=structure.tlas,
        root_prims=PRIMS_INSTANCES,
        prim_gid=np.ascontiguousarray(order.astype(np.int64)),
        inst_blas=np.zeros(order.shape[0], dtype=np.int64),
        inst_w2o_linear=np.ascontiguousarray(
            structure.world_to_obj_linear[order]),
        inst_w2o_offset=np.ascontiguousarray(
            structure.world_to_obj_offset[order]),
        blas=(_flatten_blas(structure.blas),),
    )


def _flatten_hetero(structure: HeteroTwoLevelBVH) -> FlatStructure:
    """Lower a heterogeneous TLAS: same layout as the homogeneous case,
    but ``inst_blas`` carries real per-instance slots and ``blas`` one
    entry per template."""
    order = structure.tlas.prim_order
    return FlatStructure(
        proxy=structure.proxy,
        n_gaussians=structure.n_gaussians,
        two_level=True,
        root=structure.tlas,
        root_prims=PRIMS_INSTANCES,
        prim_gid=np.ascontiguousarray(order.astype(np.int64)),
        inst_blas=np.ascontiguousarray(
            structure.gaussian_blas[order].astype(np.int64)),
        inst_w2o_linear=np.ascontiguousarray(
            structure.world_to_obj_linear[order]),
        inst_w2o_offset=np.ascontiguousarray(
            structure.world_to_obj_offset[order]),
        blas=tuple(_flatten_blas(b) for b in structure.blas),
    )


def flattenable(structure) -> bool:
    """Whether :func:`flatten` understands this structure — the single
    structural support predicate both tracing engines share."""
    return isinstance(
        structure,
        (MonolithicBVH, TwoLevelBVH, HeteroTwoLevelBVH, FlatStructure),
    )


# Identity-checked memo (locked + weakref-verified, so a recycled id can
# never serve a layout built over different geometry — the failure mode
# that made the serving layer abandon bare id()-keyed caches in PR 2).
_FLAT_MEMO = IdentityMemo()


def _flatten_uncached(structure) -> FlatStructure:
    if isinstance(structure, MonolithicBVH):
        return _flatten_monolithic(structure)
    if isinstance(structure, TwoLevelBVH):
        return _flatten_two_level(structure)
    if isinstance(structure, HeteroTwoLevelBVH):
        return _flatten_hetero(structure)
    raise TypeError(
        f"cannot flatten {type(structure).__name__}; expected "
        "MonolithicBVH, TwoLevelBVH, HeteroTwoLevelBVH or FlatStructure")


def flatten(structure) -> FlatStructure:
    """Lower any acceleration structure to the one flattened layout.

    Idempotent (a :class:`FlatStructure` returns itself) and memoized
    per structure object, so repeated calls — one per served frame —
    cost a dictionary lookup.
    """
    if isinstance(structure, FlatStructure):
        return structure
    return _FLAT_MEMO.get_or_build(structure, _flatten_uncached)
