"""Wide-BVH construction (Embree-style BVH-6 via binned SAH).

The paper builds its acceleration structures with Intel Embree in a BVH-6
configuration. We reproduce that shape with a top-down builder that splits
each node's primitive range into up to ``width`` parts: starting from the
whole range, the largest part is repeatedly split (binned SAH or median)
until the node has ``width`` parts or nothing is left to split. This is
exactly how Embree collapses its binary SAH tree into wide nodes.

The builder is fully iterative (explicit stack) and operates on index
ranges of a single permutation array, so it handles hundreds of thousands
of primitives in pure numpy without recursion limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.layout import internal_node_bytes
from repro.bvh.morton import morton_codes, radix_split
from repro.bvh.node import KIND_EMPTY, KIND_INTERNAL, KIND_LEAF, FlatBVH, leaf_addresses

_SAH_BINS = 16


@dataclass(frozen=True)
class BuildParams:
    """Knobs for the BVH builder.

    ``strategy`` selects the split rule:

    * ``"sah"`` — binned surface-area heuristic (Embree-like, default);
    * ``"median"`` — object median along the widest centroid axis
      (faster, slightly worse trees; used by the branching-factor
      ablation to isolate topology effects);
    * ``"lbvh"`` — Morton-code radix-tree splits (the GPU-driver-style
      linear BVH; fastest build, worst tree — the builder ablation
      quantifies the traversal cost it trades away).
    """

    width: int = 6
    leaf_size: int = 4
    strategy: str = "sah"

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ValueError("width must be >= 2")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if self.strategy not in ("sah", "median", "lbvh"):
            raise ValueError(f"unknown strategy {self.strategy!r}")


def _half_area(lo: np.ndarray, hi: np.ndarray) -> float:
    ext = np.maximum(hi - lo, 0.0)
    return float(ext[0] * ext[1] + ext[1] * ext[2] + ext[2] * ext[0])


def _split_range(
    order: np.ndarray,
    start: int,
    end: int,
    centroids: np.ndarray,
    prim_lo: np.ndarray,
    prim_hi: np.ndarray,
    strategy: str,
    codes: np.ndarray | None = None,
) -> int | None:
    """Partition ``order[start:end]`` in place; return the split position.

    Returns ``None`` when the range cannot be usefully split (all
    centroids coincide), in which case the caller falls back to an even
    split or a leaf.
    """
    if strategy == "lbvh":
        # `order` is Morton-sorted up front and splits preserve
        # contiguity, so the radix split is a pure binary search.
        return radix_split(codes, start, end)

    idx = order[start:end]
    cents = centroids[idx]
    lo = cents.min(axis=0)
    hi = cents.max(axis=0)
    extent = hi - lo
    axis = int(np.argmax(extent))
    if extent[axis] <= 1e-30:
        return None

    if strategy == "median":
        mid = (end - start) // 2
        part = np.argpartition(cents[:, axis], mid)
        order[start:end] = idx[part]
        return start + mid

    # Binned SAH along the chosen axis.
    scale = _SAH_BINS * (1.0 - 1e-9) / extent[axis]
    bins = ((cents[:, axis] - lo[axis]) * scale).astype(np.int64)
    counts = np.bincount(bins, minlength=_SAH_BINS)

    bin_lo = np.full((_SAH_BINS, 3), np.inf)
    bin_hi = np.full((_SAH_BINS, 3), -np.inf)
    for b in range(_SAH_BINS):
        mask = bins == b
        if counts[b]:
            sel = idx[mask]
            bin_lo[b] = prim_lo[sel].min(axis=0)
            bin_hi[b] = prim_hi[sel].max(axis=0)

    left_lo = np.minimum.accumulate(bin_lo, axis=0)
    left_hi = np.maximum.accumulate(bin_hi, axis=0)
    right_lo = np.minimum.accumulate(bin_lo[::-1], axis=0)[::-1]
    right_hi = np.maximum.accumulate(bin_hi[::-1], axis=0)[::-1]
    left_counts = np.cumsum(counts)

    best_cost = np.inf
    best_bin = -1
    total = end - start
    for b in range(_SAH_BINS - 1):
        n_left = int(left_counts[b])
        n_right = total - n_left
        if n_left == 0 or n_right == 0:
            continue
        cost = n_left * _half_area(left_lo[b], left_hi[b]) + n_right * _half_area(
            right_lo[b + 1], right_hi[b + 1]
        )
        if cost < best_cost:
            best_cost = cost
            best_bin = b
    if best_bin < 0:
        # All primitives landed in one bin; median fallback.
        mid = total // 2
        part = np.argpartition(cents[:, axis], mid)
        order[start:end] = idx[part]
        return start + mid

    left_mask = bins <= best_bin
    order[start:end] = np.concatenate([idx[left_mask], idx[~left_mask]])
    return start + int(np.count_nonzero(left_mask))


def build_bvh(
    prim_lo: np.ndarray,
    prim_hi: np.ndarray,
    prim_bytes: int,
    params: BuildParams | None = None,
) -> FlatBVH:
    """Build a wide BVH over primitive AABBs.

    Parameters
    ----------
    prim_lo / prim_hi:
        ``(n, 3)`` primitive bounding boxes.
    prim_bytes:
        Serialized size of one primitive record (drives leaf addressing).
    params:
        Build configuration; defaults to BVH-6 binned SAH, as in the paper.
    """
    params = params or BuildParams()
    prim_lo = np.ascontiguousarray(prim_lo, dtype=np.float64)
    prim_hi = np.ascontiguousarray(prim_hi, dtype=np.float64)
    n = prim_lo.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")
    centroids = 0.5 * (prim_lo + prim_hi)
    order = np.arange(n, dtype=np.int64)
    codes_sorted: np.ndarray | None = None
    if params.strategy == "lbvh":
        codes = morton_codes(centroids)
        order = order[np.argsort(codes, kind="stable")]
        codes_sorted = codes[order]

    child_lo: list[np.ndarray] = []
    child_hi: list[np.ndarray] = []
    child_kind: list[np.ndarray] = []
    child_ref: list[np.ndarray] = []
    leaf_start: list[int] = []
    leaf_count: list[int] = []
    node_depth: list[int] = []

    width = params.width
    leaf_size = params.leaf_size

    def range_box(start: int, end: int) -> tuple[np.ndarray, np.ndarray]:
        sel = order[start:end]
        return prim_lo[sel].min(axis=0), prim_hi[sel].max(axis=0)

    # Degenerate tiny scene: a single root with one leaf child.
    # Handled by the same code path (split produces a single part).

    # Each work item: (node_index, start, end, depth). Node 0 is the root.
    child_lo.append(np.full((width, 3), np.inf))
    child_hi.append(np.full((width, 3), -np.inf))
    child_kind.append(np.zeros(width, dtype=np.uint8))
    child_ref.append(np.full(width, -1, dtype=np.int64))
    node_depth.append(0)
    stack: list[tuple[int, int, int, int]] = [(0, 0, n, 0)]
    max_depth = 0

    while stack:
        node_index, start, end, depth = stack.pop()
        max_depth = max(max_depth, depth)

        # Split the range into up to `width` parts, biggest part first.
        parts: list[tuple[int, int]] = [(start, end)]
        while len(parts) < width:
            sizes = [e - s for s, e in parts]
            big = int(np.argmax(sizes))
            s, e = parts[big]
            if e - s <= leaf_size:
                break
            pos = _split_range(order, s, e, centroids, prim_lo, prim_hi,
                               params.strategy, codes_sorted)
            if pos is None or pos == s or pos == e:
                pos = s + (e - s) // 2
            parts[big] = (s, pos)
            parts.insert(big + 1, (pos, e))

        for slot, (s, e) in enumerate(parts):
            lo, hi = range_box(s, e)
            child_lo[node_index][slot] = lo
            child_hi[node_index][slot] = hi
            if e - s <= leaf_size:
                child_kind[node_index][slot] = KIND_LEAF
                child_ref[node_index][slot] = len(leaf_start)
                leaf_start.append(s)
                leaf_count.append(e - s)
                max_depth = max(max_depth, depth + 1)
            else:
                child_kind[node_index][slot] = KIND_INTERNAL
                new_index = len(child_lo)
                child_ref[node_index][slot] = new_index
                child_lo.append(np.full((width, 3), np.inf))
                child_hi.append(np.full((width, 3), -np.inf))
                child_kind.append(np.zeros(width, dtype=np.uint8))
                child_ref.append(np.full(width, -1, dtype=np.int64))
                node_depth.append(depth + 1)
                stack.append((new_index, s, e, depth + 1))

    n_nodes = len(child_lo)
    node_bytes = internal_node_bytes(width)
    node_addr = np.arange(n_nodes, dtype=np.int64) * node_bytes
    leaf_count_arr = np.asarray(leaf_count, dtype=np.int64)
    leaf_addr, leaf_bytes = leaf_addresses(leaf_count_arr, prim_bytes, n_nodes * node_bytes)

    return FlatBVH(
        width=width,
        child_lo=np.stack(child_lo),
        child_hi=np.stack(child_hi),
        child_kind=np.stack(child_kind),
        child_ref=np.stack(child_ref),
        leaf_start=np.asarray(leaf_start, dtype=np.int64),
        leaf_count=leaf_count_arr,
        prim_order=order,
        node_addr=node_addr,
        leaf_addr=leaf_addr,
        leaf_bytes=leaf_bytes,
        height=max_depth + 1,
    )
