"""Dynamic and multi-object Gaussian scenes (Section VI of the paper).

GRTX's two-level structure seems to collide with classic dynamic-scene
rendering, which also wants a two-level TLAS/BLAS split (one BLAS per
object). The paper resolves this with *multi-level instancing*: a
three-level hierarchy

    scene TLAS  ->  per-object instances  ->  per-object Gaussian TLAS
                                              (whose leaves share the one
                                               unit-sphere/icosphere BLAS)

Object additions/removals rebuild only the small scene TLAS; object
motion updates one transform and refits the scene TLAS — "identical to
conventional dynamic rendering with no additional GRTX-specific
overhead".

This module implements that hierarchy: :class:`GaussianObject` wraps one
trained cloud with its own GRTX-SW structure; :class:`MultiObjectScene`
manages posed instances of those objects, the scene-level TLAS over their
world bounds, and refit/rebuild on edits. The scene also flattens itself
into a single :class:`~repro.gaussians.GaussianCloud` + transform-composed
structure so the ordinary :class:`~repro.rt.Tracer` can render it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bvh.builder import BuildParams, build_bvh
from repro.bvh.layout import INSTANCE_BYTES
from repro.bvh.node import KIND_EMPTY, FlatBVH
from repro.bvh.two_level import (
    HeteroTwoLevelBVH,
    TwoLevelBVH,
    build_two_level,
    build_two_level_hetero,
)
from repro.gaussians import GaussianCloud
from repro.math3d import (
    AffineTransform,
    quat_multiply,
    quat_normalize,
    quat_to_rotation_matrix,
)


@dataclass(frozen=True)
class ObjectPose:
    """Rigid pose (+uniform scale) of one object instance."""

    translation: np.ndarray
    rotation: np.ndarray  # unit quaternion, wxyz
    scale: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "translation",
                           np.asarray(self.translation, dtype=np.float64))
        object.__setattr__(self, "rotation",
                           quat_normalize(np.asarray(self.rotation, dtype=np.float64)))
        if self.scale <= 0.0:
            raise ValueError("pose scale must be positive")

    @classmethod
    def identity(cls) -> "ObjectPose":
        return cls(translation=np.zeros(3), rotation=np.array([1.0, 0.0, 0.0, 0.0]))

    @property
    def matrix(self) -> AffineTransform:
        rot = quat_to_rotation_matrix(self.rotation)
        return AffineTransform(linear=self.scale * rot, offset=self.translation)

    def compose(self, other: "ObjectPose") -> "ObjectPose":
        """``self`` applied after ``other`` (i.e. ``self @ other``)."""
        rot = quat_multiply(self.rotation, other.rotation)
        linear = self.scale * quat_to_rotation_matrix(self.rotation)
        return ObjectPose(
            translation=linear @ other.translation + self.translation,
            rotation=rot,
            scale=self.scale * other.scale,
        )


class GaussianObject:
    """One reusable Gaussian asset with its own GRTX-SW structure.

    The per-object structure (object-space TLAS + shared BLAS) is built
    once; instances reference it, so N copies of an asset cost one build.
    """

    def __init__(
        self,
        cloud: GaussianCloud,
        blas_kind: str = "sphere",
        subdivisions: int = 0,
        params: BuildParams | None = None,
    ) -> None:
        self.cloud = cloud
        self.structure: TwoLevelBVH = build_two_level(
            cloud, blas_kind=blas_kind, subdivisions=subdivisions, params=params
        )
        root_lo, root_hi = self.structure.tlas.root_box()
        self.local_lo = root_lo
        self.local_hi = root_hi

    def __len__(self) -> int:
        return len(self.cloud)

    def world_bounds(self, pose: ObjectPose) -> tuple[np.ndarray, np.ndarray]:
        """AABB of the posed object (transform the 8 box corners)."""
        corners = np.array([
            [x, y, z]
            for x in (self.local_lo[0], self.local_hi[0])
            for y in (self.local_lo[1], self.local_hi[1])
            for z in (self.local_lo[2], self.local_hi[2])
        ])
        world = pose.matrix.apply_point(corners)
        return world.min(axis=0), world.max(axis=0)

    def posed_cloud(self, pose: ObjectPose) -> GaussianCloud:
        """The object's Gaussians transformed into world space.

        Rigid+uniform-scale poses keep Gaussians Gaussian: means are
        transformed, per-axis sigmas scale uniformly, and the pose
        rotation composes with each Gaussian's own rotation quaternion.
        """
        cloud = self.cloud
        mat = pose.matrix
        means = mat.apply_point(cloud.means)
        scales = cloud.scales * pose.scale
        rotations = quat_multiply(
            np.broadcast_to(pose.rotation, (len(cloud), 4)), cloud.rotations
        )
        return GaussianCloud(
            means=means,
            scales=scales,
            rotations=rotations,
            opacities=cloud.opacities,
            sh=cloud.sh,
            kappa=cloud.kappa,
            name=cloud.name,
        )


@dataclass
class _Instance:
    object_index: int
    pose: ObjectPose
    instance_id: int


@dataclass
class SceneTlasStats:
    """Bookkeeping for scene-TLAS maintenance costs."""

    rebuilds: int = 0
    refits: int = 0


class MultiObjectScene:
    """A dynamic scene of posed Gaussian object instances.

    Edits follow the paper's cost model:

    * :meth:`add_instance` / :meth:`remove_instance` mark the scene TLAS
      for a **rebuild** (topology changed);
    * :meth:`move_instance` updates one pose and only **refits** the
      scene TLAS (bounds changed, topology intact).

    The scene TLAS here is deliberately tiny — one leaf per object
    instance — exactly the "traditional dynamic scene management" layer
    the paper describes on top of per-object GRTX-SW structures.
    """

    def __init__(self, params: BuildParams | None = None) -> None:
        self._objects: list[GaussianObject] = []
        self._instances: dict[int, _Instance] = {}
        self._next_id = 0
        self._params = params or BuildParams()
        self._tlas: FlatBVH | None = None
        self._tlas_order: list[int] = []
        self._dirty_topology = True
        self.stats = SceneTlasStats()

    # -- asset & instance management -----------------------------------

    def add_object(self, obj: GaussianObject) -> int:
        """Register a reusable asset; returns its object index."""
        self._objects.append(obj)
        return len(self._objects) - 1

    def add_instance(self, object_index: int, pose: ObjectPose | None = None) -> int:
        if not 0 <= object_index < len(self._objects):
            raise IndexError(f"no object {object_index}")
        instance_id = self._next_id
        self._next_id += 1
        self._instances[instance_id] = _Instance(
            object_index=object_index,
            pose=pose or ObjectPose.identity(),
            instance_id=instance_id,
        )
        self._dirty_topology = True
        return instance_id

    def remove_instance(self, instance_id: int) -> None:
        if instance_id not in self._instances:
            raise KeyError(f"no instance {instance_id}")
        del self._instances[instance_id]
        self._dirty_topology = True

    def move_instance(self, instance_id: int, pose: ObjectPose) -> None:
        """Update one instance's pose; the scene TLAS is refit in place."""
        if instance_id not in self._instances:
            raise KeyError(f"no instance {instance_id}")
        self._instances[instance_id].pose = pose
        if self._tlas is not None and not self._dirty_topology:
            self._refit()
        # A dirty topology will rebuild anyway on next access.

    @property
    def n_instances(self) -> int:
        return len(self._instances)

    @property
    def n_gaussians(self) -> int:
        return sum(len(self._objects[i.object_index]) for i in self._instances.values())

    # -- scene TLAS maintenance -----------------------------------------

    def _instance_bounds(self) -> tuple[np.ndarray, np.ndarray, list[int]]:
        order = sorted(self._instances)
        lo = np.empty((len(order), 3))
        hi = np.empty((len(order), 3))
        for row, iid in enumerate(order):
            inst = self._instances[iid]
            lo[row], hi[row] = self._objects[inst.object_index].world_bounds(inst.pose)
        return lo, hi, order

    def scene_tlas(self) -> FlatBVH:
        """The scene-level TLAS over instance world bounds (lazily built)."""
        if self._tlas is None or self._dirty_topology:
            self._rebuild()
        return self._tlas

    def _rebuild(self) -> None:
        if not self._instances:
            raise ValueError("cannot build a TLAS over an empty scene")
        lo, hi, order = self._instance_bounds()
        from dataclasses import replace as _replace
        self._tlas = build_bvh(lo, hi, INSTANCE_BYTES,
                               _replace(self._params, leaf_size=1))
        self._tlas_order = order
        self._dirty_topology = False
        self.stats.rebuilds += 1

    def _refit(self) -> None:
        """Recompute node bounds bottom-up without changing topology.

        Children are stored at higher indices than their parents (the
        builder emits forward-only references), so one reverse sweep over
        the node array refits every box.
        """
        tlas = self._tlas
        lo, hi, order = self._instance_bounds()
        if order != self._tlas_order:
            self._rebuild()
            return
        prim_lo = lo[tlas.prim_order]
        prim_hi = hi[tlas.prim_order]

        # Leaf boxes straight from the (reordered) primitive bounds.
        leaf_lo = np.empty((tlas.n_leaves, 3))
        leaf_hi = np.empty((tlas.n_leaves, 3))
        for leaf in range(tlas.n_leaves):
            start = int(tlas.leaf_start[leaf])
            end = start + int(tlas.leaf_count[leaf])
            leaf_lo[leaf] = prim_lo[start:end].min(axis=0)
            leaf_hi[leaf] = prim_hi[start:end].max(axis=0)

        node_lo = np.full((tlas.n_nodes, 3), np.inf)
        node_hi = np.full((tlas.n_nodes, 3), -np.inf)
        for node in range(tlas.n_nodes - 1, -1, -1):
            for slot in range(tlas.width):
                kind = tlas.child_kind[node, slot]
                if kind == KIND_EMPTY:
                    break
                ref = int(tlas.child_ref[node, slot])
                if kind == 2:  # KIND_LEAF
                    tlas.child_lo[node, slot] = leaf_lo[ref]
                    tlas.child_hi[node, slot] = leaf_hi[ref]
                else:
                    tlas.child_lo[node, slot] = node_lo[ref]
                    tlas.child_hi[node, slot] = node_hi[ref]
            occupied = tlas.child_kind[node] != KIND_EMPTY
            node_lo[node] = tlas.child_lo[node][occupied].min(axis=0)
            node_hi[node] = tlas.child_hi[node][occupied].max(axis=0)
        self.stats.refits += 1

    # -- rendering bridge -------------------------------------------------

    def flatten(self) -> tuple[GaussianCloud, TwoLevelBVH | HeteroTwoLevelBVH]:
        """Flatten the scene into one cloud + GRTX-SW structure.

        Renders treat the flattened scene exactly like a static one. The
        flattening composes each instance pose with its Gaussians'
        transforms; the shared BLAS property is preserved (every
        Gaussian references one of the scene's template BLASes).  When
        all instanced objects use the same template, the result is the
        homogeneous single-BLAS structure; objects with differing proxy
        choices produce a :class:`HeteroTwoLevelBVH` whose per-instance
        slots keep each object's fidelity instead of forcing the first
        object's template onto everyone.
        """
        if not self._instances:
            raise ValueError("cannot flatten an empty scene")
        clouds = []
        specs: list[tuple[str, int]] = []
        spec_slot: dict[tuple[str, int], int] = {}
        slot_parts = []
        for iid in sorted(self._instances):
            inst = self._instances[iid]
            obj = self._objects[inst.object_index]
            clouds.append(obj.posed_cloud(inst.pose))
            spec = (obj.structure.blas.kind, obj.structure.blas.subdivisions)
            if spec not in spec_slot:
                spec_slot[spec] = len(specs)
                specs.append(spec)
            slot_parts.append(
                np.full(len(clouds[-1]), spec_slot[spec], dtype=np.int64))
        merged = clouds[0]
        for extra in clouds[1:]:
            merged = merged.concatenate(extra)
        if len(specs) == 1:
            kind, subdivisions = specs[0]
            structure = build_two_level(
                merged,
                blas_kind=kind,
                subdivisions=subdivisions,
                params=self._params,
            )
            return merged, structure
        structure = build_two_level_hetero(
            merged,
            blas_specs=specs,
            gaussian_blas=np.concatenate(slot_parts),
            params=self._params,
        )
        return merged, structure

    def total_bytes(self) -> int:
        """Serialized size: scene TLAS + per-object structures (shared
        across instances — the instancing win)."""
        tlas = self.scene_tlas()
        return tlas.total_bytes + sum(o.structure.total_bytes for o in self._objects)

    def naive_bytes(self) -> int:
        """What the same scene would cost without object-level sharing
        (every instance duplicating its object's structure)."""
        tlas = self.scene_tlas()
        per_instance = sum(
            self._objects[i.object_index].structure.total_bytes
            for i in self._instances.values()
        )
        return tlas.total_bytes + per_instance
