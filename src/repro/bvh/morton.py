"""Morton (Z-order) codes for LBVH construction.

GPU drivers build BVHs with linear-BVH algorithms over Morton codes
(Karras-style radix trees) because they parallelize trivially; Embree's
binned SAH produces better trees but costs more. The builder-comparison
ablation quantifies this trade-off on Gaussian scenes: we expose 30-bit
3D Morton codes (10 bits per axis) and the radix-tree split rule used by
the ``"lbvh"`` build strategy.
"""

from __future__ import annotations

import numpy as np

#: Bits per axis in the 3D Morton code (30-bit total, GPU-standard).
MORTON_BITS = 10
_MORTON_SCALE = (1 << MORTON_BITS) - 1


def expand_bits(values: np.ndarray) -> np.ndarray:
    """Spread the low 10 bits of each value to every third bit position.

    The classic magic-number bit smear: ``abcdefghij`` becomes
    ``a__b__c__d__e__f__g__h__i__j`` so three axes interleave cleanly.
    """
    v = values.astype(np.uint64) & np.uint64(0x3FF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x030000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x0300F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x030C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x09249249)
    return v


def morton_codes(points: np.ndarray, lo: np.ndarray | None = None,
                 hi: np.ndarray | None = None) -> np.ndarray:
    """30-bit Morton codes for ``(n, 3)`` points.

    Points are quantized over ``[lo, hi]`` (defaults to the point bounds).
    Degenerate axes (zero extent) quantize to bucket 0.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("morton_codes expects (n, 3) points")
    lo = points.min(axis=0) if lo is None else np.asarray(lo, dtype=np.float64)
    hi = points.max(axis=0) if hi is None else np.asarray(hi, dtype=np.float64)
    extent = np.where(hi - lo > 0.0, hi - lo, 1.0)
    q = np.clip((points - lo) / extent * _MORTON_SCALE, 0, _MORTON_SCALE)
    q = q.astype(np.uint64)
    return (
        (expand_bits(q[:, 0]) << np.uint64(2))
        | (expand_bits(q[:, 1]) << np.uint64(1))
        | expand_bits(q[:, 2])
    )


def radix_split(codes: np.ndarray, start: int, end: int) -> int | None:
    """Radix-tree split position for the sorted code range [start, end).

    Returns the index of the first element whose code differs from
    ``codes[start]`` in the highest bit that distinguishes the range's
    first and last codes (the Karras 2012 split rule), or ``None`` when
    every code in the range is identical (callers fall back to a median
    split).

    ``codes`` must be sorted ascending within the range.
    """
    first = int(codes[start])
    last = int(codes[end - 1])
    if first == last:
        return None
    # Highest differing bit between the range endpoints.
    split_bit = (first ^ last).bit_length() - 1
    mask = 1 << split_bit
    prefix = first & ~(mask - 1) | mask
    # Binary search for the first code with the split bit set above the
    # shared prefix: all codes below `prefix` go left.
    lo, hi = start + 1, end - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        if int(codes[mid]) < prefix:
            lo = mid + 1
        else:
            hi = mid - 1
    return lo


def common_prefix_length(a: int, b: int, bits: int = 3 * MORTON_BITS) -> int:
    """Number of leading bits ``a`` and ``b`` share in a ``bits``-wide code."""
    if a == b:
        return bits
    return bits - (a ^ b).bit_length()
