"""Static BVH quality metrics.

Traversal cost is what the paper measures end to end; these metrics
predict it from the tree alone, letting the builder ablation separate
*tree quality* effects (SAH cost, overlap) from *memory layout* effects
(node size, footprint). All metrics are standard in the ray tracing
literature:

* **SAH cost** — expected traversal work for a random ray, the quantity
  greedy SAH builders minimize;
* **sibling overlap** — how much child boxes of one node intersect each
  other (overlapping siblings force rays to descend multiple subtrees,
  the effect the paper calls out for large wall Gaussians in Drjohnson
  and Playroom);
* **leaf statistics** — occupancy histogram and average leaf size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.node import KIND_EMPTY, KIND_INTERNAL, KIND_LEAF, FlatBVH

#: Conventional SAH constants: the relative cost of one node traversal
#: step versus one primitive intersection test.
COST_TRAVERSAL = 1.0
COST_INTERSECT = 1.5


@dataclass(frozen=True)
class TreeQuality:
    """Summary quality report for one BVH."""

    sah_cost: float
    mean_sibling_overlap: float
    n_nodes: int
    n_leaves: int
    height: int
    mean_leaf_size: float
    max_leaf_size: int

    def as_row(self) -> dict[str, float | int]:
        return {
            "sah_cost": round(self.sah_cost, 2),
            "overlap": round(self.mean_sibling_overlap, 4),
            "nodes": self.n_nodes,
            "leaves": self.n_leaves,
            "height": self.height,
            "mean_leaf": round(self.mean_leaf_size, 2),
        }


def _half_areas(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorized half surface areas of (n, 3) boxes."""
    ext = np.maximum(hi - lo, 0.0)
    return ext[..., 0] * ext[..., 1] + ext[..., 1] * ext[..., 2] + ext[..., 2] * ext[..., 0]


def sah_cost(bvh: FlatBVH) -> float:
    """Surface-area-heuristic cost of the tree.

    ``C = C_t * sum_nodes A(n)/A(root) + C_i * sum_leaves A(l)/A(root) * N(l)``

    where the node term charges one traversal step per expected node visit
    and the leaf term charges one intersection test per primitive in each
    expected leaf visit.
    """
    root_lo, root_hi = bvh.root_box()
    root_area = float(_half_areas(root_lo[None], root_hi[None])[0])
    if root_area <= 0.0:
        return 0.0

    occupied = bvh.child_kind != KIND_EMPTY
    slot_areas = _half_areas(bvh.child_lo, bvh.child_hi)

    internal_mask = bvh.child_kind == KIND_INTERNAL
    leaf_mask = bvh.child_kind == KIND_LEAF
    node_term = float(slot_areas[internal_mask].sum()) + root_area

    leaf_refs = bvh.child_ref[leaf_mask]
    leaf_counts = bvh.leaf_count[leaf_refs]
    leaf_term = float((slot_areas[leaf_mask] * leaf_counts).sum())

    return (COST_TRAVERSAL * node_term + COST_INTERSECT * leaf_term) / root_area


def _pair_overlap(lo: np.ndarray, hi: np.ndarray, i: int, j: int) -> float:
    """Intersection half-area of two boxes (0 when disjoint)."""
    olo = np.maximum(lo[i], lo[j])
    ohi = np.minimum(hi[i], hi[j])
    if np.any(ohi <= olo):
        return 0.0
    return float(_half_areas(olo[None], ohi[None])[0])


def mean_sibling_overlap(bvh: FlatBVH) -> float:
    """Average pairwise child overlap, normalized by the parent box area.

    0 means perfectly disjoint children everywhere; values near 1 mean
    siblings almost coincide (rays must descend them all).
    """
    total = 0.0
    pairs = 0
    for node in range(bvh.n_nodes):
        occ = np.nonzero(bvh.child_kind[node] != KIND_EMPTY)[0]
        if len(occ) < 2:
            continue
        lo = bvh.child_lo[node]
        hi = bvh.child_hi[node]
        parent_area = float(
            _half_areas(lo[occ].min(axis=0)[None], hi[occ].max(axis=0)[None])[0]
        )
        if parent_area <= 0.0:
            continue
        for a in range(len(occ)):
            for b in range(a + 1, len(occ)):
                total += _pair_overlap(lo, hi, occ[a], occ[b]) / parent_area
                pairs += 1
    return total / pairs if pairs else 0.0


def leaf_size_histogram(bvh: FlatBVH) -> dict[int, int]:
    """Leaf occupancy histogram: {primitives per leaf: leaf count}."""
    values, counts = np.unique(bvh.leaf_count, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def tree_quality(bvh: FlatBVH) -> TreeQuality:
    """Compute the full quality report for one BVH."""
    return TreeQuality(
        sah_cost=sah_cost(bvh),
        mean_sibling_overlap=mean_sibling_overlap(bvh),
        n_nodes=bvh.n_nodes,
        n_leaves=bvh.n_leaves,
        height=bvh.height,
        mean_leaf_size=float(bvh.leaf_count.mean()),
        max_leaf_size=int(bvh.leaf_count.max()),
    )
