"""Byte-level layout constants for acceleration structures.

GRTX's headline software result is a BVH *size* reduction (3.88 GB ->
345 MB for Truck), so this reproduction keeps byte-accurate sizes for every
record type. The constants mirror common hardware-oriented layouts:

* internal nodes store one quantized-precision AABB (6 x f32 = 24 B) and an
  8-byte child reference per slot, plus a 16-byte header;
* a triangle record is 3 vertices of 3 x f32 plus the owning Gaussian id,
  padded to 48 B (Embree-style);
* a sphere primitive is center + radius (16 B);
* a TLAS instance is a 3x4 f32 transform (48 B) + BLAS pointer + id = 64 B,
  mirroring ``VkAccelerationStructureInstanceKHR``;
* a custom primitive carries its world->object transform inline (64 B)
  because the software intersection shader needs it.
"""

from __future__ import annotations

LEAF_HEADER_BYTES = 16
TRIANGLE_BYTES = 48
SPHERE_PRIM_BYTES = 16
INSTANCE_BYTES = 64
CUSTOM_PRIM_BYTES = 64

_NODE_HEADER_BYTES = 16
_CHILD_SLOT_BYTES = 32  # 24 B AABB + 8 B child reference

#: Cache line size assumed by the size/footprint accounting (bytes).
CACHE_LINE_BYTES = 128


def internal_node_bytes(width: int) -> int:
    """Size of one internal node with ``width`` child slots."""
    if width < 2:
        raise ValueError("BVH width must be at least 2")
    return _NODE_HEADER_BYTES + width * _CHILD_SLOT_BYTES


def leaf_node_bytes(prim_count: int, prim_bytes: int) -> int:
    """Size of a leaf node holding ``prim_count`` inline primitives."""
    if prim_count < 0:
        raise ValueError("prim_count must be non-negative")
    return LEAF_HEADER_BYTES + prim_count * prim_bytes
