"""Monolithic acceleration structures (the prior-work baseline).

Every Gaussian contributes its own geometry to one big BVH:

* ``"20-tri"`` — a stretched regular icosahedron per Gaussian (3DGRT);
* ``"80-tri"`` — a once-subdivided icosphere per Gaussian (Condor et al.);
* ``"custom"`` — one custom ellipsoid primitive per Gaussian whose
  intersection test runs in a software shader (EVER/RayGauss style).

This is the structure Figure 5 and Table II show to be bloated: the
triangle variants multiply the primitive count by 20-80x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.builder import BuildParams, build_bvh
from repro.bvh.layout import CUSTOM_PRIM_BYTES, TRIANGLE_BYTES
from repro.bvh.node import FlatBVH
from repro.gaussians import GaussianCloud, canonical_transforms, world_aabbs
from repro.geometry import unit_icosahedron_circumscribed
from repro.math3d import quat_to_rotation_matrix

PROXY_SUBDIVISIONS = {"20-tri": 0, "80-tri": 1}


@dataclass
class MonolithicBVH:
    """One BVH over all proxy geometry in the scene.

    For triangle proxies, ``tri_v0/v1/v2`` hold world-space vertices and
    ``tri_gaussian`` maps each triangle to its owning Gaussian. For the
    custom-primitive variant the BVH primitives *are* the Gaussians and
    ``world_to_obj_*`` carry the inline ellipsoid transforms used by the
    software intersection shader.
    """

    proxy: str
    bvh: FlatBVH
    n_gaussians: int
    tri_v0: np.ndarray | None = None
    tri_v1: np.ndarray | None = None
    tri_v2: np.ndarray | None = None
    tri_gaussian: np.ndarray | None = None
    world_to_obj_linear: np.ndarray | None = None
    world_to_obj_offset: np.ndarray | None = None

    @property
    def is_triangle_proxy(self) -> bool:
        return self.proxy in PROXY_SUBDIVISIONS

    @property
    def total_bytes(self) -> int:
        """Serialized BVH size, the quantity plotted in Fig 5(b)."""
        return self.bvh.total_bytes

    @property
    def height(self) -> int:
        return self.bvh.height


def _proxy_triangles(
    cloud: GaussianCloud, subdivisions: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """World-space proxy triangles for every Gaussian, batched.

    Vectorized over Gaussians: the template mesh is stretched by each
    Gaussian's ``kappa * sigma`` radii, rotated and translated. Returns
    ``(v0, v1, v2, owner)`` with ``n_gaussians * n_faces`` triangles.
    """
    verts, faces = unit_icosahedron_circumscribed(subdivisions)
    rot = quat_to_rotation_matrix(cloud.rotations)
    radii = cloud.kappa * cloud.scales
    # (n, v, 3): scale template verts per Gaussian, rotate, translate.
    scaled = verts[None, :, :] * radii[:, None, :]
    world = np.einsum("nij,nvj->nvi", rot, scaled) + cloud.means[:, None, :]
    n = len(cloud)
    n_faces = faces.shape[0]
    v0 = world[:, faces[:, 0], :].reshape(n * n_faces, 3)
    v1 = world[:, faces[:, 1], :].reshape(n * n_faces, 3)
    v2 = world[:, faces[:, 2], :].reshape(n * n_faces, 3)
    owner = np.repeat(np.arange(n, dtype=np.int64), n_faces)
    return v0, v1, v2, owner


def build_monolithic(
    cloud: GaussianCloud,
    proxy: str = "20-tri",
    params: BuildParams | None = None,
) -> MonolithicBVH:
    """Build the monolithic baseline structure for a scene.

    ``proxy`` selects the bounding primitive: ``"20-tri"``, ``"80-tri"``
    or ``"custom"``.
    """
    if proxy in PROXY_SUBDIVISIONS:
        v0, v1, v2, owner = _proxy_triangles(cloud, PROXY_SUBDIVISIONS[proxy])
        lo = np.minimum(np.minimum(v0, v1), v2)
        hi = np.maximum(np.maximum(v0, v1), v2)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES, params)
        return MonolithicBVH(
            proxy=proxy,
            bvh=bvh,
            n_gaussians=len(cloud),
            tri_v0=v0,
            tri_v1=v1,
            tri_v2=v2,
            tri_gaussian=owner,
        )
    if proxy == "custom":
        lo, hi = world_aabbs(cloud)
        bvh = build_bvh(lo, hi, CUSTOM_PRIM_BYTES, params)
        _, world_to_obj = canonical_transforms(cloud)
        return MonolithicBVH(
            proxy=proxy,
            bvh=bvh,
            n_gaussians=len(cloud),
            world_to_obj_linear=world_to_obj.linear,
            world_to_obj_offset=world_to_obj.offset,
        )
    raise ValueError(f"unknown proxy {proxy!r}; expected 20-tri, 80-tri or custom")
