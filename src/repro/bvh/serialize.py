"""Acceleration-structure serialization.

Real pipelines build BVHs once and stream them to disk (driver AS caches,
Embree's ``rtcSaveScene``-style snapshots): the Truck scene's 2.4M-Gaussian
structure takes minutes to build but milliseconds to map back in. This
module round-trips both structure families through compressed ``.npz``
archives, preserving byte addresses so reloaded structures replay the
exact same fetch traces.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.node import FlatBVH
from repro.bvh.two_level import SharedBlas, TwoLevelBVH

_FORMAT_VERSION = 1

_FLAT_FIELDS = (
    "child_lo", "child_hi", "child_kind", "child_ref",
    "leaf_start", "leaf_count", "prim_order",
    "node_addr", "leaf_addr", "leaf_bytes",
)

# Optional array fields of the two structure dataclasses: serialized only
# when present, restored as None otherwise.
_MONO_OPTIONAL = ("tri_v0", "tri_v1", "tri_v2", "tri_gaussian",
                  "world_to_obj_linear", "world_to_obj_offset")
_BLAS_OPTIONAL = ("tri_v0", "tri_v1", "tri_v2")


def _pack_flat(prefix: str, bvh: FlatBVH, out: dict[str, np.ndarray]) -> None:
    for name in _FLAT_FIELDS:
        out[f"{prefix}.{name}"] = getattr(bvh, name)
    out[f"{prefix}.meta"] = np.array([bvh.width, bvh.height, bvh.base_address],
                                     dtype=np.int64)


def _unpack_flat(prefix: str, data) -> FlatBVH:
    width, height, base = (int(v) for v in data[f"{prefix}.meta"])
    fields = {name: data[f"{prefix}.{name}"] for name in _FLAT_FIELDS}
    return FlatBVH(width=width, height=height, base_address=base, **fields)


def save_structure(structure: MonolithicBVH | TwoLevelBVH, path: str | Path) -> None:
    """Serialize a structure to a compressed npz archive."""
    out: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
    }
    if isinstance(structure, TwoLevelBVH):
        out["family"] = np.array("two_level")
        out["n_gaussians"] = np.int64(structure.n_gaussians)
        out["world_to_obj_linear"] = structure.world_to_obj_linear
        out["world_to_obj_offset"] = structure.world_to_obj_offset
        _pack_flat("tlas", structure.tlas, out)
        blas = structure.blas
        out["blas.kind"] = np.array(blas.kind)
        out["blas.meta"] = np.array([blas.base_address, blas.subdivisions],
                                    dtype=np.int64)
        if blas.bvh is not None:
            _pack_flat("blas.bvh", blas.bvh, out)
        for name in _BLAS_OPTIONAL:
            value = getattr(blas, name)
            if value is not None:
                out[f"blas.{name}"] = value
    elif isinstance(structure, MonolithicBVH):
        out["family"] = np.array("monolithic")
        out["proxy"] = np.array(structure.proxy)
        out["n_gaussians"] = np.int64(structure.n_gaussians)
        _pack_flat("bvh", structure.bvh, out)
        for name in _MONO_OPTIONAL:
            value = getattr(structure, name)
            if value is not None:
                out[name] = value
    else:
        raise TypeError(f"cannot serialize {type(structure).__name__}")
    np.savez_compressed(Path(path), **out)


def load_structure(path: str | Path) -> MonolithicBVH | TwoLevelBVH:
    """Load a structure saved by :func:`save_structure`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported format version {version}")
        family = str(data["family"])
        if family == "two_level":
            base_address, subdivisions = (int(v) for v in data["blas.meta"])
            blas = SharedBlas(
                kind=str(data["blas.kind"]),
                base_address=base_address,
                subdivisions=subdivisions,
                bvh=_unpack_flat("blas.bvh", data) if "blas.bvh.meta" in data else None,
                **{
                    name: (data[f"blas.{name}"] if f"blas.{name}" in data else None)
                    for name in _BLAS_OPTIONAL
                },
            )
            return TwoLevelBVH(
                tlas=_unpack_flat("tlas", data),
                blas=blas,
                n_gaussians=int(data["n_gaussians"]),
                world_to_obj_linear=data["world_to_obj_linear"],
                world_to_obj_offset=data["world_to_obj_offset"],
            )
        if family == "monolithic":
            return MonolithicBVH(
                proxy=str(data["proxy"]),
                bvh=_unpack_flat("bvh", data),
                n_gaussians=int(data["n_gaussians"]),
                **{
                    name: (data[name] if name in data else None)
                    for name in _MONO_OPTIONAL
                },
            )
        raise ValueError(f"{path}: unknown structure family {family!r}")
