"""Acceleration-structure serialization.

Real pipelines build BVHs once and stream them to disk (driver AS caches,
Embree's ``rtcSaveScene``-style snapshots): the Truck scene's 2.4M-Gaussian
structure takes minutes to build but milliseconds to map back in. This
module round-trips both structure families through compressed ``.npz``
archives, preserving byte addresses so reloaded structures replay the
exact same fetch traces.
"""

from __future__ import annotations

import zipfile
import zlib
from pathlib import Path

import numpy as np

import repro.chaos as chaos
from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.node import FlatBVH
from repro.bvh.two_level import SharedBlas, TwoLevelBVH

# Version 2: icosphere-BLAS TLAS boxes bound the instance-transformed
# template mesh (not just the ellipsoid); version-1 archives of tlas+*-tri
# structures carry unsound boxes for interval-constrained multiround
# traversal, so they must rebuild.
FORMAT_VERSION = 2

# Backwards-compatible alias (pre-1.1 name).
_FORMAT_VERSION = FORMAT_VERSION


class StructureFormatError(ValueError):
    """A serialized structure is unreadable: truncated or corrupt bytes,
    a missing/unknown format version, or fields that do not match the
    declared structure family.

    The scene registry treats this as a cache miss and rebuilds, so a
    stale or damaged on-disk cache degrades to a rebuild instead of
    producing a mis-deserialized structure.
    """

_FLAT_FIELDS = (
    "child_lo", "child_hi", "child_kind", "child_ref",
    "leaf_start", "leaf_count", "prim_order",
    "node_addr", "leaf_addr", "leaf_bytes",
)

# Optional array fields of the two structure dataclasses: serialized only
# when present, restored as None otherwise.
_MONO_OPTIONAL = ("tri_v0", "tri_v1", "tri_v2", "tri_gaussian",
                  "world_to_obj_linear", "world_to_obj_offset")
_BLAS_OPTIONAL = ("tri_v0", "tri_v1", "tri_v2")


def _pack_flat(prefix: str, bvh: FlatBVH, out: dict[str, np.ndarray]) -> None:
    for name in _FLAT_FIELDS:
        out[f"{prefix}.{name}"] = getattr(bvh, name)
    out[f"{prefix}.meta"] = np.array([bvh.width, bvh.height, bvh.base_address],
                                     dtype=np.int64)


def _unpack_flat(prefix: str, data) -> FlatBVH:
    width, height, base = (int(v) for v in data[f"{prefix}.meta"])
    fields = {name: data[f"{prefix}.{name}"] for name in _FLAT_FIELDS}
    return FlatBVH(width=width, height=height, base_address=base, **fields)


def save_structure(structure: MonolithicBVH | TwoLevelBVH, path: str | Path) -> None:
    """Serialize a structure to a compressed npz archive."""
    out: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
    }
    if isinstance(structure, TwoLevelBVH):
        out["family"] = np.array("two_level")
        out["n_gaussians"] = np.int64(structure.n_gaussians)
        out["world_to_obj_linear"] = structure.world_to_obj_linear
        out["world_to_obj_offset"] = structure.world_to_obj_offset
        _pack_flat("tlas", structure.tlas, out)
        blas = structure.blas
        out["blas.kind"] = np.array(blas.kind)
        out["blas.meta"] = np.array([blas.base_address, blas.subdivisions],
                                    dtype=np.int64)
        if blas.bvh is not None:
            _pack_flat("blas.bvh", blas.bvh, out)
        for name in _BLAS_OPTIONAL:
            value = getattr(blas, name)
            if value is not None:
                out[f"blas.{name}"] = value
    elif isinstance(structure, MonolithicBVH):
        out["family"] = np.array("monolithic")
        out["proxy"] = np.array(structure.proxy)
        out["n_gaussians"] = np.int64(structure.n_gaussians)
        _pack_flat("bvh", structure.bvh, out)
        for name in _MONO_OPTIONAL:
            value = getattr(structure, name)
            if value is not None:
                out[name] = value
    else:
        raise TypeError(f"cannot serialize {type(structure).__name__}")
    np.savez_compressed(Path(path), **out)


def load_structure(path: str | Path) -> MonolithicBVH | TwoLevelBVH:
    """Load a structure saved by :func:`save_structure`.

    Raises
    ------
    StructureFormatError
        If the file is not a readable archive, predates the format-version
        field, declares a different format version, or is missing fields
        its structure family requires.
    """
    path = Path(path)
    if chaos.point("bvh.serialize.load") is not None:
        # Any directive here means "this archive is untrustworthy" —
        # surface it the way real corruption would, so every caller's
        # evict-and-rebuild path gets drilled.
        raise StructureFormatError(f"{path}: chaos: injected unreadable archive")
    try:
        archive = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise StructureFormatError(f"{path}: not a readable structure archive: {exc}") from exc
    if not isinstance(archive, np.lib.npyio.NpzFile):
        # np.load happily returns a bare ndarray for .npy bytes; that is
        # not a structure archive either.
        raise StructureFormatError(f"{path}: not an npz structure archive")
    try:
        with archive as data:
            return _load_from_archive(path, data)
    except KeyError as exc:
        raise StructureFormatError(f"{path}: missing field {exc.args[0]!r}") from exc
    except (zipfile.BadZipFile, zlib.error, ValueError, EOFError, OSError) as exc:
        # np.load only parses the zip directory up front; member bytes
        # decompress lazily on first access, so in-member corruption (CRC
        # mismatch, damaged deflate stream) surfaces here.
        if isinstance(exc, StructureFormatError):
            raise
        raise StructureFormatError(f"{path}: corrupt archive member: {exc}") from exc


def _load_from_archive(path: Path, data) -> MonolithicBVH | TwoLevelBVH:
    if "format_version" not in data:
        raise StructureFormatError(
            f"{path}: no format version (file predates versioned format)")
    version = int(data["format_version"])
    if version != FORMAT_VERSION:
        raise StructureFormatError(
            f"{path}: unsupported format version {version} "
            f"(this build reads version {FORMAT_VERSION})")
    family = str(data["family"])
    if family == "two_level":
        base_address, subdivisions = (int(v) for v in data["blas.meta"])
        blas = SharedBlas(
            kind=str(data["blas.kind"]),
            base_address=base_address,
            subdivisions=subdivisions,
            bvh=_unpack_flat("blas.bvh", data) if "blas.bvh.meta" in data else None,
            **{
                name: (data[f"blas.{name}"] if f"blas.{name}" in data else None)
                for name in _BLAS_OPTIONAL
            },
        )
        return TwoLevelBVH(
            tlas=_unpack_flat("tlas", data),
            blas=blas,
            n_gaussians=int(data["n_gaussians"]),
            world_to_obj_linear=data["world_to_obj_linear"],
            world_to_obj_offset=data["world_to_obj_offset"],
        )
    if family == "monolithic":
        return MonolithicBVH(
            proxy=str(data["proxy"]),
            bvh=_unpack_flat("bvh", data),
            n_gaussians=int(data["n_gaussians"]),
            **{
                name: (data[name] if name in data else None)
                for name in _MONO_OPTIONAL
            },
        )
    raise StructureFormatError(f"{path}: unknown structure family {family!r}")
