"""Cost-aware tile splitting from per-tile render-cost feedback.

Uniform tiles tail-latency-bound skewed scenes: the few tiles covering
the dense part of the frame cost orders of magnitude more than the empty
ones, and the frame finishes when the last expensive tile does. The
:class:`TileCostModel` closes the loop: after each frame the scheduler
records what every tile actually cost, the model folds that into a
coarse per-pixel cost-density map for the scene, and the next frame of
the same scene is split into tiles of roughly *equal predicted cost*
instead of equal area.

The output is only ever a partition of the frame into rectangles, so the
bit-identity contract of tiled rendering is untouched — cost awareness
changes *where* the tile borders fall, never what any pixel computes.

Everything here is plain numpy on small grids; no processes, no locks
(the owning scheduler serializes access).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

import numpy as np

#: Rectangle as (x0, y0, width, height) in pixels.
Rect = tuple[int, int, int, int]


class TileCostModel:
    """Per-scene cost-density maps with an equal-cost frame splitter.

    Parameters
    ----------
    grid:
        Edge of the square accumulation grid. Densities are stored in
        normalized frame coordinates, so one map serves every resolution
        of the scene.
    capacity:
        Number of scenes tracked (LRU beyond that).
    blend:
        EMA weight of the newest frame's measurements (1.0 = replace).
    """

    def __init__(self, grid: int = 16, capacity: int = 32,
                 blend: float = 0.5) -> None:
        if grid < 1:
            raise ValueError("grid must be >= 1")
        if not 0.0 < blend <= 1.0:
            raise ValueError("blend must be in (0, 1]")
        self.grid = grid
        self.capacity = capacity
        self.blend = blend
        self._maps: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        #: Per-scene mean seconds-per-ray of whole-frame (wavefront)
        #: renders — a scalar EMA per key, separate from the density
        #: maps (a frame traced whole yields no intra-frame skew info,
        #: so it must not dilute the per-tile maps).
        self._frame_rates: OrderedDict[Hashable, float] = OrderedDict()
        self.frames_recorded = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._maps

    def forget(self, key: Hashable) -> None:
        self._maps.pop(key, None)
        self._frame_rates.pop(key, None)

    # -- feedback -------------------------------------------------------

    def record(self, key: Hashable, frame_width: int, frame_height: int,
               rects: list[Rect], costs: list[float]) -> None:
        """Fold one frame's measured (tile, seconds) pairs into the map.

        Each tile's cost is spread uniformly over its pixels and
        accumulated onto the grid cells it overlaps, area-weighted, so
        the stored map is cost *density* (seconds per pixel, normalized).
        """
        if len(rects) != len(costs):
            raise ValueError("rects and costs must align")
        if frame_width < 1 or frame_height < 1 or not rects:
            return
        grid = self.grid
        density = np.zeros((grid, grid))
        weight = np.zeros((grid, grid))
        sx = grid / frame_width
        sy = grid / frame_height
        for (x0, y0, w, h), cost in zip(rects, costs):
            per_pixel = max(float(cost), 0.0) / max(w * h, 1)
            gx0, gx1 = x0 * sx, (x0 + w) * sx
            gy0, gy1 = y0 * sy, (y0 + h) * sy
            for gy in range(int(gy0), min(int(np.ceil(gy1)), grid)):
                oy = min(gy + 1, gy1) - max(gy, gy0)
                if oy <= 0:
                    continue
                for gx in range(int(gx0), min(int(np.ceil(gx1)), grid)):
                    ox = min(gx + 1, gx1) - max(gx, gx0)
                    if ox <= 0:
                        continue
                    area = ox * oy
                    density[gy, gx] += per_pixel * area
                    weight[gy, gx] += area
        filled = weight > 0
        density[filled] /= weight[filled]
        previous = self._maps.pop(key, None)
        if previous is not None:
            density = self.blend * density + (1.0 - self.blend) * previous
        self._maps[key] = density
        while len(self._maps) > self.capacity:
            self._maps.popitem(last=False)
        self.frames_recorded += 1

    def record_frame(self, key: Hashable, frame_width: int,
                     frame_height: int, cost: float) -> None:
        """Fold one whole-frame measurement (seconds) into the scene's
        seconds-per-ray rate.

        The wavefront engine traces a frame in one pass, so there are no
        per-tile costs to learn borders from; what *is* learnable is the
        scene's overall rate, which :meth:`suggest_chunk` turns into a
        frontier chunk size for the next frame.
        """
        n = frame_width * frame_height
        if n < 1 or cost < 0.0:
            return
        rate = float(cost) / n
        previous = self._frame_rates.pop(key, None)
        if previous is not None:
            rate = self.blend * rate + (1.0 - self.blend) * previous
        self._frame_rates[key] = rate
        while len(self._frame_rates) > self.capacity:
            self._frame_rates.popitem(last=False)
        self.frames_recorded += 1

    def suggest_chunk(self, key: Hashable, budget_s: float = 0.25,
                      lo: int = 8192, hi: int = 1 << 20) -> int | None:
        """Rays per wavefront chunk so one chunk costs about
        ``budget_s`` seconds at the scene's recorded rate, clamped to
        ``[lo, hi]`` — or ``None`` without history (callers keep the
        engine's default).

        Bounding chunk *time* bounds the peak size of the frontier
        temporaries on expensive scenes while letting cheap scenes run
        the whole frame in one pass.
        """
        rate = self._frame_rates.get(key)
        if rate is None or rate <= 0.0:
            return None
        self._frame_rates.move_to_end(key)
        return int(min(max(budget_s / rate, lo), hi))

    # -- prediction -----------------------------------------------------

    def _pixel_costs(self, key: Hashable, width: int, height: int) -> np.ndarray | None:
        density = self._maps.get(key)
        if density is None:
            return None
        self._maps.move_to_end(key)
        rows = np.minimum((np.arange(height) * self.grid) // max(height, 1),
                          self.grid - 1)
        cols = np.minimum((np.arange(width) * self.grid) // max(width, 1),
                          self.grid - 1)
        pixel = density[np.ix_(rows, cols)]
        # A strictly positive floor keeps zero-cost regions splittable
        # (and guards against a degenerate all-zero first measurement).
        floor = max(float(pixel.max()) * 1e-3, 1e-12)
        return np.maximum(pixel, floor)

    def predicted_cost(self, key: Hashable, rect: Rect,
                       frame_width: int, frame_height: int) -> float:
        """Predicted cost of one rect (testing / introspection)."""
        pixel = self._pixel_costs(key, frame_width, frame_height)
        if pixel is None:
            return 0.0
        x0, y0, w, h = rect
        return float(pixel[y0:y0 + h, x0:x0 + w].sum())

    def plan(self, key: Hashable, frame_width: int, frame_height: int,
             n_tiles: int) -> list[Rect] | None:
        """Split the frame into ``<= n_tiles`` rects of ~equal predicted
        cost, or ``None`` when the scene has no recorded history yet.

        Greedy recursive bisection: repeatedly split the most expensive
        splittable rect along its longer axis at the cost-balanced pixel
        boundary. Always returns an exact partition of the frame.
        """
        pixel = self._pixel_costs(key, frame_width, frame_height)
        if pixel is None:
            return None
        n_tiles = max(1, min(n_tiles, frame_width * frame_height))
        rects: list[Rect] = [(0, 0, frame_width, frame_height)]
        costs = [float(pixel.sum())]
        while len(rects) < n_tiles:
            order = sorted(range(len(rects)), key=lambda i: -costs[i])
            split = None
            for i in order:
                x0, y0, w, h = rects[i]
                if w > 1 or h > 1:
                    split = i
                    break
            if split is None:
                break
            x0, y0, w, h = rects.pop(split)
            costs.pop(split)
            region = pixel[y0:y0 + h, x0:x0 + w]
            if w >= h and w > 1:
                line = region.sum(axis=0)
                cut = self._balanced_cut(line)
                parts = [(x0, y0, cut, h), (x0 + cut, y0, w - cut, h)]
            else:
                line = region.sum(axis=1)
                cut = self._balanced_cut(line)
                parts = [(x0, y0, w, cut), (x0, y0 + cut, w, h - cut)]
            for part in parts:
                px, py, pw, ph = part
                rects.append(part)
                costs.append(float(pixel[py:py + ph, px:px + pw].sum()))
        return rects

    @staticmethod
    def _balanced_cut(line: np.ndarray) -> int:
        """Index splitting a 1-D cost profile into two ~equal halves,
        with at least one element on each side."""
        cum = np.cumsum(line)
        total = cum[-1]
        cut = int(np.searchsorted(cum, total / 2.0)) + 1
        return min(max(cut, 1), len(line) - 1)
