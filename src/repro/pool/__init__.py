"""Persistent work-stealing worker pool.

``repro.pool`` is the process-level execution substrate shared by the
serving layer and the paper campaign:

* :mod:`repro.pool.executor` — :class:`WorkerPool`, a persistent fleet
  of worker processes with a future-based ``submit``/``map``/
  ``as_completed`` API, worker-crash detection with task requeue, and a
  process-wide shared instance (:func:`get_default_pool`);
* :mod:`repro.pool.stealing` — per-worker deques with affinity placement
  and steal-half-on-idle balancing;
* :mod:`repro.pool.worker` — the long-lived worker process, holding a
  content-hash-keyed scene cache so repeated frames of one scene ship
  only a hash;
* :mod:`repro.pool.costs` — cost-aware tile splitting fed by per-tile
  cost measurements from previous frames.

Quickstart::

    from repro.pool import WorkerPool, as_completed

    with WorkerPool(workers=4) as pool:
        futures = [pool.submit(fn, arg) for arg in work]
        for future in as_completed(futures):
            future.result()
"""

from repro.pool.costs import TileCostModel
from repro.pool.executor import (
    RemoteTaskError,
    WorkerCrashError,
    WorkerPool,
    as_completed,
    available_workers,
    get_default_pool,
)
from repro.pool.stealing import StealingScheduler
from repro.pool.worker import SceneCacheMirror, scene_key, stable_fingerprint

__all__ = [
    "RemoteTaskError",
    "SceneCacheMirror",
    "StealingScheduler",
    "TileCostModel",
    "WorkerCrashError",
    "WorkerPool",
    "as_completed",
    "available_workers",
    "get_default_pool",
    "scene_key",
    "stable_fingerprint",
]
