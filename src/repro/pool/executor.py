"""The persistent worker pool and its future-based executor API.

:class:`WorkerPool` owns a fleet of long-lived worker processes (see
:mod:`repro.pool.worker`), a work-stealing placement scheduler
(:mod:`repro.pool.stealing`), and a collector thread that matches results
to :class:`concurrent.futures.Future` objects. Unlike a per-render
``multiprocessing.Pool``, the fleet survives across frames, scenes, and
callers: workers keep content-addressed scene caches, so repeated frames
of one scene ship only a hash, and the eval campaign's module-level
render caches stay warm between tasks.

Dispatch keeps exactly one task in flight per worker. That makes crash
accounting exact — when a worker dies, the parent knows precisely which
task it took down — and it is what lets the parent mirror each worker's
scene cache without acknowledgements. Queued (not yet dispatched) work
lives in per-worker deques; idle workers steal half the richest backlog.

Crash handling: a dead worker's in-flight task is requeued elsewhere (up
to ``max_task_retries`` times, then its future fails with
:class:`WorkerCrashError`), its queued tasks are re-placed, and a fresh
worker is spawned into the vacant slot with an empty cache mirror.

Results come back over one pipe *per worker*, not a shared queue. A
shared ``multiprocessing.Queue`` serializes writers through one
cross-process lock — and a worker SIGKILLed inside that critical
section (its feeder thread gets preempted between ``send_bytes`` and
the lock release, a wide window on loaded single-core hosts) leaves the
lock held forever, wedging every surviving worker's results. With one
single-writer pipe per worker there is no shared lock to poison; the
parent reassembles length-prefixed frames itself, so even a frame torn
by a mid-write kill only stalls that dead worker's (discarded) pipe,
never the collector.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import pickle
import select
import struct
import threading
import time
from concurrent.futures import Future
from concurrent.futures import as_completed as as_completed  # re-export
from typing import Callable, Hashable, Iterable

import repro.chaos as chaos
from repro.obs import absorb_worker_delta, get_registry
from repro.obs import events as obs_events
from repro.obs import flight
from repro.pool import worker as _w
from repro.pool.stealing import StealingScheduler
from repro.pool.worker import SceneCacheMirror, scene_key


def available_workers() -> int:
    """Worker count for auto-sized pools.

    Honors the ``REPRO_WORKERS`` environment override (any positive
    integer; invalid values are ignored), then falls back to the CPUs
    this process may actually run on. ``sched_getaffinity`` can raise
    ``OSError``/``ValueError`` on exotic kernels and containers — every
    failure degrades to ``cpu_count``.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            value = int(env)
            if value >= 1:
                return value
        except ValueError:
            pass
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError, ValueError):
        return os.cpu_count() or 1


class WorkerCrashError(RuntimeError):
    """A task's worker died (repeatedly) while running it."""


class RemoteTaskError(RuntimeError):
    """A task raised in the worker; carries the remote traceback."""

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


class _Task:
    __slots__ = ("task_id", "kind", "future", "affinity", "retries",
                 "payload", "scene", "worker", "started", "fatal_pids")

    def __init__(self, task_id, kind, future, affinity, payload, scene=None):
        self.task_id = task_id
        self.kind = kind
        self.future = future
        self.affinity = affinity
        self.payload = payload
        self.scene = scene
        self.retries = 0
        self.worker = None
        self.started = False
        # PIDs of workers that died while running this task — distinct
        # victims, the poison-quarantine signal (a flaky host kills the
        # same task on different processes; a poison task does too, but
        # nothing else plausibly does).
        self.fatal_pids = None


def _env_positive_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _env_positive_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def _json_safe(value):
    """A scalar as-is, anything else by repr (bundle-safe)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _task_summary(task: _Task | None) -> dict | None:
    """A plain-data summary of a task for incident bundles — enough to
    identify the work without shipping megabytes of rays or scenes."""
    if task is None:
        return None
    summary = {
        "task_id": task.task_id,
        "kind": task.kind,
        "retries": task.retries,
        "affinity": _json_safe(task.affinity),
    }
    try:
        if task.kind == _w.TASK_TILE:
            _origins, _directions, pixel_ids, keep = task.payload
            summary["rays"] = int(len(pixel_ids))
            summary["keep_traces"] = bool(keep)
            if task.scene is not None:
                summary["scene_key"] = repr(task.scene[0])[:200]
        else:
            fn, args, kwargs = task.payload
            summary["fn"] = getattr(fn, "__qualname__", None) or repr(fn)
            summary["n_args"] = len(args)
            summary["n_kwargs"] = len(kwargs or {})
    except (TypeError, ValueError, IndexError):
        summary["payload"] = "<unsummarizable>"
    return summary


class WorkerPool:
    """A persistent, work-stealing process pool.

    Parameters
    ----------
    workers:
        Process count; ``None``/``0`` auto-sizes via
        :func:`available_workers` (which honors ``REPRO_WORKERS``).
    scene_cache_size:
        Scenes each worker keeps resident (LRU).
    start_method:
        Forwarded to :func:`multiprocessing.get_context`; default picks
        ``fork`` while the parent is single-threaded, ``spawn`` otherwise
        (forking a multi-threaded parent can deadlock children).
    stealing:
        Disable to measure the cost of *not* stealing (benchmarks).
    max_task_retries:
        Crash-requeue attempts before a task's future fails.
    task_deadline_s:
        Per-task wall-clock deadline. A worker holding one task longer
        than this is presumed hung (SIGSTOP, runaway loop, dead kernel
        thread) and is SIGKILLed by the collector's watchdog; the
        ordinary crash accounting then requeues its task. ``None``
        (default) disables the watchdog; the ``REPRO_TASK_DEADLINE``
        env var supplies a default when the argument is omitted.
    retry_backoff_s:
        Base of the exponential backoff between crash-requeues of the
        same task (``retry_backoff_s * 2**(retries-1)``); ``0`` restores
        immediate requeue.
    poison_threshold:
        When set, a task that has killed this many *distinct* worker
        processes is quarantined — failed fast with a
        ``poison-task-quarantined`` incident bundle instead of burning
        through its remaining retries (and more workers). ``None``
        (default) leaves only the retry bound; ``REPRO_POISON_THRESHOLD``
        supplies a default when the argument is omitted.

    Workers spawn lazily on first submit, so constructing a pool is free.
    """

    def __init__(
        self,
        workers: int | None = None,
        scene_cache_size: int = _w.DEFAULT_SCENE_CACHE,
        start_method: str | None = None,
        stealing: bool = True,
        max_task_retries: int = 2,
        task_deadline_s: float | None = None,
        retry_backoff_s: float = 0.05,
        poison_threshold: int | None = None,
    ) -> None:
        if workers is None or workers == 0:
            workers = available_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1 (or 0/None for auto)")
        self.n_workers = workers
        self.scene_cache_size = scene_cache_size
        self.start_method = start_method
        self.max_task_retries = max_task_retries
        if task_deadline_s is None:
            task_deadline_s = _env_positive_float("REPRO_TASK_DEADLINE")
        if task_deadline_s is not None and task_deadline_s <= 0:
            raise ValueError("task_deadline_s must be > 0 (or None)")
        self.task_deadline_s = task_deadline_s
        self.retry_backoff_s = max(0.0, retry_backoff_s)
        if poison_threshold is None:
            poison_threshold = _env_positive_int("REPRO_POISON_THRESHOLD")
        if poison_threshold is not None and poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1 (or None)")
        self.poison_threshold = poison_threshold
        self._sched = StealingScheduler(workers, stealing=stealing)
        self._lock = threading.RLock()
        self._tasks: dict[int, _Task] = {}
        self._inflight: list[int | None] = [None] * workers
        self._procs: list = [None] * workers
        self._task_queues: list = [None] * workers
        self._mirrors = [SceneCacheMirror(scene_cache_size)
                         for _ in range(workers)]
        self._next_id = 0
        self._ctx = None
        # Per-worker result pipes (single writer each — see module
        # docstring) plus this process's frame-reassembly buffers,
        # keyed by the receiving Connection so a respawn's fresh pipe
        # can never inherit a dead worker's torn bytes.
        self._result_rx: list = [None] * workers
        self._rx_bufs: dict = {}
        self._retired_rx: list = []
        self._collector: threading.Thread | None = None
        self._started = False
        self._closed = False
        self._shutdown = threading.Event()
        self._drained = threading.Condition(self._lock)
        # Teardown is serialized on its own lock so concurrent close()
        # calls (TileScheduler.__exit__ racing the atexit hook) are
        # join-safe: the loser blocks until the winner has actually
        # reaped every worker, instead of returning with SIGKILL-pending
        # processes still live.
        self._close_lock = threading.Lock()
        self._close_done = False
        # Watchdog state: when each worker's current task was shipped,
        # and which workers the watchdog SIGKILLed (so the crash reaper
        # can attribute the death to the deadline, not to the task).
        self._dispatched_at: list[float | None] = [None] * workers
        self._watchdog_killed: dict[int, float] = {}
        # Crash-requeued tasks parked until their backoff expires:
        # (ready_at_monotonic, task_id), released by the collector.
        self._parked: list[tuple[float, int]] = []
        # Counters (read through stats()).
        self._completed = 0
        self._failed = 0
        self._crashes = 0
        self._requeues = 0
        self._deadline_kills = 0
        self._quarantined = 0
        self._scene_ships = 0
        self._scene_hits = 0
        # Incident bundles queued under the lock, dumped in _ship()
        # (file I/O never runs while holding the pool lock).
        self._pending_incidents: list[tuple] = []

    # -- lifecycle ------------------------------------------------------

    def _resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        if "fork" in mp.get_all_start_methods() and threading.active_count() == 1:
            return "fork"
        return "spawn"

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            self._ctx = mp.get_context(self._resolve_start_method())
            for wid in range(self.n_workers):
                self._spawn(wid)
            self._collector = threading.Thread(
                target=self._collect, name="repro-pool-collector", daemon=True)
            self._started = True
            self._collector.start()

    def _spawn(self, wid: int) -> None:
        self._task_queues[wid] = self._ctx.SimpleQueue()
        self._mirrors[wid].clear()
        # A fresh result pipe per (re)spawn: the old one may hold a
        # frame torn by the crash. Retired pipes stay open (a sibling
        # forked later can hold an inherited copy of the write end, so
        # EOF is not guaranteed) but are never selected on again; they
        # are closed with the pool.
        with self._lock:
            old_rx = self._result_rx[wid]
            if old_rx is not None:
                self._retired_rx.append(old_rx)
                self._rx_bufs.pop(old_rx, None)
            rx, tx = self._ctx.Pipe(duplex=False)
            self._result_rx[wid] = rx
        # The flight dir travels as an explicit argument: spawn-started
        # workers have fresh module state, so env/override knobs set in
        # this process would not reach them otherwise.
        worker_flight_dir = flight.flight_dir() if flight.enabled() else None
        proc = self._ctx.Process(
            target=_w.worker_main,
            args=(wid, self._task_queues[wid], tx,
                  self.scene_cache_size, worker_flight_dir),
            name=f"repro-pool-{wid}",
            daemon=True,
        )
        proc.start()
        tx.close()  # the worker holds it now; keep EOF meaningful here
        self._procs[wid] = proc
        flight.record(obs_events.STATE, "pool.spawn", worker=wid,
                      worker_pid=proc.pid)

    @property
    def started(self) -> bool:
        return self._started

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def processes(self) -> list:
        """Live worker process handles (crash tests poke at these)."""
        return list(self._procs)

    def close(self, wait: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the pool. ``wait=True`` lets in-flight/queued work drain
        first; ``wait=False`` fails outstanding futures immediately.

        Idempotent and join-safe: concurrent callers (a scheduler's
        ``__exit__`` racing the atexit default-pool hook) serialize on
        one teardown — whichever call runs it, every caller returns only
        after workers are reaped. Workers that ignore SIGTERM — a
        SIGSTOPped (chaos-hung) process does, by definition — are
        escalated to SIGKILL rather than leaked.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
        if first and wait and self._started:
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._drained:
                while self._tasks:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                    self._drained.wait(timeout=remaining if remaining else 0.5)
        with self._close_lock:
            if self._close_done:
                return
            self._close_done = True
            with self._lock:
                for task in list(self._tasks.values()):
                    if not task.future.done():
                        task.future.set_exception(RuntimeError("pool closed"))
                self._tasks.clear()
                self._parked.clear()
                # A concurrent close(wait=True) may still sit in its
                # drain loop; everything it waited on just failed.
                self._drained.notify_all()
            self._shutdown.set()
            if self._started:
                for wid, proc in enumerate(self._procs):
                    if proc is not None and proc.is_alive():
                        try:
                            self._task_queues[wid].put(None)
                        except OSError:
                            pass
                for proc in self._procs:
                    if proc is not None:
                        proc.join(timeout=2.0)
                        if proc.is_alive():
                            proc.terminate()
                            proc.join(timeout=1.0)
                        if proc.is_alive():
                            # SIGTERM is delivered but never *runs* in a
                            # stopped process; SIGKILL reaps it anyway.
                            proc.kill()
                            proc.join(timeout=1.0)
                if self._collector is not None:
                    self._collector.join(timeout=2.0)
                with self._lock:
                    for rx in self._result_rx + self._retired_rx:
                        if rx is not None:
                            try:
                                rx.close()
                            except OSError:
                                pass
                    self._result_rx = [None] * self.n_workers
                    self._retired_rx = []
                    self._rx_bufs.clear()
            # Incidents queued by a crash the collector reaped but never
            # got to flush (it may have been mid-loop when _shutdown was
            # set) must not be lost with the pool.
            self._flush_incidents()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit(self, fn: Callable, /, *args,
               affinity: Hashable | None = None, **kwargs) -> Future:
        """Run ``fn(*args, **kwargs)`` on a worker; returns a Future.

        ``affinity`` is a locality hint: tasks sharing a key are placed
        on the same home worker (stealing may still move them), so work
        that shares warm per-process state benefits from it.
        """
        return self._submit_task(_w.TASK_CALL, (fn, args, kwargs),
                                 affinity=affinity)

    def submit_tile(self, cloud, structure, config, objects, engine: str,
                    origins, directions, pixel_ids, keep_traces: bool,
                    key: tuple | None = None,
                    affinity: Hashable | None = None) -> Future:
        """Trace one ray slice on a worker; resolves to
        ``(BundleResult, worker_seconds)``.

        ``key`` is the scene content key (computed when omitted); the
        dispatcher ships the full scene only to workers that don't hold
        it yet.
        """
        if key is None:
            key = scene_key(cloud, structure, config, objects, engine)
        scene = (key, (cloud, structure, config, objects, engine))
        return self._submit_task(
            _w.TASK_TILE, (origins, directions, pixel_ids, keep_traces),
            affinity=affinity, scene=scene)

    def map(self, fn: Callable, iterable: Iterable,
            affinity: Hashable | None = None) -> list:
        """Like ``Executor.map`` but eager and list-returning."""
        futures = [self.submit(fn, item, affinity=affinity)
                   for item in iterable]
        return [future.result() for future in futures]

    def _submit_task(self, kind, payload, affinity=None, scene=None) -> Future:
        if self._closed:
            raise RuntimeError("pool is closed")
        self._ensure_started()
        future: Future = Future()
        with self._lock:
            task_id = self._next_id
            self._next_id += 1
            task = _Task(task_id, kind, future, affinity, payload, scene)
            self._tasks[task_id] = task
            self._sched.place(task_id, affinity)
            plans = self._plan_dispatches()
        self._ship(plans)
        return future

    # -- dispatch & collection -----------------------------------------
    #
    # Dispatch is split in two so the (potentially large) pickling of a
    # scene ship happens *outside* the pool lock: under the lock, idle
    # workers are matched to tasks and the wire tuples are built
    # (`_plan_dispatches`); the pipe writes then run unlocked (`_ship`),
    # so result collection and new submissions never stall behind a
    # multi-megabyte scene transfer. Scene-cache mirrors are updated
    # only after a ship *succeeds* — a failed write must not convince
    # the parent that a worker holds a scene it never received.

    def _plan_dispatches(self) -> list[tuple]:
        """Match idle workers to tasks (lock held); returns ship plans
        ``(wid, task_id, wire, scene_note)`` for :meth:`_ship`."""
        plans = []
        for wid in range(self.n_workers):
            if self._inflight[wid] is not None:
                continue
            while True:
                task_id = self._sched.next_for(wid)
                if task_id is None:
                    break
                plan = self._plan_one(wid, task_id)
                if plan is not None:
                    plans.append(plan)
                    break
        return plans

    def _plan_one(self, wid: int, task_id: int):
        """Plan one dispatch of ``task_id`` to idle worker ``wid``
        (lock held — only ``_plan_dispatches`` calls this)."""
        task = self._tasks.get(task_id)
        if task is None:
            return None
        if not task.started:
            # Crash-requeued tasks skip this: their future is RUNNING.
            if not task.future.set_running_or_notify_cancel():
                self._tasks.pop(task_id, None)
                return None
            task.started = True
        if task.kind == _w.TASK_TILE:
            key, full = task.scene
            if key in self._mirrors[wid]:
                scene_field = (_w.SCENE_HIT, key)
            else:
                scene_field = (_w.SCENE_SHIP, key, full)
            wire = (_w.TASK_TILE, task_id, scene_field, *task.payload)
            scene_note = (key, scene_field[0])
        else:
            fn, args, kwargs = task.payload
            wire = (_w.TASK_CALL, task_id, fn, args, kwargs)
            scene_note = None
        task.worker = wid
        self._inflight[wid] = task_id
        self._dispatched_at[wid] = time.monotonic()
        return (wid, task_id, wire, scene_note)

    def _ship(self, plans: list[tuple]) -> None:
        """Write planned wires to worker pipes (no lock held)."""
        # Dump-first: a crash incident must capture the dead worker's
        # spool checkpoint *before* the requeued task reaches the
        # respawned worker in the same slot — its first task_start
        # checkpoint would overwrite the evidence.
        self._flush_incidents()
        pending = list(plans)
        while pending:
            wid, task_id, wire, scene_note = pending.pop(0)
            try:
                directive = chaos.point("pool.dispatch")
                if directive is not None:
                    chaos.execute("pool.dispatch", directive)
                self._task_queues[wid].put(wire)
            except Exception as exc:
                with self._lock:
                    pending.extend(self._ship_failed(wid, task_id, exc))
                continue
            flight.record(obs_events.DISPATCH, "pool.dispatch",
                          worker=wid, task=task_id, task_kind=wire[0])
            if scene_note is not None:
                with self._lock:
                    # Commit the mirror only while the dispatch is still
                    # current: a crash that raced this write already
                    # cleared the slot (and the respawn's cache).
                    if self._inflight[wid] == task_id:
                        key, tag = scene_note
                        self._mirrors[wid].touch(key)
                        if tag == _w.SCENE_SHIP:
                            self._scene_ships += 1
                            get_registry().add("pool.scene_ships")
                        else:
                            self._scene_hits += 1
                            get_registry().add("pool.scene_cache_hits")
        self._flush_incidents()

    def _flush_incidents(self) -> None:
        """Dump incident bundles queued by crash/error paths (no lock
        held during the file writes)."""
        with self._lock:
            if not self._pending_incidents:
                return
            pending, self._pending_incidents = self._pending_incidents, []
        for reason, context in pending:
            flight.dump_incident(reason, **context)

    def _ship_failed(self, wid: int, task_id: int, exc) -> list[tuple]:
        """Recover from a failed pipe write (lock held); returns
        replacement ship plans."""
        if self._inflight[wid] != task_id:
            return self._plan_dispatches()  # a crash reap beat us to it
        if not self._procs[wid].is_alive():
            # The worker's pipe is gone — it crashed between dispatches.
            # The task is still marked in flight, so _on_crash requeues
            # it and plans work for the respawned slot.
            return self._on_crash(wid)
        self._inflight[wid] = None
        self._dispatched_at[wid] = None
        task = self._tasks.get(task_id)
        if isinstance(exc, OSError) and task is not None:
            # The worker is alive and the payload pickles — the write
            # itself failed (EINTR, momentary EAGAIN pressure, an
            # injected dispatch fault). Transient by construction:
            # retry with backoff, bounded by the same retry budget as
            # crashes, instead of failing work the fleet could do.
            task.retries += 1
            if task.retries <= self.max_task_retries:
                self._requeues += 1
                get_registry().add("pool.requeues")
                flight.record(obs_events.REQUEUE, "pool.dispatch_retry",
                              worker=wid, task=task_id,
                              retries=task.retries, error=repr(exc))
                self._park(task_id, task.retries)
                return self._plan_dispatches()
        # Persistent dispatch failure, or the payload wouldn't
        # serialize (unpicklable fn/args). Fail the task, free the slot.
        self._tasks.pop(task_id, None)
        self._failed += 1
        if task is not None and not task.future.done():
            task.future.set_exception(RemoteTaskError(
                f"task could not be shipped to worker {wid}: {exc!r}"))
        if not self._tasks:
            self._drained.notify_all()
        return self._plan_dispatches()

    def _collect(self) -> None:
        while True:
            with self._lock:
                pairs = [(wid, rx)
                         for wid, rx in enumerate(self._result_rx)
                         if rx is not None]
            try:
                ready, _, _ = select.select(
                    [rx for _, rx in pairs], [], [], 0.1)
            except (OSError, ValueError):
                # A pipe was retired/closed under us; resnapshot.
                if self._shutdown.is_set():
                    return
                continue
            if self._shutdown.is_set():
                return
            for wid, rx in pairs:
                if rx in ready:
                    for message in self._drain_rx(rx):
                        self._handle(message)
            self._reap_overdue()
            self._reap_crashes()
            self._release_parked()

    def _drain_rx(self, rx) -> list:
        """Read whatever is available on one result pipe (never blocks)
        and peel off complete length-prefixed frames.

        A partial frame — a worker killed mid-write — simply stays
        buffered: its pipe is retired by the respawn, so torn bytes can
        stall nothing but themselves.
        """
        with self._lock:
            buf = self._rx_bufs.setdefault(rx, bytearray())
        try:
            # select() said readable, so one read returns immediately:
            # data if there is any, b"" on EOF (worker gone — the crash
            # reaper owns that diagnosis).
            chunk = os.read(rx.fileno(), 1 << 20)
        except (OSError, ValueError):
            return []
        if not chunk:
            return []
        buf += chunk
        messages = []
        while True:
            if len(buf) < 4:
                break
            (size,) = struct.unpack_from("!i", buf, 0)
            offset = 4
            if size == -1:  # Connection's large-payload framing
                if len(buf) < 12:
                    break
                (size,) = struct.unpack_from("!Q", buf, 4)
                offset = 12
            if len(buf) < offset + size:
                break
            payload = bytes(buf[offset:offset + size])
            del buf[:offset + size]
            try:
                messages.append(pickle.loads(payload))
            except Exception:  # repro: lint-ok[broad-except] a corrupt frame from a dying worker must not kill the collector; the crash reaper requeues its task
                continue
        return messages

    def _handle(self, message) -> None:
        tag, wid, task_id = message[0], message[1], message[2]
        # Fold the worker's observability delta into this process before
        # taking the pool lock: the merge takes the registry lock, and
        # the delta is independent of pool state (the previously-lost
        # worker-side fallback counts and per-tile timings land here).
        delta = message[5] if len(message) > 5 else None
        absorb_worker_delta(delta)
        registry = get_registry()
        with self._lock:
            if self._inflight[wid] == task_id:
                self._inflight[wid] = None
                self._dispatched_at[wid] = None
            task = self._tasks.pop(task_id, None)
            if task is not None:
                if tag == _w.RESULT_OK:
                    _, _, _, value, cost = message[:5]
                    self._completed += 1
                    registry.add("pool.tasks_completed")
                    flight.record(obs_events.COMPLETE, "pool.complete",
                                  worker=wid, task=task_id)
                    result = (value, cost) if task.kind == _w.TASK_TILE else value
                    if not task.future.done():
                        task.future.set_result(result)
                else:
                    _, _, _, error_repr, tb = message[:5]
                    self._failed += 1
                    registry.add("pool.tasks_failed")
                    flight.record(obs_events.ERROR, "pool.task_error",
                                  worker=wid, task=task_id, error=error_repr)
                    self._pending_incidents.append((
                        "remote-task-error",
                        {"worker": wid, "task": task_id,
                         "error": error_repr,
                         "task_summary": _task_summary(task)}))
                    if not task.future.done():
                        task.future.set_exception(RemoteTaskError(
                            f"task raised in worker {wid}: {error_repr}", tb))
            if not self._tasks:
                self._drained.notify_all()
            plans = self._plan_dispatches()
        self._ship(plans)

    def _reap_overdue(self) -> None:
        """The hung-worker watchdog: SIGKILL any worker that has held
        one task past ``task_deadline_s``; the ordinary crash reaper
        then owns the requeue/respawn. SIGKILL (not SIGTERM) because
        the canonical hang — a stopped or wedged process — never runs
        a milder handler. No-op when no deadline is configured."""
        if self.task_deadline_s is None:
            return
        victims = []
        now = time.monotonic()
        with self._lock:
            if not self._started or self._closed:
                return
            for wid, shipped in enumerate(self._dispatched_at):
                if shipped is None or self._inflight[wid] is None:
                    continue
                overdue = now - shipped
                if overdue <= self.task_deadline_s:
                    continue
                proc = self._procs[wid]
                if proc is None or not proc.is_alive():
                    continue  # already dead; the crash reaper owns it
                self._deadline_kills += 1
                self._watchdog_killed[wid] = overdue
                self._dispatched_at[wid] = None  # one kill per dispatch
                get_registry().add("pool.deadline_kills")
                flight.record(obs_events.ERROR, "pool.deadline_kill",
                              worker=wid, task=self._inflight[wid],
                              overdue_s=round(overdue, 3),
                              deadline_s=self.task_deadline_s)
                victims.append(proc)
        for proc in victims:
            proc.kill()

    def _park(self, task_id: int, retries: int) -> None:
        """Hold a requeued task until its exponential backoff expires
        (lock held; the collector releases ripe tasks). A zero backoff
        re-places immediately — the pre-backoff behavior."""
        if self.retry_backoff_s <= 0:
            task = self._tasks.get(task_id)
            if task is not None:
                self._sched.place(task_id, task.affinity)
            return
        delay = self.retry_backoff_s * (2 ** max(0, retries - 1))
        self._parked.append((time.monotonic() + delay, task_id))

    def _release_parked(self) -> None:
        """Re-place parked tasks whose backoff has expired."""
        plans = []
        with self._lock:
            if not self._parked:
                return
            now = time.monotonic()
            ripe = [entry for entry in self._parked if entry[0] <= now]
            if not ripe:
                return
            self._parked = [e for e in self._parked if e[0] > now]
            for _, task_id in ripe:
                task = self._tasks.get(task_id)
                if task is not None:
                    self._sched.place(task_id, task.affinity)
            plans = self._plan_dispatches()
        self._ship(plans)

    def _reap_crashes(self) -> None:
        plans = []
        with self._lock:
            if not self._started or self._closed:
                return
            for wid, proc in enumerate(self._procs):
                if proc is not None and not proc.is_alive():
                    plans.extend(self._on_crash(wid))
        self._ship(plans)

    def _on_crash(self, wid: int) -> list[tuple]:
        """Recover from a dead worker (lock held): requeue its work and
        respawn a fresh process into the slot. Returns ship plans.

        Forensics ride along: the crash (and any requeue) is recorded
        into the flight ring, and an incident-bundle descriptor is
        queued for :meth:`_flush_incidents` — the dump itself happens
        unlocked in ``_ship``, after recovery has already completed.
        """
        self._crashes += 1
        # Mirrored into the obs registry so `repro stats` snapshots and
        # serve-bench reports see crash/requeue counts, not only callers
        # holding a pool reference (they used to live in executor-local
        # fields alone).
        get_registry().add("pool.crashes")
        proc = self._procs[wid]
        exitcode = proc.exitcode if proc is not None else None
        displaced = self._sched.drain_worker(wid)
        task_id = self._inflight[wid]
        self._inflight[wid] = None
        self._dispatched_at[wid] = None
        flight.record(obs_events.CRASH, "pool.worker_crash", worker=wid,
                      exitcode=exitcode, task=task_id)
        incident = {
            "worker": wid,
            "exitcode": exitcode,
            "task": task_id,
            "pool": {"workers": self.n_workers,
                     "pending": self._sched.total_pending(),
                     "crashes": self._crashes,
                     "requeues": self._requeues},
        }
        overdue = self._watchdog_killed.pop(wid, None)
        if overdue is not None:
            # This death was manufactured by our own watchdog; say so,
            # or the doctor would read the SIGKILL as an OOM kill.
            incident["watchdog_deadline_s"] = self.task_deadline_s
            incident["overdue_s"] = round(overdue, 3)
        if task_id is not None:
            task = self._tasks.get(task_id)
            incident["task_summary"] = _task_summary(task)
            if task is not None:
                task.retries += 1
                incident["retries"] = task.retries
                if task.fatal_pids is None:
                    task.fatal_pids = set()
                if proc is not None and proc.pid is not None:
                    task.fatal_pids.add(proc.pid)
                incident["fatal_pids"] = sorted(task.fatal_pids)
                if (self.poison_threshold is not None
                        and len(task.fatal_pids) >= self.poison_threshold):
                    # Poison quarantine: this one task has now killed
                    # N *distinct* processes. Requeueing it again just
                    # feeds it more workers — fail it fast instead.
                    self._tasks.pop(task_id, None)
                    self._failed += 1
                    self._quarantined += 1
                    get_registry().add("pool.quarantined")
                    self._pending_incidents.append((
                        "poison-task-quarantined", dict(incident)))
                    if not task.future.done():
                        task.future.set_exception(WorkerCrashError(
                            f"task {task_id} quarantined: killed "
                            f"{len(task.fatal_pids)} distinct workers "
                            f"(threshold {self.poison_threshold})"))
                    if not self._tasks:
                        self._drained.notify_all()
                elif task.retries > self.max_task_retries:
                    self._tasks.pop(task_id, None)
                    self._failed += 1
                    self._pending_incidents.append((
                        "task-retries-exhausted", dict(incident)))
                    if not task.future.done():
                        task.future.set_exception(WorkerCrashError(
                            f"worker died {task.retries} times while "
                            f"running task {task_id}"))
                    if not self._tasks:
                        self._drained.notify_all()
                else:
                    self._requeues += 1
                    get_registry().add("pool.requeues")
                    flight.record(obs_events.REQUEUE, "pool.requeue",
                                  worker=wid, task=task_id,
                                  retries=task.retries)
                    self._park(task_id, task.retries)
        self._pending_incidents.append(("worker-crash", incident))
        self._spawn(wid)
        for tid in displaced:
            task = self._tasks.get(tid)
            if task is not None:
                self._sched.place(tid, task.affinity)
        return self._plan_dispatches()

    # -- introspection --------------------------------------------------

    def utilization(self) -> float:
        """Fraction of workers currently running a task."""
        with self._lock:
            if not self._started:
                return 0.0
            busy = sum(1 for t in self._inflight if t is not None)
            return busy / self.n_workers

    def stats(self) -> dict:
        """One dict with every pool counter (serve-bench reports this)."""
        with self._lock:
            busy = sum(1 for t in self._inflight if t is not None)
            return {
                "workers": self.n_workers,
                "started": self._started,
                "busy_workers": busy,
                "pending": self._sched.total_pending(),
                "tasks_completed": self._completed,
                "tasks_failed": self._failed,
                "steals": self._sched.steals,
                "stolen_tasks": self._sched.stolen_tasks,
                "crashes": self._crashes,
                "requeues": self._requeues,
                "deadline_kills": self._deadline_kills,
                "quarantined": self._quarantined,
                "parked": len(self._parked),
                "scene_ships": self._scene_ships,
                "scene_cache_hits": self._scene_hits,
            }


# ---------------------------------------------------------------------------
# The process-wide shared pool: serving and the eval campaign both default
# to this one fleet, so a host runs one set of workers, not one per caller.

_default_pool: WorkerPool | None = None
_default_lock = threading.Lock()


def get_default_pool(workers: int | None = None) -> WorkerPool:
    """The lazily-created process-wide pool (auto-sized unless ``workers``
    is given on first use; later calls return the existing pool)."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.closed:
            _default_pool = WorkerPool(workers=workers)
        return _default_pool


@atexit.register
def _close_default_pool() -> None:
    with _default_lock:
        if _default_pool is not None and not _default_pool.closed:
            _default_pool.close(wait=False, timeout=2.0)
