"""Worker-process side of the persistent pool.

Each worker is a long-lived process running :func:`worker_main`: it pulls
task tuples off its private task queue, executes them, and pushes result
tuples onto the shared result queue until it receives the ``None``
shutdown sentinel.

Two task kinds exist:

* ``"tile"`` — trace a verbatim slice of a frame's ray bundle against a
  scene. Scenes are addressed by a **content key**; the first tile of a
  scene ships the full ``(cloud, structure, config, objects, engine)``
  payload and every later tile of that scene ships only the key, served
  from the worker-resident cache (an LRU the parent mirrors exactly, so
  the parent always knows what each worker holds). The structure the
  scheduler ships is the *flattened* SoA layout
  (:class:`~repro.bvh.flatten.FlatStructure`) and the engine is always
  concrete (``auto`` resolves in the parent): a worker builds either
  tracing engine straight from the one layout. When the task asks for
  fetch traces, both engines record them (the packet engine through its
  trace recorder) and the per-ray ``RayTrace`` streams ship back inside
  the tile's ``BundleResult``.
* ``"call"`` — run an arbitrary picklable ``fn(*args, **kwargs)``. This
  is what the eval campaign fans out; workers keep their module state
  (e.g. the eval harness render caches) across calls, which is the whole
  point of a persistent pool.

Results carry the worker-measured execution seconds, which feed the
cost-aware tile splitter in :mod:`repro.pool.costs`, plus an
observability delta: whatever the task recorded into the worker's
:mod:`repro.obs` registry (packet fallbacks, per-phase engine timings)
and any trace spans, collected-and-reset per task so each result ships
exactly the measurements of its own task. The parent folds the delta
into its registry — worker-side metrics were previously lost entirely
(a fallback inside a worker never reached the parent's gauge).
"""

from __future__ import annotations

import hashlib
import pickle
import time
import traceback
from collections import OrderedDict

import repro.chaos as chaos
from repro.obs import (
    BufferTraceSink,
    emit_span,
    events as obs_events,
    flight,
    get_registry,
    install_sink,
)

#: Default number of scenes a worker keeps resident.
DEFAULT_SCENE_CACHE = 4

#: Wire tags (module-level so parent and worker agree by construction).
TASK_TILE = "tile"
TASK_CALL = "call"
SCENE_HIT = "hit"
SCENE_SHIP = "ship"
RESULT_OK = "ok"
RESULT_ERROR = "error"


def stable_fingerprint(obj) -> str:
    """Content hash of a picklable object, memoized on the object.

    Pickling the same construction path over the same array contents is
    deterministic, so two structures built from identical scenes share a
    fingerprint while any content change produces a new one. The digest
    is stashed on the object (``object.__setattr__`` reaches into frozen
    dataclasses) so a long-lived scene pays for hashing once; callers
    must treat fingerprinted objects as immutable — the serving layer
    already does.
    """
    cached = getattr(obj, "_pool_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256(pickle.dumps(obj, protocol=4)).hexdigest()
    try:
        object.__setattr__(obj, "_pool_fingerprint", digest)
    except (AttributeError, TypeError):
        pass
    return digest


def scene_key(cloud, structure, config, objects, engine: str) -> tuple:
    """Content-based identity of everything a tile tracer depends on."""
    return (
        stable_fingerprint(cloud),
        stable_fingerprint(structure),
        config,
        stable_fingerprint(objects) if objects is not None else None,
        engine,
    )


class SceneCacheMirror:
    """The LRU update rule shared by worker caches and parent mirrors.

    The parent dispatches every task a worker sees, in order, and both
    sides apply this exact rule on each tile task — so the parent's
    mirror of "which scene keys does worker w hold" never drifts, and
    cold/warm shipping decisions are made without any round trip.
    """

    def __init__(self, capacity: int = DEFAULT_SCENE_CACHE) -> None:
        if capacity < 1:
            raise ValueError("scene cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, key, value=True):
        """Insert/refresh a key; returns the evicted key (or None)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return None
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            return evicted
        return None

    def get(self, key):
        self._entries.move_to_end(key)
        return self._entries[key]

    def clear(self) -> None:
        self._entries.clear()


def _resolve_tracer(scene_field, cache: SceneCacheMirror):
    """Build or fetch the (tracer, objects) pair for one tile task."""
    from repro.render.renderer import GaussianRayTracer

    tag = scene_field[0]
    if tag == SCENE_HIT:
        return cache.get(scene_field[1])
    if tag != SCENE_SHIP:
        raise ValueError(f"unknown scene field tag {tag!r}")
    _, key, (cloud, structure, config, objects, engine) = scene_field
    tracer = GaussianRayTracer(cloud, structure, config, engine=engine)
    entry = (tracer, objects)
    evicted = cache.touch(key, entry)
    if evicted is not None:
        flight.record(obs_events.EVICTION, "worker.scene_evict",
                      cache_size=len(cache))
    return entry


def execute_task(task, cache: SceneCacheMirror):
    """Run one task tuple; returns ``(value, cost_seconds)``.

    For tile tasks the cost covers only the tracing itself — one-time
    scene unpickling / tracer construction on a cold ship is excluded,
    so the cost-aware tile splitter sees steady-state per-tile costs,
    not setup noise attributed to whichever tile shipped the scene.
    """
    kind = task[0]
    if kind == TASK_TILE:
        _, task_id, scene_field, origins, directions, pixel_ids, keep = task
        tracer, objects = _resolve_tracer(scene_field, cache)
        started_ns = time.time_ns()
        started = time.perf_counter()
        value = tracer.trace_rays(origins, directions, pixel_ids,
                                  objects=objects, keep_traces=keep)
        cost = time.perf_counter() - started
        emit_span("worker.tile", started_ns, time.time_ns(),
                  task=task_id, rays=int(len(pixel_ids)))
        get_registry().observe("worker.tile_seconds", cost)
        return value, cost
    if kind == TASK_CALL:
        _, task_id, fn, args, kwargs = task
        started_ns = time.time_ns()
        started = time.perf_counter()
        value = fn(*args, **(kwargs or {}))
        cost = time.perf_counter() - started
        emit_span("worker.call", started_ns, time.time_ns(), task=task_id)
        get_registry().observe("worker.call_seconds", cost)
        return value, cost
    raise ValueError(f"unknown task kind {kind!r}")


class _UnpicklableResult:
    """Chaos stand-in for a task result whose pickling fails.

    Exercises the worker's result-send hardening: ``Connection.send``
    pickles before writing, so this raises cleanly with nothing partial
    on the wire.
    """

    def __init__(self, value) -> None:
        self.value = value

    def __reduce__(self):
        raise pickle.PicklingError("chaos: injected unpicklable result")


def _collect_obs_delta(trace_sink: BufferTraceSink) -> dict | None:
    """This task's observability delta: metrics + spans since last task.

    ``collect(reset=True)`` is exact here because the worker is
    single-threaded — nothing writes between the task finishing and the
    collect. Returns None when the task recorded nothing (the common
    wire stays one small tuple element).
    """
    delta = get_registry().collect(reset=True)
    events = trace_sink.drain()
    if events:
        delta["trace_events"] = events
    if not delta["counters"] and not delta["histograms"] and not events:
        return None
    return delta


def worker_main(worker_id: int, task_queue, result_conn,
                scene_cache_size: int = DEFAULT_SCENE_CACHE,
                flight_dir: str | None = None) -> None:
    """Process entry point: serve tasks until the shutdown sentinel.

    ``result_conn`` is this worker's *private* result pipe — one writer,
    no cross-process lock, so this worker dying mid-send can never wedge
    its siblings' results (see the executor module docstring).
    ``flight_dir`` is the parent's flight directory, passed explicitly
    so spawn-started workers (fresh module state) spool checkpoints
    where the parent will look for them; None means the recorder is off
    in the parent and stays off here.
    """
    cache = SceneCacheMirror(scene_cache_size)
    # Workers always buffer spans (a handful of dict appends per task);
    # the parent decides at fold-in time whether tracing is active and
    # drops the events otherwise. This sidesteps ever having to signal
    # tracing on/off across the process boundary.
    trace_sink = BufferTraceSink()
    install_sink(trace_sink)
    # Anything recorded at import/startup time belongs to no task; drop
    # it so the first result's delta covers only its own task. The
    # flight ring gets the same treatment: a forked child inherits the
    # parent's ring verbatim and must not re-report the parent's events.
    get_registry().collect(reset=True)
    if flight_dir is None:
        flight.configure(enabled=False)
    else:
        flight.configure(directory=flight_dir, enabled=True)
        flight.clear()
        flight.record(obs_events.STATE, "worker.start", worker=worker_id)
    while True:
        task = task_queue.get()
        if task is None:
            flight.record(obs_events.STATE, "worker.stop", worker=worker_id)
            # Clean shutdown leaves nothing to autopsy.
            flight.clear_worker_checkpoint(worker_id)
            return
        task_id = task[1]
        flight.record(obs_events.STATE, "worker.task_start",
                      worker=worker_id, task=task_id, task_kind=task[0])
        # Spool ring + metrics *before* executing: if this task SIGKILLs
        # the process, the checkpoint's last event is its task_start —
        # exactly what the doctor needs to name the killer.
        flight.checkpoint_worker(worker_id)
        directive = chaos.point("pool.worker.task")
        if directive is not None:
            # Re-spool so the chaos firing itself is in the autopsy: a
            # kill/hang directive never returns, and the doctor must be
            # able to tell a drilled death from an organic one.
            flight.checkpoint_worker(worker_id)
            chaos.execute("pool.worker.task", directive)
        try:
            value, cost = execute_task(task, cache)
        except BaseException as exc:  # ship, don't die: workers are shared
            flight.record(obs_events.ERROR, "worker.task_error",
                          worker=worker_id, task=task_id, error=repr(exc))
            try:
                result_conn.send((RESULT_ERROR, worker_id, task_id,
                                  repr(exc), traceback.format_exc(),
                                  _collect_obs_delta(trace_sink)))
            except OSError:
                return  # parent is gone; nothing left to report to
            continue
        flight.record(obs_events.COMPLETE, "worker.task_done",
                      worker=worker_id, task=task_id)
        if chaos.point("pool.worker.result") == "unpicklable":
            value = _UnpicklableResult(value)
        delta = _collect_obs_delta(trace_sink)
        try:
            result_conn.send((RESULT_OK, worker_id, task_id, value, cost,
                              delta))
        except OSError:
            return
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            # An unpicklable result must not kill a shared worker:
            # Connection.send pickles the whole tuple before writing a
            # byte, so the pipe is still clean — report the failure as
            # a task error instead of dying with the result.
            flight.record(obs_events.ERROR, "worker.result_unpicklable",
                          worker=worker_id, task=task_id, error=repr(exc))
            get_registry().add("worker.result_pickle_errors")
            try:
                result_conn.send((RESULT_ERROR, worker_id, task_id,
                                  f"result not picklable: {exc!r}",
                                  traceback.format_exc(),
                                  _collect_obs_delta(trace_sink)))
            except OSError:
                return
