"""Work-stealing task placement for the worker pool.

The scheduler is a pure in-parent data structure: one deque of pending
task ids per worker, plus the placement and stealing policy. The
:class:`~repro.pool.executor.WorkerPool` dispatcher consults it under its
own lock, so nothing here is thread-safe on its own — and nothing here
touches processes, which keeps the policy unit-testable in isolation.

Placement is locality-aware: tasks carrying the same ``affinity`` key go
to the same *home* worker (chosen least-loaded on first sight), so
repeated frames of one scene keep hitting the worker that already holds
the scene in its cache. Tasks without affinity go to the least-loaded
deque. Balance is restored by stealing, not by placement: when a worker
runs dry it takes half the richest victim's backlog (classic
steal-half-on-idle, taken from the *back* of the victim's deque where the
least-local work sits).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable


class StealingScheduler:
    """Per-worker pending deques with affinity placement and stealing."""

    def __init__(self, n_workers: int, stealing: bool = True) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._deques: list[deque] = [deque() for _ in range(n_workers)]
        self._homes: dict[Hashable, int] = {}
        self._rr = 0
        self.stealing = stealing
        self.steals = 0
        self.stolen_tasks = 0
        self.placed = 0

    @property
    def n_workers(self) -> int:
        return len(self._deques)

    def depth(self, worker: int) -> int:
        return len(self._deques[worker])

    def total_pending(self) -> int:
        return sum(len(d) for d in self._deques)

    def _least_loaded(self) -> int:
        depths = [len(d) for d in self._deques]
        best = min(depths)
        candidates = [i for i, d in enumerate(depths) if d == best]
        # Round-robin among ties so affinity-free bursts stripe evenly
        # instead of piling onto worker 0.
        choice = candidates[self._rr % len(candidates)]
        self._rr += 1
        return choice

    def place(self, task_id: int, affinity: Hashable | None = None) -> int:
        """Queue a task; returns the worker it was placed on."""
        if affinity is None:
            worker = self._least_loaded()
        else:
            worker = self._homes.get(affinity)
            if worker is None:
                worker = self._homes[affinity] = self._least_loaded()
        self._deques[worker].append(task_id)
        self.placed += 1
        return worker

    def next_for(self, worker: int) -> int | None:
        """The next task for an idle worker: own deque, else steal.

        Stealing takes ``ceil(n/2)`` tasks from the back of the richest
        other deque, keeps them on the thief's deque in their original
        relative order, and returns the first.
        """
        own = self._deques[worker]
        if own:
            return own.popleft()
        if not self.stealing:
            return None
        victim = None
        richest = 0
        for i, d in enumerate(self._deques):
            if i != worker and len(d) > richest:
                victim, richest = i, len(d)
        if victim is None:
            return None
        take = (richest + 1) // 2
        batch = [self._deques[victim].pop() for _ in range(take)]
        batch.reverse()
        own.extend(batch)
        self.steals += 1
        self.stolen_tasks += take
        return own.popleft()

    def drain_worker(self, worker: int) -> list[int]:
        """Remove and return every task pending on one worker's deque
        (crash recovery: the executor re-places them elsewhere)."""
        drained = list(self._deques[worker])
        self._deques[worker].clear()
        # Re-home affinities pointing at the drained worker so future
        # placements don't keep feeding a freshly-respawned (cold) cache.
        for key, home in list(self._homes.items()):
            if home == worker:
                del self._homes[key]
        return drained

    def remove(self, task_id: int) -> bool:
        """Withdraw a not-yet-dispatched task (used on pool shutdown)."""
        for d in self._deques:
            try:
                d.remove(task_id)
                return True
            except ValueError:
                continue
        return False
