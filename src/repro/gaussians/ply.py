"""3DGS-standard PLY serialization for Gaussian clouds.

The reference 3DGS implementation checkpoints scenes as binary
little-endian PLY files with one vertex per Gaussian and per-vertex float
properties named::

    x y z                      -- mean
    f_dc_0..2                  -- SH degree-0 (DC) coefficients, RGB
    f_rest_0..(3*(c-1)-1)      -- higher-order SH, channel-major
    opacity                    -- inverse-sigmoid (logit) of opacity
    scale_0..2                 -- log of the per-axis scales
    rot_0..3                   -- quaternion (wxyz)

Tools across the 3DGS ecosystem (viewers, converters, 3DGRT itself)
exchange scenes in exactly this layout, so this module lets the
reproduction ingest real trained checkpoints and emit clouds other tools
can open. The npz format in :meth:`GaussianCloud.save` remains the fast
internal path.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.gaussians.cloud import GaussianCloud

_HEADER_TEMPLATE = """ply
format binary_little_endian 1.0
element vertex {count}
{properties}
end_header
"""


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _logit(p: np.ndarray) -> np.ndarray:
    p = np.clip(p, 1e-7, 1.0 - 1e-7)
    return np.log(p / (1.0 - p))


def _property_names(sh_coeffs: int) -> list[str]:
    names = ["x", "y", "z"]
    names += [f"f_dc_{i}" for i in range(3)]
    names += [f"f_rest_{i}" for i in range(3 * (sh_coeffs - 1))]
    names += ["opacity"]
    names += [f"scale_{i}" for i in range(3)]
    names += [f"rot_{i}" for i in range(4)]
    return names


def save_ply(cloud: GaussianCloud, path: str | Path) -> None:
    """Write a cloud as a 3DGS-convention binary PLY."""
    n = len(cloud)
    sh_coeffs = cloud.sh.shape[1]
    names = _property_names(sh_coeffs)
    properties = "\n".join(f"property float {name}" for name in names)
    header = _HEADER_TEMPLATE.format(count=n, properties=properties)

    # f_rest is channel-major in the reference implementation:
    # all R coefficients, then all G, then all B.
    f_rest = cloud.sh[:, 1:, :].transpose(0, 2, 1).reshape(n, -1)
    rows = np.concatenate(
        [
            cloud.means,
            cloud.sh[:, 0, :],
            f_rest,
            _logit(cloud.opacities)[:, None],
            np.log(cloud.scales),
            cloud.rotations,
        ],
        axis=1,
    ).astype("<f4")
    with open(Path(path), "wb") as handle:
        handle.write(header.encode("ascii"))
        handle.write(rows.tobytes())


def load_ply(path: str | Path, kappa: float = 3.0, name: str | None = None) -> GaussianCloud:
    """Read a 3DGS-convention binary PLY into a :class:`GaussianCloud`."""
    path = Path(path)
    with open(path, "rb") as handle:
        data = handle.read()

    end = data.find(b"end_header\n")
    if end < 0:
        raise ValueError(f"{path}: not a PLY file (no end_header)")
    header = data[:end].decode("ascii", errors="replace").splitlines()
    body = data[end + len(b"end_header\n"):]

    if not header or header[0].strip() != "ply":
        raise ValueError(f"{path}: missing ply magic")
    if not any("binary_little_endian" in line for line in header):
        raise ValueError(f"{path}: only binary_little_endian PLY is supported")

    count = None
    names: list[str] = []
    for line in header:
        parts = line.split()
        if parts[:2] == ["element", "vertex"]:
            count = int(parts[2])
        elif parts and parts[0] == "property":
            if parts[1] != "float":
                raise ValueError(f"{path}: non-float property {parts[-1]!r}")
            names.append(parts[2])
    if count is None:
        raise ValueError(f"{path}: no vertex element")

    expected_bytes = count * len(names) * 4
    if len(body) < expected_bytes:
        raise ValueError(f"{path}: truncated body ({len(body)} < {expected_bytes} bytes)")
    rows = np.frombuffer(body[:expected_bytes], dtype="<f4").reshape(count, len(names))
    col = {prop: i for i, prop in enumerate(names)}

    required = ["x", "y", "z", "f_dc_0", "opacity", "scale_0", "rot_0"]
    for prop in required:
        if prop not in col:
            raise ValueError(f"{path}: missing property {prop!r}")

    means = rows[:, [col["x"], col["y"], col["z"]]].astype(np.float64)
    dc = rows[:, [col["f_dc_0"], col["f_dc_1"], col["f_dc_2"]]].astype(np.float64)

    n_rest = sum(1 for prop in names if prop.startswith("f_rest_"))
    if n_rest % 3:
        raise ValueError(f"{path}: f_rest count {n_rest} is not divisible by 3")
    rest_coeffs = n_rest // 3
    sh = np.zeros((count, rest_coeffs + 1, 3))
    sh[:, 0, :] = dc
    if rest_coeffs:
        rest = rows[:, [col[f"f_rest_{i}"] for i in range(n_rest)]].astype(np.float64)
        sh[:, 1:, :] = rest.reshape(count, 3, rest_coeffs).transpose(0, 2, 1)

    opacities = _sigmoid(rows[:, col["opacity"]].astype(np.float64))
    scales = np.exp(rows[:, [col["scale_0"], col["scale_1"], col["scale_2"]]].astype(np.float64))
    rotations = rows[:, [col[f"rot_{i}"] for i in range(4)]].astype(np.float64)

    return GaussianCloud(
        means=means,
        scales=scales,
        rotations=rotations,
        opacities=opacities,
        sh=sh,
        kappa=kappa,
        name=name or path.stem,
    )
