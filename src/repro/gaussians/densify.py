"""Adaptive density control (clone / split / prune) for Gaussian scenes.

3DGS interleaves optimization with density control: Gaussians that move a
lot are duplicated (under-reconstruction) or split (over-reconstruction),
and Gaussians with negligible opacity are pruned. The reference
implementation keys on view-space positional gradients; our training
substrate freezes geometry, so we key on the statistics the ray tracer
already produces — per-Gaussian blend contribution — which identify the
same populations: heavy contributors that are too coarse (split), small
heavy contributors (clone), and Gaussians that never contribute (prune).

Density control matters to GRTX because it sets the Gaussian count and
size distribution that the acceleration structures index; the densify
example demonstrates rebuilding the TLAS after each control round (a
rebuild is required — density control changes primitive count, which
refit cannot absorb).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.cloud import GaussianCloud
from repro.math3d import quat_to_rotation_matrix


@dataclass
class ContributionStats:
    """Per-Gaussian blending statistics across a set of rendered views."""

    blend_count: np.ndarray  # rays that blended each Gaussian
    weight_sum: np.ndarray  # accumulated alpha contribution

    @classmethod
    def empty(cls, n: int) -> "ContributionStats":
        return cls(
            blend_count=np.zeros(n, dtype=np.int64),
            weight_sum=np.zeros(n, dtype=np.float64),
        )

    def absorb(self, blend_records: list[tuple[int, float, float]] | None) -> None:
        """Fold one ray's blend list (``record_blended`` output) in."""
        if not blend_records:
            return
        for gid, alpha, _t in blend_records:
            self.blend_count[gid] += 1
            self.weight_sum[gid] += alpha

    @property
    def mean_weight(self) -> np.ndarray:
        """Average alpha contributed per blending ray (0 if never blended)."""
        with np.errstate(invalid="ignore"):
            mean = self.weight_sum / np.maximum(self.blend_count, 1)
        return np.where(self.blend_count > 0, mean, 0.0)


def collect_stats(cloud: GaussianCloud, cameras: list, k: int = 8) -> ContributionStats:
    """Render each camera with blend recording and fold the statistics."""
    from repro.bvh.two_level import build_two_level
    from repro.rt.shading import SceneShading
    from repro.rt.tracer import TraceConfig, Tracer

    structure = build_two_level(cloud, "sphere")
    tracer = Tracer(structure, SceneShading(cloud), TraceConfig(k=k, record_blended=True))
    stats = ContributionStats.empty(len(cloud))
    for camera in cameras:
        bundle = camera.generate_rays()
        for i in range(len(bundle)):
            outcome = tracer.trace_ray(bundle.origins[i], bundle.directions[i])
            stats.absorb(outcome.blend_records)
    return stats


@dataclass(frozen=True)
class DensifyParams:
    """Thresholds for one adaptive-density-control round."""

    #: Gaussians with opacity below this are pruned (3DGS uses 0.005).
    opacity_floor: float = 0.005
    #: Gaussians never blended by any training ray are pruned.
    prune_unseen: bool = True
    #: Heavy contributors whose largest scale exceeds this quantile of
    #: the scene's scale distribution are split (over-reconstruction).
    split_scale_quantile: float = 0.9
    #: Heavy contributors below the split size are cloned
    #: (under-reconstruction).
    clone_weight_quantile: float = 0.9
    #: Scale shrink factor applied to both halves of a split (3DGS: 1.6).
    split_shrink: float = 1.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.opacity_floor < 1.0:
            raise ValueError("opacity_floor must be in [0, 1)")
        if not 0.0 < self.split_scale_quantile <= 1.0:
            raise ValueError("split_scale_quantile must be in (0, 1]")
        if self.split_shrink <= 1.0:
            raise ValueError("split_shrink must exceed 1")


@dataclass(frozen=True)
class DensifyOutcome:
    """What one control round did."""

    cloud: GaussianCloud
    pruned: int
    split: int
    cloned: int

    @property
    def delta(self) -> int:
        """Net change in Gaussian count."""
        return self.split + self.cloned - self.pruned


def prune(cloud: GaussianCloud, keep: np.ndarray) -> GaussianCloud:
    """Drop all Gaussians not selected by the boolean ``keep`` mask."""
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != (len(cloud),):
        raise ValueError("keep mask must have one entry per Gaussian")
    if not keep.any():
        raise ValueError("pruning would remove every Gaussian")
    return cloud.subset(np.nonzero(keep)[0])


def split(cloud: GaussianCloud, ids: np.ndarray, shrink: float = 1.6) -> GaussianCloud:
    """Split the selected Gaussians in two along their major axis.

    Each selected Gaussian is replaced by two copies offset by one
    standard deviation along its largest principal axis, with all scales
    shrunk by ``shrink`` — the 3DGS split rule.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return cloud
    major = np.argmax(cloud.scales[ids], axis=1)
    rot = quat_to_rotation_matrix(cloud.rotations[ids])
    axis_world = rot[np.arange(ids.size), :, major]
    sigma = cloud.scales[ids, major][:, None] * axis_world

    keep_mask = np.ones(len(cloud), dtype=bool)
    keep_mask[ids] = False
    base = cloud.subset(np.nonzero(keep_mask)[0])

    halves = GaussianCloud(
        means=np.concatenate([cloud.means[ids] + sigma, cloud.means[ids] - sigma]),
        scales=np.tile(cloud.scales[ids] / shrink, (2, 1)),
        rotations=np.tile(cloud.rotations[ids], (2, 1)),
        opacities=np.tile(cloud.opacities[ids], 2),
        sh=np.tile(cloud.sh[ids], (2, 1, 1)),
        kappa=cloud.kappa,
        name=cloud.name,
    )
    return base.concatenate(halves)


def clone(cloud: GaussianCloud, ids: np.ndarray) -> GaussianCloud:
    """Duplicate the selected Gaussians in place (3DGS clone rule)."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return cloud
    return cloud.concatenate(cloud.subset(ids))


def densify_round(
    cloud: GaussianCloud,
    stats: ContributionStats,
    params: DensifyParams | None = None,
) -> DensifyOutcome:
    """Run one prune / split / clone round driven by blend statistics."""
    params = params or DensifyParams()
    if stats.blend_count.shape != (len(cloud),):
        raise ValueError("stats do not match the cloud")

    keep = cloud.opacities >= params.opacity_floor
    if params.prune_unseen:
        keep &= stats.blend_count > 0
    if not keep.any():
        keep = cloud.opacities >= params.opacity_floor  # never empty the scene
    pruned = int((~keep).sum())
    kept_ids = np.nonzero(keep)[0]
    working = cloud.subset(kept_ids)
    weights = stats.mean_weight[kept_ids]

    heavy_cut = np.quantile(weights, params.clone_weight_quantile) if len(weights) else 1.0
    heavy = weights >= max(heavy_cut, 1e-6)
    max_scale = working.scales.max(axis=1)
    scale_cut = np.quantile(max_scale, params.split_scale_quantile)

    split_ids = np.nonzero(heavy & (max_scale >= scale_cut))[0]
    clone_ids = np.nonzero(heavy & (max_scale < scale_cut))[0]

    working = split(working, split_ids, params.split_shrink)
    # Split re-orders ids; clones were all below the scale cut, and split
    # removed only above-cut Gaussians that occupied positions before the
    # appended halves — recompute clone positions against the new cloud.
    if clone_ids.size:
        keep_positions = np.ones(len(kept_ids), dtype=bool)
        keep_positions[split_ids] = False
        remap = np.cumsum(keep_positions) - 1
        working = clone(working, remap[clone_ids])

    return DensifyOutcome(
        cloud=working,
        pruned=pruned,
        split=int(split_ids.size),
        cloned=int(clone_ids.size),
    )
