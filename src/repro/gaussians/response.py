"""Gaussian response along a ray (the paper's alpha evaluation).

3DGRT does not intersect the Gaussian *surface*; it evaluates the Gaussian
density at the point of maximum response along the ray:

    t_alpha = ((mu - r_o)^T Sigma^-1 r_d) / (r_d^T Sigma^-1 r_d)
    alpha   = o * G(r_o + t_alpha * r_d)

where ``G(x) = exp(-0.5 (x - mu)^T Sigma^-1 (x - mu))``. This module
implements those formulas in batched form; they feed both the any-hit
shading path and the rasterizer cross-check.
"""

from __future__ import annotations

import numpy as np


def t_alpha(
    inv_cov: np.ndarray,
    means: np.ndarray,
    origins: np.ndarray,
    directions: np.ndarray,
) -> np.ndarray:
    """Parametric distance of maximum Gaussian response along each ray.

    All arguments are batched per (Gaussian, ray) pair: ``inv_cov`` is
    ``(n, 3, 3)``, the others ``(n, 3)``. Returns ``(n,)`` t values.
    """
    diff = np.asarray(means, dtype=np.float64) - np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    sigma_d = np.einsum("nij,nj->ni", inv_cov, directions)
    numer = np.einsum("ni,ni->n", diff, sigma_d)
    denom = np.einsum("ni,ni->n", directions, sigma_d)
    # Degenerate directions (zero-length) produce denom == 0; place the
    # evaluation at the origin so the response is simply G(r_o).
    safe = np.where(np.abs(denom) > 1e-30, denom, 1.0)
    out = numer / safe
    return np.where(np.abs(denom) > 1e-30, out, 0.0)


def gaussian_response(
    inv_cov: np.ndarray,
    means: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    """Unnormalized Gaussian density ``G(x)`` at world points.

    ``inv_cov`` is ``(n, 3, 3)``, ``means`` and ``points`` are ``(n, 3)``.
    """
    diff = np.asarray(points, dtype=np.float64) - np.asarray(means, dtype=np.float64)
    mahal = np.einsum("ni,nij,nj->n", diff, inv_cov, diff)
    return np.exp(-0.5 * mahal)


def gaussian_alpha_along_ray(
    inv_cov: np.ndarray,
    means: np.ndarray,
    opacities: np.ndarray,
    origins: np.ndarray,
    directions: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Alpha of each Gaussian along each ray, plus the evaluation t.

    Returns ``(alpha, t_eval)``. ``alpha = o * G(r_o + t_eval r_d)`` with
    ``t_eval = t_alpha`` — the paper's blending equation (Section II-B).
    """
    t_eval = t_alpha(inv_cov, means, origins, directions)
    points = np.asarray(origins, dtype=np.float64) + t_eval[:, None] * np.asarray(
        directions, dtype=np.float64
    )
    response = gaussian_response(inv_cov, means, points)
    alpha = np.asarray(opacities, dtype=np.float64) * response
    return alpha, t_eval
