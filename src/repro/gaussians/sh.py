"""Real spherical harmonics for view-dependent Gaussian color.

3DGRT evaluates the SH basis per *ray* (using the ray direction) rather
than per splat, which is one of the runtime costs the paper's blending
stage carries. We implement the standard real SH basis up to degree 3,
matching the coefficient layout of the 3DGS reference implementation.
"""

from __future__ import annotations

import numpy as np

# Real SH normalization constants (same values as the 3DGS CUDA kernels).
_C0 = 0.28209479177387814
_C1 = 0.4886025119029199
_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
_C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)

MAX_SH_DEGREE = 3


def num_sh_coeffs(degree: int) -> int:
    """Number of SH basis functions for a given degree: ``(d + 1)^2``."""
    if degree < 0 or degree > MAX_SH_DEGREE:
        raise ValueError(f"SH degree must be in [0, {MAX_SH_DEGREE}], got {degree}")
    return (degree + 1) ** 2


def sh_basis(directions: np.ndarray, degree: int) -> np.ndarray:
    """Evaluate the real SH basis for unit directions.

    Parameters
    ----------
    directions:
        ``(n, 3)`` unit vectors.
    degree:
        Maximum SH band (0..3).

    Returns
    -------
    ``(n, (degree + 1)^2)`` basis values in 3DGS coefficient order.
    """
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    n = directions.shape[0]
    coeffs = num_sh_coeffs(degree)
    basis = np.empty((n, coeffs), dtype=np.float64)
    basis[:, 0] = _C0
    if degree >= 1:
        x, y, z = directions[:, 0], directions[:, 1], directions[:, 2]
        basis[:, 1] = -_C1 * y
        basis[:, 2] = _C1 * z
        basis[:, 3] = -_C1 * x
    if degree >= 2:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        basis[:, 4] = _C2[0] * xy
        basis[:, 5] = _C2[1] * yz
        basis[:, 6] = _C2[2] * (2.0 * zz - xx - yy)
        basis[:, 7] = _C2[3] * xz
        basis[:, 8] = _C2[4] * (xx - yy)
    if degree >= 3:
        basis[:, 9] = _C3[0] * y * (3.0 * xx - yy)
        basis[:, 10] = _C3[1] * xy * z
        basis[:, 11] = _C3[2] * y * (4.0 * zz - xx - yy)
        basis[:, 12] = _C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
        basis[:, 13] = _C3[4] * x * (4.0 * zz - xx - yy)
        basis[:, 14] = _C3[5] * z * (xx - yy)
        basis[:, 15] = _C3[6] * x * (xx - 3.0 * yy)
    return basis


def eval_sh(sh_coeffs: np.ndarray, directions: np.ndarray) -> np.ndarray:
    """Evaluate view-dependent RGB colors from SH coefficients.

    Parameters
    ----------
    sh_coeffs:
        ``(n, c, 3)`` coefficients for ``n`` Gaussians.
    directions:
        ``(n, 3)`` unit view directions, one per Gaussian (the ray
        direction at evaluation time).

    Returns
    -------
    ``(n, 3)`` RGB colors, clipped to be non-negative (the 0.5 DC offset
    convention of 3DGS is applied here).
    """
    sh_coeffs = np.asarray(sh_coeffs, dtype=np.float64)
    coeffs = sh_coeffs.shape[1]
    degree = int(round(np.sqrt(coeffs))) - 1
    basis = sh_basis(directions, degree)
    color = np.einsum("nc,ncd->nd", basis, sh_coeffs) + 0.5
    return np.clip(color, 0.0, None)
