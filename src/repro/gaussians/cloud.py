"""The GaussianCloud container.

Struct-of-arrays layout: one numpy array per attribute, indexed by Gaussian
id. This mirrors how 3DGS checkpoints store scenes and keeps every
downstream kernel (covariance assembly, BVH build, blending) vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.math3d import quat_normalize


@dataclass
class GaussianCloud:
    """A trained 3D Gaussian scene.

    Attributes
    ----------
    means:
        ``(n, 3)`` Gaussian centers (world space).
    scales:
        ``(n, 3)`` per-axis standard deviations of each Gaussian. The
        renderable ellipsoid extends ``kappa`` standard deviations along
        each axis (3DGRT uses a ~3-sigma cutoff).
    rotations:
        ``(n, 4)`` unit quaternions, ``wxyz`` order.
    opacities:
        ``(n,)`` opacity ``o`` in ``(0, 1]``.
    sh:
        ``(n, c, 3)`` spherical-harmonics RGB coefficients, where ``c`` is
        ``(degree + 1)^2``.
    kappa:
        Standard-deviation cutoff defining the bounding ellipsoid.
    """

    means: np.ndarray
    scales: np.ndarray
    rotations: np.ndarray
    opacities: np.ndarray
    sh: np.ndarray
    kappa: float = 3.0
    name: str = field(default="scene")

    def __post_init__(self) -> None:
        self.means = np.ascontiguousarray(self.means, dtype=np.float64)
        self.scales = np.ascontiguousarray(self.scales, dtype=np.float64)
        self.rotations = quat_normalize(np.ascontiguousarray(self.rotations, dtype=np.float64))
        self.opacities = np.ascontiguousarray(self.opacities, dtype=np.float64)
        self.sh = np.ascontiguousarray(self.sh, dtype=np.float64)
        n = self.means.shape[0]
        if self.means.shape != (n, 3):
            raise ValueError(f"means must be (n, 3), got {self.means.shape}")
        if self.scales.shape != (n, 3):
            raise ValueError(f"scales must be (n, 3), got {self.scales.shape}")
        if self.rotations.shape != (n, 4):
            raise ValueError(f"rotations must be (n, 4), got {self.rotations.shape}")
        if self.opacities.shape != (n,):
            raise ValueError(f"opacities must be (n,), got {self.opacities.shape}")
        if self.sh.ndim != 3 or self.sh.shape[0] != n or self.sh.shape[2] != 3:
            raise ValueError(f"sh must be (n, c, 3), got {self.sh.shape}")
        if np.any(self.scales <= 0.0):
            raise ValueError("scales must be strictly positive")
        if np.any((self.opacities <= 0.0) | (self.opacities > 1.0)):
            raise ValueError("opacities must lie in (0, 1]")
        if self.kappa <= 0.0:
            raise ValueError("kappa must be positive")

    def __len__(self) -> int:
        return self.means.shape[0]

    @property
    def sh_degree(self) -> int:
        """Spherical-harmonics degree implied by the coefficient count."""
        coeffs = self.sh.shape[1]
        degree = int(round(np.sqrt(coeffs))) - 1
        if (degree + 1) ** 2 != coeffs:
            raise ValueError(f"sh coefficient count {coeffs} is not a square")
        return degree

    def subset(self, indices: np.ndarray) -> "GaussianCloud":
        """Return a new cloud containing only the selected Gaussians."""
        indices = np.asarray(indices)
        return GaussianCloud(
            means=self.means[indices],
            scales=self.scales[indices],
            rotations=self.rotations[indices],
            opacities=self.opacities[indices],
            sh=self.sh[indices],
            kappa=self.kappa,
            name=self.name,
        )

    def concatenate(self, other: "GaussianCloud") -> "GaussianCloud":
        """Merge two clouds (used when injecting extra scene objects)."""
        if abs(self.kappa - other.kappa) > 1e-9:
            raise ValueError("cannot concatenate clouds with different kappa")
        if self.sh.shape[1] != other.sh.shape[1]:
            raise ValueError("cannot concatenate clouds with different SH degree")
        return GaussianCloud(
            means=np.concatenate([self.means, other.means]),
            scales=np.concatenate([self.scales, other.scales]),
            rotations=np.concatenate([self.rotations, other.rotations]),
            opacities=np.concatenate([self.opacities, other.opacities]),
            sh=np.concatenate([self.sh, other.sh]),
            kappa=self.kappa,
            name=self.name,
        )

    def save(self, path: str | Path) -> None:
        """Serialize to a compressed ``.npz`` archive."""
        np.savez_compressed(
            Path(path),
            means=self.means,
            scales=self.scales,
            rotations=self.rotations,
            opacities=self.opacities,
            sh=self.sh,
            kappa=np.float64(self.kappa),
            name=np.array(self.name),
        )

    @classmethod
    def load(cls, path: str | Path) -> "GaussianCloud":
        """Load a cloud previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            return cls(
                means=data["means"],
                scales=data["scales"],
                rotations=data["rotations"],
                opacities=data["opacities"],
                sh=data["sh"],
                kappa=float(data["kappa"]),
                name=str(data["name"]),
            )
