"""Procedural stand-ins for the paper's six trained scenes.

The paper evaluates on Train, Truck (Tanks&Temples), Bonsai, Room
(Mip-NeRF 360), Drjohnson and Playroom (Deep Blending) — trained 3DGRT
models with 0.76M-2.43M Gaussians that we cannot train offline. What the
GRTX results actually depend on is the *spatial statistics* of those
scenes, which the paper itself calls out:

* Bonsai: "numerous small Gaussians concentrated in specific regions"
  (dense clusters -> deep traversal for rays through them, high
  leaf-to-total node access ratio);
* Train/Truck: "Gaussians distributed more uniformly across the scene"
  (outdoor spread, shallower traversal per ray);
* Drjohnson/Playroom: "large Gaussians (e.g., the walls)" whose huge
  overlapping AABBs force deep traversal even for misses, which is what
  GRTX-HW's checkpointing exploits.

Each :class:`SceneSpec` mixes four building blocks with per-scene weights:
a uniform volume, compact dense clusters, large flat wall panels and a
ground sheet. All randomness flows from one seed, so scenes are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.sh import num_sh_coeffs
from repro.math3d import quat_random

#: Scale factor from the paper's Gaussian counts to our default counts.
#: Pure-Python simulation of millions of Gaussians is intractable; 1/100
#: preserves relative densities between scenes (see EXPERIMENTS.md).
DEFAULT_SCALE = 1.0 / 100.0


@dataclass(frozen=True)
class SceneSpec:
    """Recipe for one synthetic workload.

    The mixture weights (``uniform_frac``, ``cluster_frac``, ``wall_frac``,
    ``ground_frac``) must sum to 1 and control which structural regime the
    scene falls into. Scales are expressed relative to ``extent``.
    """

    name: str
    paper_gaussians: int
    extent: float
    uniform_frac: float
    cluster_frac: float
    wall_frac: float
    ground_frac: float
    n_clusters: int
    cluster_radius: float
    small_scale: tuple[float, float]
    large_scale: tuple[float, float]
    anisotropy: float
    indoor: bool
    native_resolution: tuple[int, int]
    seed: int

    def __post_init__(self) -> None:
        total = self.uniform_frac + self.cluster_frac + self.wall_frac + self.ground_frac
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: mixture fractions sum to {total}, expected 1")

    def count_at_scale(self, scale: float = DEFAULT_SCALE) -> int:
        """Gaussian count after applying the global down-scale factor."""
        return max(64, int(round(self.paper_gaussians * scale)))


def _sample_scales(
    rng: np.random.Generator,
    n: int,
    scale_range: tuple[float, float],
    anisotropy: float,
    extent: float,
) -> np.ndarray:
    """Log-uniform isotropic size, then per-axis anisotropic stretch.

    3DGS-trained scenes have heavy-tailed, strongly anisotropic scale
    distributions; log-uniform base sizes with log-normal axis jitter is a
    standard synthetic approximation.
    """
    lo, hi = scale_range
    base = np.exp(rng.uniform(np.log(lo * extent), np.log(hi * extent), size=n))
    stretch = np.exp(rng.normal(0.0, anisotropy, size=(n, 3)))
    return base[:, None] * stretch


def _wall_scales(rng: np.random.Generator, n: int, spec: SceneSpec) -> np.ndarray:
    """Flat panels: two long axes, one thin axis (walls / floors)."""
    lo, hi = spec.large_scale
    major = np.exp(rng.uniform(np.log(lo * spec.extent), np.log(hi * spec.extent), size=(n, 2)))
    minor = major.mean(axis=1, keepdims=True) * rng.uniform(0.02, 0.08, size=(n, 1))
    return np.concatenate([major, minor], axis=1)


def size_boost(scale: float) -> float:
    """Gaussian size multiplier preserving optical density under scaling.

    When the Gaussian count is reduced by ``scale``, each Gaussian must
    grow so that a ray still crosses a paper-like number of primitives
    (hundreds intersected, dozens blended before early termination —
    without this, scaled-down scenes are optically thin, rays exhaust the
    scene in one k-buffer round, and the multi-round redundancy that
    GRTX-HW attacks never materializes). The 0.2 exponent was calibrated
    so that per-ray blended/intersected counts at 1/400 scale match the
    regime the paper's Figures 6-7 imply.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    return float(scale ** -0.2)


def make_scene(
    spec: SceneSpec,
    scale: float = DEFAULT_SCALE,
    sh_degree: int = 1,
    seed: int | None = None,
) -> GaussianCloud:
    """Generate the synthetic Gaussian cloud for one workload spec.

    ``seed`` overrides the spec's baked-in seed. All randomness flows from
    this one value, so (spec, scale, sh_degree, seed) fully determines the
    cloud bit-for-bit — the property the serving frame cache relies on.
    """
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    n = spec.count_at_scale(scale)
    extent = spec.extent

    n_cluster = int(round(n * spec.cluster_frac))
    n_wall = int(round(n * spec.wall_frac))
    n_ground = int(round(n * spec.ground_frac))
    n_uniform = n - n_cluster - n_wall - n_ground

    means_parts: list[np.ndarray] = []
    scales_parts: list[np.ndarray] = []

    # Uniform volume component (outdoor spread / room clutter).
    if n_uniform > 0:
        means_parts.append(rng.uniform(-extent, extent, size=(n_uniform, 3)))
        scales_parts.append(
            _sample_scales(rng, n_uniform, spec.small_scale, spec.anisotropy, extent)
        )

    # Dense compact clusters (Bonsai's foliage, object detail).
    if n_cluster > 0:
        centers = rng.uniform(-0.5 * extent, 0.5 * extent, size=(spec.n_clusters, 3))
        assignment = rng.integers(0, spec.n_clusters, size=n_cluster)
        offsets = rng.normal(0.0, spec.cluster_radius * extent, size=(n_cluster, 3))
        means_parts.append(centers[assignment] + offsets)
        tight_range = (spec.small_scale[0] * 0.5, spec.small_scale[1] * 0.5)
        scales_parts.append(_sample_scales(rng, n_cluster, tight_range, spec.anisotropy, extent))

    # Large flat wall panels (Drjohnson/Playroom interiors).
    if n_wall > 0:
        side = rng.integers(0, 4, size=n_wall)
        walls = rng.uniform(-extent, extent, size=(n_wall, 3))
        walls[side == 0, 0] = -extent
        walls[side == 1, 0] = extent
        walls[side == 2, 1] = -extent
        walls[side == 3, 1] = extent
        means_parts.append(walls)
        scales_parts.append(_wall_scales(rng, n_wall, spec))

    # Ground sheet.
    if n_ground > 0:
        ground = rng.uniform(-extent, extent, size=(n_ground, 3))
        ground[:, 2] = -extent + rng.uniform(0.0, 0.05 * extent, size=n_ground)
        g_scales = _sample_scales(rng, n_ground, spec.large_scale, spec.anisotropy * 0.5, extent)
        g_scales[:, 2] *= 0.1
        means_parts.append(ground)
        scales_parts.append(g_scales)

    means = np.concatenate(means_parts, axis=0)
    scales = np.concatenate(scales_parts, axis=0) * size_boost(scale)
    rotations = quat_random(n, rng)

    # Opacity statistics matter a lot for the paper's results: trained
    # 3DGS scenes are dominated by low-opacity Gaussians, so a ray blends
    # dozens of them across several k-buffer rounds before early ray
    # termination — that is the redundancy regime Figure 7 measures.
    # Volume Gaussians are mostly translucent; wall/ground panels are
    # much more opaque.
    opacities = np.clip(rng.beta(1.2, 8.0, size=n), 0.01, 1.0)
    n_solid = n_wall + n_ground
    if n_solid > 0:
        opacities[n - n_solid :] = np.clip(rng.beta(4.0, 2.0, size=n_solid), 0.05, 1.0)

    coeffs = num_sh_coeffs(sh_degree)
    sh = rng.normal(0.0, 0.15, size=(n, coeffs, 3))
    sh[:, 0, :] = rng.uniform(-0.5, 1.2, size=(n, 3))

    return GaussianCloud(
        means=means,
        scales=scales,
        rotations=rotations,
        opacities=opacities,
        sh=sh,
        name=spec.name,
    )


def _spec(**kwargs) -> SceneSpec:
    return SceneSpec(**kwargs)


#: The six evaluation workloads, Table II of the paper.
WORKLOAD_SPECS: dict[str, SceneSpec] = {
    "train": _spec(
        name="train",
        paper_gaussians=1_460_000,
        extent=10.0,
        uniform_frac=0.62,
        cluster_frac=0.10,
        wall_frac=0.08,
        ground_frac=0.20,
        n_clusters=6,
        cluster_radius=0.05,
        small_scale=(0.002, 0.02),
        large_scale=(0.05, 0.20),
        anisotropy=0.6,
        indoor=False,
        native_resolution=(980, 545),
        seed=101,
    ),
    "truck": _spec(
        name="truck",
        paper_gaussians=2_430_000,
        extent=12.0,
        uniform_frac=0.66,
        cluster_frac=0.08,
        wall_frac=0.06,
        ground_frac=0.20,
        n_clusters=5,
        cluster_radius=0.06,
        small_scale=(0.002, 0.02),
        large_scale=(0.05, 0.20),
        anisotropy=0.6,
        indoor=False,
        native_resolution=(979, 546),
        seed=102,
    ),
    "bonsai": _spec(
        name="bonsai",
        paper_gaussians=1_130_000,
        extent=6.0,
        uniform_frac=0.20,
        cluster_frac=0.58,
        wall_frac=0.12,
        ground_frac=0.10,
        n_clusters=10,
        cluster_radius=0.03,
        small_scale=(0.001, 0.008),
        large_scale=(0.05, 0.15),
        anisotropy=0.7,
        indoor=True,
        native_resolution=(1559, 1039),
        seed=103,
    ),
    "room": _spec(
        name="room",
        paper_gaussians=760_000,
        extent=6.0,
        uniform_frac=0.38,
        cluster_frac=0.22,
        wall_frac=0.28,
        ground_frac=0.12,
        n_clusters=6,
        cluster_radius=0.05,
        small_scale=(0.002, 0.015),
        large_scale=(0.08, 0.30),
        anisotropy=0.6,
        indoor=True,
        native_resolution=(1557, 1038),
        seed=104,
    ),
    "drjohnson": _spec(
        name="drjohnson",
        paper_gaussians=1_720_000,
        extent=8.0,
        uniform_frac=0.32,
        cluster_frac=0.18,
        wall_frac=0.38,
        ground_frac=0.12,
        n_clusters=7,
        cluster_radius=0.05,
        small_scale=(0.002, 0.015),
        large_scale=(0.10, 0.40),
        anisotropy=0.6,
        indoor=True,
        native_resolution=(1332, 876),
        seed=105,
    ),
    "playroom": _spec(
        name="playroom",
        paper_gaussians=970_000,
        extent=7.0,
        uniform_frac=0.30,
        cluster_frac=0.20,
        wall_frac=0.38,
        ground_frac=0.12,
        n_clusters=6,
        cluster_radius=0.05,
        small_scale=(0.002, 0.015),
        large_scale=(0.10, 0.40),
        anisotropy=0.6,
        indoor=True,
        native_resolution=(1264, 832),
        seed=106,
    ),
}

#: Canonical ordering used by every figure in the paper.
WORKLOAD_ORDER = ("train", "truck", "bonsai", "room", "drjohnson", "playroom")


def make_workload(
    name: str,
    scale: float = DEFAULT_SCALE,
    sh_degree: int = 1,
    seed: int | None = None,
) -> GaussianCloud:
    """Generate one of the six named workloads at the given scale.

    ``seed`` (when given) replaces the workload's default seed, producing
    an alternate but equally reproducible realization of the same scene
    statistics.
    """
    key = name.lower()
    if key not in WORKLOAD_SPECS:
        known = ", ".join(sorted(WORKLOAD_SPECS))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}")
    return make_scene(WORKLOAD_SPECS[key], scale=scale, sh_degree=sh_degree, seed=seed)
