"""Appearance optimization for Gaussian scenes (the training substrate).

The paper evaluates on models "trained for 30K iterations using the
original ray tracing-based training implementation from 3DGRT". We cannot
train on the real datasets offline, but the training *code path* — a
differentiable forward render plus gradient-based parameter updates — is
a substrate the system depends on, so this module implements it for the
appearance parameters (opacity and spherical-harmonics color), which is
exactly the part 3DGRT backpropagates through its blending equation:

    C = sum_i T_i * alpha_i * c_i,   T_i = prod_{j<i} (1 - alpha_j)

Gradients (the standard 3DGS backward pass, accumulated back-to-front):

    dC/dc_i     = T_i * alpha_i                      (SH is linear in c)
    dC/dalpha_i = T_i * c_i  -  S_i / (1 - alpha_i)

where ``S_i = sum_{j>i} T_j alpha_j c_j`` is the suffix contribution.
Opacity is parametrized through a sigmoid (as in 3DGS) so it stays in
(0, 1); geometry parameters (means/scales/rotations) are frozen — GRTX's
contribution is about *rendering* trained scenes, not geometric
densification.

The forward pass is the real multi-round ray tracer, so gradients flow
through exactly the blend lists the optimized renderer produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bvh.two_level import build_two_level
from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.sh import sh_basis
from repro.render.camera import PinholeCamera
from repro.rt.shading import ALPHA_MAX, SceneShading
from repro.rt.tracer import TraceConfig, Tracer

_SIGMOID_CLIP = 12.0


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -_SIGMOID_CLIP, _SIGMOID_CLIP)))


def _logit(p: np.ndarray) -> np.ndarray:
    p = np.clip(p, 1e-5, 1.0 - 1e-5)
    return np.log(p / (1.0 - p))


class Adam:
    """Minimal Adam optimizer for numpy parameter arrays."""

    def __init__(self, lr: float = 0.01, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Update ``params`` in place from ``grads``."""
        self._t += 1
        for name, grad in grads.items():
            if name not in self._m:
                self._m[name] = np.zeros_like(grad)
                self._v[name] = np.zeros_like(grad)
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            params[name] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class TrainingView:
    """One target image with its camera."""

    camera: PinholeCamera
    target: np.ndarray  # (h, w, 3)


@dataclass
class TrainReport:
    """Loss trajectory of one optimization run."""

    losses: list[float] = field(default_factory=list)

    @property
    def initial_loss(self) -> float:
        return self.losses[0]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


class GaussianTrainer:
    """Optimizes opacity + SH color of a cloud against target views.

    The forward pass renders with the multi-round k-buffer tracer
    (``record_blended`` on) so the backward pass sees exactly the
    Gaussians that contributed to each pixel, in blend order, with early
    ray termination applied.

    ``engine`` selects the forward tracer: ``"auto"`` (default) runs the
    vectorized packet engine — ``record_blended`` is packetized, so a
    whole view's bundle is traced in one packet and the backward pass
    consumes :attr:`~repro.rt.packet.PacketResult.blend_records` —
    falling back to the scalar per-ray tracer only when the packet
    engine cannot cover the structure.
    """

    def __init__(
        self,
        cloud: GaussianCloud,
        views: list[TrainingView],
        lr: float = 0.05,
        k: int = 8,
        engine: str = "auto",
    ) -> None:
        if not views:
            raise ValueError("need at least one training view")
        self.cloud = cloud
        self.views = views
        self.engine = engine
        self.params = {
            "opacity_logit": _logit(cloud.opacities.copy()),
            "sh": cloud.sh.copy(),
        }
        self.optimizer = Adam(lr=lr)
        self._config = TraceConfig(k=k, record_blended=True)
        self._sh_degree = cloud.sh_degree

    # -- forward/backward ------------------------------------------------

    def _current_cloud(self) -> GaussianCloud:
        return GaussianCloud(
            means=self.cloud.means,
            scales=self.cloud.scales,
            rotations=self.cloud.rotations,
            opacities=_sigmoid(self.params["opacity_logit"]),
            sh=self.params["sh"],
            kappa=self.cloud.kappa,
            name=self.cloud.name,
        )

    def _forward_view(self, tracer, engine: str, bundle):
        """Colors + per-ray blend records for one view's ray bundle."""
        if engine == "packet":
            result = tracer.trace_packet(bundle.origins, bundle.directions)
            return result.colors, result.blend_records
        colors = np.empty((len(bundle), 3))
        records = []
        for i in range(len(bundle)):
            outcome = tracer.trace_ray(bundle.origins[i],
                                       bundle.directions[i])
            colors[i] = outcome.color
            records.append(outcome.blend_records or [])
        return colors, records

    def loss_and_grads(self) -> tuple[float, dict[str, np.ndarray]]:
        """MSE loss over all views plus analytic parameter gradients."""
        from repro.rt.packet import PacketTracer, resolve_engine

        cloud = self._current_cloud()
        structure = build_two_level(cloud, "sphere")
        shading = SceneShading(cloud)
        engine = resolve_engine(self.engine, structure, self._config)
        if engine == "packet":
            tracer = PacketTracer(structure, shading, self._config)
        else:
            tracer = Tracer(structure, shading, self._config)

        opacities = cloud.opacities
        grad_opacity = np.zeros(len(cloud))
        grad_sh = np.zeros_like(cloud.sh)
        total_sq = 0.0
        total_px = 0

        for view in self.views:
            bundle = view.camera.generate_rays()
            target = view.target.reshape(-1, 3)
            colors, records = self._forward_view(tracer, engine, bundle)
            residuals = colors - target[bundle.pixel_ids]
            total_sq += float((residuals * residuals).sum())
            total_px += len(bundle)
            for i in range(len(bundle)):
                if not records[i]:
                    continue
                self._backward_ray(
                    records[i], residuals[i], bundle.directions[i],
                    opacities, grad_opacity, grad_sh,
                )

        n = 3.0 * total_px
        loss = total_sq / n
        grad_opacity *= 2.0 / n
        grad_sh *= 2.0 / n
        # Chain through the sigmoid reparametrization.
        sig = opacities
        grads = {
            "opacity_logit": grad_opacity * sig * (1.0 - sig),
            "sh": grad_sh,
        }
        return loss, grads

    def _backward_ray(
        self,
        records: list[tuple[int, float, float]],
        residual: np.ndarray,
        direction: np.ndarray,
        opacities: np.ndarray,
        grad_opacity: np.ndarray,
        grad_sh: np.ndarray,
    ) -> None:
        """Accumulate dL/d(opacity), dL/d(SH) for one ray.

        ``residual`` is dL/dC up to the global 2/n factor applied by the
        caller. Suffix sums run back-to-front, mirroring the 3DGS
        backward kernel.
        """
        gids = np.fromiter((r[0] for r in records), dtype=np.int64, count=len(records))
        alphas = np.fromiter((r[1] for r in records), dtype=np.float64, count=len(records))
        basis = sh_basis(direction[None, :], self._sh_degree)[0]
        colors = np.einsum("c,ncd->nd", basis, self.params["sh"][gids]) + 0.5
        colors = np.clip(colors, 0.0, None)
        positive = colors > 0.0

        # Transmittance before each blended Gaussian.
        trans = np.empty(len(records))
        t_run = 1.0
        for i, a in enumerate(alphas):
            trans[i] = t_run
            t_run *= 1.0 - a

        # dC/dc_i = T_i alpha_i ; SH gradient via the (linear) basis.
        weight = trans * alphas
        # dL/dcolor_i = residual . (clip passthrough where color > 0)
        dl_dcolor = weight[:, None] * residual[None, :] * positive
        grad_sh[gids] += basis[None, :, None] * dl_dcolor[:, None, :]

        # dC/dalpha_i = T_i c_i - S_i / (1 - alpha_i), suffix back-to-front.
        suffix = np.zeros(3)
        for i in range(len(records) - 1, -1, -1):
            a = alphas[i]
            contrib = trans[i] * a * colors[i]
            d_alpha = trans[i] * colors[i] - (suffix / max(1.0 - a, 1e-6))
            # alpha_i = clip(o_i * r_i) with r_i the Gaussian response:
            # d alpha/d o = r = alpha / o (zero where the clamp is active).
            gid = gids[i]
            if a < ALPHA_MAX:
                response = a / opacities[gid]
                grad_opacity[gid] += float(residual @ d_alpha) * response
            suffix += contrib

    # -- optimization loop ------------------------------------------------

    def fit(self, iterations: int = 20, verbose: bool = False) -> TrainReport:
        """Run the optimization; returns the loss trajectory."""
        report = TrainReport()
        for it in range(iterations):
            loss, grads = self.loss_and_grads()
            report.losses.append(loss)
            if verbose:
                print(f"iter {it:3d}  loss {loss:.6f}")
            self.optimizer.step(self.params, grads)
        report.losses.append(self.loss_and_grads()[0])
        return report

    def trained_cloud(self) -> GaussianCloud:
        """The cloud with the optimized appearance parameters."""
        return self._current_cloud()


def render_views(cloud: GaussianCloud, cameras: list[PinholeCamera],
                 k: int = 8, engine: str = "auto") -> list[TrainingView]:
    """Render ground-truth target views from a reference cloud."""
    from repro.rt.packet import PacketTracer, resolve_engine

    structure = build_two_level(cloud, "sphere")
    config = TraceConfig(k=k)
    shading = SceneShading(cloud)
    resolved = resolve_engine(engine, structure, config)
    if resolved == "packet":
        tracer = PacketTracer(structure, shading, config)
    else:
        tracer = Tracer(structure, shading, config)
    views = []
    for camera in cameras:
        bundle = camera.generate_rays()
        image = np.zeros((camera.n_pixels, 3))
        if resolved == "packet":
            result = tracer.trace_packet(bundle.origins, bundle.directions)
            image[bundle.pixel_ids] = result.colors
        else:
            for i in range(len(bundle)):
                outcome = tracer.trace_ray(bundle.origins[i],
                                           bundle.directions[i])
                image[int(bundle.pixel_ids[i])] = outcome.color
        views.append(TrainingView(camera=camera,
                                  target=image.reshape(camera.height, camera.width, 3)))
    return views
