"""Covariance assembly and the ray-space (canonical) transforms.

The GRTX-SW insight lives here: for a Gaussian with rotation ``R``, scale
``S`` (diagonal of per-axis sigmas) and cutoff ``kappa``, the bounding
ellipsoid ``(x - mu)^T Sigma^-1 (x - mu) = kappa^2`` maps onto the *unit
sphere* under ``x_obj = (kappa S)^-1 R^T (x_world - mu)``. Every Gaussian
can therefore share a single unit-sphere BLAS, with only the per-instance
transform differing.
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.cloud import GaussianCloud
from repro.math3d import AffineTransform, compose_trs, invert_rigid_scale, quat_to_rotation_matrix


def build_covariance(cloud: GaussianCloud) -> np.ndarray:
    """Return per-Gaussian covariance matrices ``Sigma = R S S^T R^T``.

    Shape ``(n, 3, 3)``. ``S`` is the diagonal matrix of ``cloud.scales``.
    """
    rot = quat_to_rotation_matrix(cloud.rotations)
    scaled = rot * cloud.scales[:, None, :]
    return scaled @ np.swapaxes(scaled, -1, -2)


def build_inverse_covariance(cloud: GaussianCloud) -> np.ndarray:
    """Return ``Sigma^-1`` via the factored form ``R S^-2 R^T``.

    Numerically better than inverting ``Sigma`` directly for the highly
    anisotropic Gaussians 3DGS training produces.
    """
    rot = quat_to_rotation_matrix(cloud.rotations)
    inv_scaled = rot * (1.0 / cloud.scales)[:, None, :]
    return inv_scaled @ np.swapaxes(inv_scaled, -1, -2)


def canonical_transforms(cloud: GaussianCloud) -> tuple[AffineTransform, AffineTransform]:
    """Return (object->world, world->object) transforms per Gaussian.

    Object space is the unit-sphere space: the object->world map sends the
    unit sphere to the ``kappa``-sigma bounding ellipsoid. These are exactly
    the matrices a TLAS instance node stores.
    """
    rot = quat_to_rotation_matrix(cloud.rotations)
    radii = cloud.kappa * cloud.scales
    obj_to_world = compose_trs(cloud.means, rot, radii)
    world_to_obj = invert_rigid_scale(cloud.means, rot, radii)
    return obj_to_world, world_to_obj


def world_aabbs(cloud: GaussianCloud) -> tuple[np.ndarray, np.ndarray]:
    """Tight world-space AABBs of each bounding ellipsoid.

    For an ellipsoid ``x = R (kappa S) u + mu`` with ``|u| = 1`` the extent
    along world axis ``i`` is ``sqrt(sum_j (R_ij * kappa * s_j)^2)``, i.e.
    the row norms of the scaled rotation. Returns ``(lo, hi)`` arrays of
    shape ``(n, 3)``.
    """
    rot = quat_to_rotation_matrix(cloud.rotations)
    scaled = rot * (cloud.kappa * cloud.scales)[:, None, :]
    extent = np.sqrt(np.sum(scaled * scaled, axis=-1))
    return cloud.means - extent, cloud.means + extent
