"""3D Gaussian scene representation.

A scene is a :class:`GaussianCloud`: batched means, per-axis scales, unit
quaternion rotations, opacities and spherical-harmonics color coefficients,
exactly the parametrization used by 3D Gaussian Splatting and 3DGRT.
"""

from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.covariance import (
    build_covariance,
    build_inverse_covariance,
    canonical_transforms,
    world_aabbs,
)
from repro.gaussians.response import (
    gaussian_alpha_along_ray,
    gaussian_response,
    t_alpha,
)
from repro.gaussians.ply import load_ply, save_ply
from repro.gaussians.sh import eval_sh, num_sh_coeffs
from repro.gaussians.synthetic import (
    SceneSpec,
    WORKLOAD_SPECS,
    make_scene,
    make_workload,
)

# NOTE: repro.gaussians.training and repro.gaussians.densify are
# intentionally not re-exported here: they sit above the render layer
# (they drive the ray tracer for their forward passes), so import them
# directly as `repro.gaussians.training` / `repro.gaussians.densify`.

__all__ = [
    "GaussianCloud",
    "SceneSpec",
    "WORKLOAD_SPECS",
    "build_covariance",
    "build_inverse_covariance",
    "canonical_transforms",
    "eval_sh",
    "gaussian_alpha_along_ray",
    "gaussian_response",
    "load_ply",
    "make_scene",
    "make_workload",
    "num_sh_coeffs",
    "save_ply",
    "t_alpha",
    "world_aabbs",
]
