"""GRTX reproduction: efficient ray tracing for 3D Gaussian-based rendering.

Reproduces "GRTX: Efficient Ray Tracing for 3D Gaussian-Based Rendering"
(HPCA 2026): a 3D Gaussian ray tracer (3DGRT-style multi-round k-buffer
tracing), the acceleration structures it compares (monolithic proxy BVHs
vs GRTX-SW's TLAS + shared unit-sphere BLAS), GRTX-HW's traversal
checkpointing and replay, a 3DGS rasterizer baseline, and a trace-driven
GPU timing model standing in for Vulkan-Sim.

Quickstart::

    from repro import (GaussianRayTracer, GpuConfig, TraceConfig,
                       build_two_level, default_camera_for, make_workload,
                       replay)

    cloud = make_workload("bonsai", scale=1 / 500)
    structure = build_two_level(cloud, blas_kind="sphere")
    renderer = GaussianRayTracer(cloud, structure,
                                 TraceConfig(k=8, checkpointing=True))
    result = renderer.render(default_camera_for(cloud, 32, 32))
    timing = replay(result.traces, GpuConfig.rtx_like())
    print(timing.time_ms, timing.l1_hit_rate)
"""

from repro.bvh import (
    BuildParams,
    build_monolithic,
    build_two_level,
    structure_stats,
)
from repro.gaussians import GaussianCloud, make_workload
from repro.hwsim import GpuConfig, TimingReport, replay
from repro.render import (
    GaussianRasterizer,
    GaussianRayTracer,
    PinholeCamera,
    RenderResult,
    SceneObjects,
    default_camera_for,
    psnr,
    write_ppm,
)
from repro.rt import TraceConfig
from repro.serve import (
    RenderRequest,
    RenderServer,
    SceneRef,
    SceneRegistry,
    TileScheduler,
)

__version__ = "1.1.0"

__all__ = [
    "BuildParams",
    "GaussianCloud",
    "GaussianRasterizer",
    "GaussianRayTracer",
    "GpuConfig",
    "PinholeCamera",
    "RenderRequest",
    "RenderResult",
    "RenderServer",
    "SceneObjects",
    "SceneRef",
    "SceneRegistry",
    "TileScheduler",
    "TimingReport",
    "TraceConfig",
    "build_monolithic",
    "build_two_level",
    "default_camera_for",
    "make_workload",
    "psnr",
    "replay",
    "structure_stats",
    "write_ppm",
]
