"""Thread-safe LRU cache with hit/miss accounting.

Both serve-side caches — built acceleration structures in the
:class:`~repro.serve.registry.SceneRegistry` and finished frames in the
:class:`~repro.serve.server.RenderServer` — are bounded LRU maps whose
hit rates are first-class service metrics, so the counters live here
rather than in the callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.obs import events as obs_events
from repro.obs import flight


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded least-recently-used map.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry once ``capacity`` is exceeded. All operations take an internal
    lock so the server can share one instance across request threads.

    ``name`` opts the cache into flight-recorder eviction events
    (``kind=eviction, name=<name>.evict``): capacity churn on the serve
    caches is a classic probable cause, so it belongs in the black box.
    """

    def __init__(self, capacity: int, name: str | None = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return default
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Read without touching recency or the hit/miss counters."""
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted and self.name is not None:
            flight.record(obs_events.EVICTION, f"{self.name}.evict",
                          evicted=evicted, capacity=self.capacity)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            return self._entries.pop(key, default)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
