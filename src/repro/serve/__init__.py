"""Batched, tile-parallel render serving with scene & frame caching.

The serving layer turns the one-shot renderer into a request-driven
service:

* :mod:`repro.serve.request` — hashable :class:`RenderRequest` values
  and content-hashed scene references;
* :mod:`repro.serve.registry` — :class:`SceneRegistry`, which builds
  each (scene, proxy, params) acceleration structure exactly once and
  can persist builds to disk;
* :mod:`repro.serve.tiles` — :class:`TileScheduler`, which fans a frame
  out over a process pool and reassembles a bit-identical image;
* :mod:`repro.serve.server` — :class:`RenderServer`, the front end with
  a frame cache, in-flight request coalescing, and sync/async/batch
  APIs;
* :mod:`repro.serve.bench` — the load generator behind
  ``python -m repro serve-bench``.

Quickstart::

    from repro.serve import RenderRequest, RenderServer

    server = RenderServer(workers=4)
    response = server.render(RenderRequest(scene="train", width=64, height=64))
    response.image          # (64, 64, 3) float RGB
    server.stats_report()   # cache hit rates, builds, render seconds
"""

from repro.serve.cache import CacheStats, LRUCache
from repro.serve.registry import SceneRegistry
from repro.serve.request import (
    ENGINES,
    RenderJob,
    RenderRequest,
    RenderResponse,
    SceneRef,
    cloud_fingerprint,
)
from repro.serve.server import RenderServer, ServerMetrics, ServerSaturated
from repro.serve.tiles import Tile, TileScheduler, split_frame

__all__ = [
    "CacheStats",
    "ENGINES",
    "LRUCache",
    "RenderJob",
    "RenderRequest",
    "RenderResponse",
    "RenderServer",
    "SceneRef",
    "SceneRegistry",
    "ServerMetrics",
    "ServerSaturated",
    "Tile",
    "TileScheduler",
    "cloud_fingerprint",
    "split_frame",
]
