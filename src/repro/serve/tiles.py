"""Tile decomposition and the multi-core tile scheduler.

A frame is embarrassingly parallel across pixels: the tracer carries no
cross-ray state, so any partition of the primary-ray bundle renders the
same image. The scheduler splits the frame into rectangular tiles,
renders them on a ``multiprocessing`` pool (workers hold the scene and
acceleration structure, built once per worker), and scatters the tiles
back into one :class:`~repro.render.image.ImageBuffer`.

Pixel-exactness is the contract: the parent generates the *full* camera
bundle once and hands each worker verbatim slices of it, so a tiled
render — serial or parallel, any tile size — is bit-identical to the
untiled render. (Re-deriving rays per tile could differ in the last ulp;
slicing cannot.)
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.two_level import TwoLevelBVH
from repro.gaussians import GaussianCloud
from repro.render.effects import SceneObjects
from repro.render.image import ImageBuffer
from repro.render.renderer import GaussianRayTracer, RenderResult, RenderStats
from repro.rt import TraceConfig


def available_cores() -> int:
    """Cores this process may actually run on (affinity-aware).

    ``mp.cpu_count()`` reports the host's cores even inside a cgroup or
    taskset pinned to a subset; sizing a pool by it oversubscribes.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


@dataclass(frozen=True)
class Tile:
    """One rectangular region of a frame (pixel coordinates)."""

    x0: int
    y0: int
    width: int
    height: int

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    def pixel_ids(self, frame_width: int) -> np.ndarray:
        """Row-major global pixel ids covered by this tile."""
        rows = np.arange(self.y0, self.y0 + self.height, dtype=np.int64)
        cols = np.arange(self.x0, self.x0 + self.width, dtype=np.int64)
        return (rows[:, None] * frame_width + cols[None, :]).reshape(-1)


def split_frame(width: int, height: int, tile_width: int, tile_height: int) -> list[Tile]:
    """Cover a frame with tiles; edge tiles shrink to fit.

    Works for any frame/tile size combination, including frames smaller
    than one tile and non-divisible sizes (a 33x17 frame under 8x8 tiles
    gets 1-wide and 1-tall remainder tiles).
    """
    if width < 1 or height < 1:
        raise ValueError("frame dimensions must be positive")
    if tile_width < 1 or tile_height < 1:
        raise ValueError("tile dimensions must be positive")
    tiles = []
    for y0 in range(0, height, tile_height):
        for x0 in range(0, width, tile_width):
            tiles.append(Tile(
                x0=x0,
                y0=y0,
                width=min(tile_width, width - x0),
                height=min(tile_height, height - y0),
            ))
    return tiles


# ---------------------------------------------------------------------------
# Worker-side state. Each pool worker builds its renderer once from the
# (cloud, structure, config) shipped by the initializer, then renders any
# number of tiles against it.

_worker_renderer: GaussianRayTracer | None = None
_worker_objects: SceneObjects | None = None


def _init_worker(cloud, structure, config, objects, engine) -> None:
    global _worker_renderer, _worker_objects
    _worker_renderer = GaussianRayTracer(cloud, structure, config, engine=engine)
    _worker_objects = objects


def _render_tile(task):
    index, origins, directions, pixel_ids, keep_traces = task
    result = _worker_renderer.trace_rays(
        origins, directions, pixel_ids,
        objects=_worker_objects, keep_traces=keep_traces,
    )
    return index, result


class TileScheduler:
    """Fans a frame out over tiles and (optionally) worker processes.

    Parameters
    ----------
    tile_size:
        ``(width, height)`` of a tile in pixels.
    workers:
        Process count. ``1`` renders tiles serially in-process (no pool,
        no pickling); ``>1`` uses a ``multiprocessing`` pool. ``0`` or
        ``None`` means one worker per available core.
    start_method:
        Forwarded to :func:`multiprocessing.get_context`. By default the
        method is chosen per render: ``fork`` (cheap scene shipping) when
        the process is still single-threaded, ``spawn`` otherwise —
        forking a multi-threaded process (e.g. from RenderServer submit
        threads) can deadlock children on locks the fork snapshotted.
    """

    def __init__(
        self,
        tile_size: tuple[int, int] = (16, 16),
        workers: int | None = 1,
        start_method: str | None = None,
    ) -> None:
        self.tile_width, self.tile_height = int(tile_size[0]), int(tile_size[1])
        if self.tile_width < 1 or self.tile_height < 1:
            raise ValueError("tile dimensions must be positive")
        if workers is None or workers == 0:
            workers = available_cores()
        if workers < 1:
            raise ValueError("workers must be >= 1 (or 0/None for auto)")
        self.workers = workers
        self.start_method = start_method

    def _resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        if "fork" in mp.get_all_start_methods() and threading.active_count() == 1:
            return "fork"
        return "spawn"

    def render(
        self,
        cloud: GaussianCloud,
        structure: MonolithicBVH | TwoLevelBVH,
        config: TraceConfig,
        camera,
        objects: SceneObjects | None = None,
        keep_traces: bool = False,
        renderer: GaussianRayTracer | None = None,
        engine: str = "scalar",
    ) -> RenderResult:
        """Render one frame tile-by-tile; returns a normal RenderResult.

        Any camera type works: tiles are cut out of the camera's own
        full-frame bundle. Traces default to off (they are the expensive
        part to ship between processes); enable ``keep_traces`` when the
        caller needs a timing replay. ``renderer`` lets a caller reuse an
        already-constructed tracer for this (cloud, structure, config,
        engine) — per-frame shading setup is O(scene) — and only applies
        to the serial path (pool workers build their own from the
        initargs). ``engine`` selects the tracing engine
        (``"scalar"``/``"packet"``) when no renderer is passed;
        unsupported (structure, config) combinations fall back to
        scalar inside :class:`GaussianRayTracer`.
        """
        bundle = camera.generate_rays()
        tiles = split_frame(camera.width, camera.height,
                            self.tile_width, self.tile_height)
        tasks = []
        for index, tile in enumerate(tiles):
            ids = tile.pixel_ids(camera.width)
            tasks.append((
                index,
                bundle.origins[ids],
                bundle.directions[ids],
                bundle.pixel_ids[ids],
                keep_traces,
            ))

        n_workers = min(self.workers, len(tasks))
        if n_workers <= 1:
            if renderer is None:
                renderer = GaussianRayTracer(cloud, structure, config,
                                             engine=engine)
            results = [
                (index, renderer.trace_rays(o, d, ids, objects=objects,
                                            keep_traces=keep))
                for index, o, d, ids, keep in tasks
            ]
        else:
            ctx = mp.get_context(self._resolve_start_method())
            with ctx.Pool(
                processes=n_workers,
                initializer=_init_worker,
                initargs=(cloud, structure, config, objects, engine),
            ) as pool:
                results = pool.map(_render_tile, tasks, chunksize=1)

        framebuffer = ImageBuffer(camera.width, camera.height)
        stats = RenderStats()
        traces = []
        for _, part in sorted(results, key=lambda item: item[0]):
            framebuffer.scatter(part.pixel_ids, part.colors)
            stats.merge(part.stats)
            if keep_traces:
                traces.extend(part.traces)

        return RenderResult(
            image=framebuffer.array,
            stats=stats,
            traces=traces,
            config=config,
            structure_bytes=structure.total_bytes,
        )
