"""Tile decomposition and the multi-core tile scheduler.

A frame is embarrassingly parallel across pixels: the tracer carries no
cross-ray state, so any partition of the primary-ray bundle renders the
same image. The scheduler splits the frame into rectangular tiles,
renders them on a persistent :class:`~repro.pool.WorkerPool` (workers
hold content-hash-keyed scene caches, so repeated frames of one scene
ship only a hash), and scatters the tiles back into one
:class:`~repro.render.image.ImageBuffer`.

Pixel-exactness is the contract: the parent generates the *full* camera
bundle once and hands each worker verbatim slices of it, so a tiled
render — serial or parallel, any tile partition — is bit-identical to
the untiled render. (Re-deriving rays per tile could differ in the last
ulp; slicing cannot.) Cost-aware tiling exploits exactly this freedom:
per-tile cost measurements from the previous frame of a scene move the
tile *borders* toward equal-cost tiles, never changing what any pixel
computes.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass

import numpy as np

from repro.bvh.flatten import flatten
from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.two_level import TwoLevelBVH
from repro.gaussians import GaussianCloud
from repro.obs import get_registry, span
from repro.pool import TileCostModel, WorkerPool, available_workers, scene_key
from repro.render.effects import SceneObjects
from repro.render.image import ImageBuffer
from repro.render.renderer import (
    BundleResult,
    GaussianRayTracer,
    RenderResult,
    RenderStats,
)
from repro.rt import TraceConfig


def available_cores() -> int:
    """Worker count for auto-sized schedulers/pools (affinity-aware).

    Honors the ``REPRO_WORKERS`` environment override and survives
    ``sched_getaffinity`` failures — see
    :func:`repro.pool.available_workers`, the single implementation.
    """
    return available_workers()


@dataclass(frozen=True)
class Tile:
    """One rectangular region of a frame (pixel coordinates)."""

    x0: int
    y0: int
    width: int
    height: int

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    def pixel_ids(self, frame_width: int) -> np.ndarray:
        """Row-major global pixel ids covered by this tile."""
        rows = np.arange(self.y0, self.y0 + self.height, dtype=np.int64)
        cols = np.arange(self.x0, self.x0 + self.width, dtype=np.int64)
        return (rows[:, None] * frame_width + cols[None, :]).reshape(-1)


def split_frame(width: int, height: int, tile_width: int, tile_height: int) -> list[Tile]:
    """Cover a frame with tiles; edge tiles shrink to fit.

    Works for any frame/tile size combination, including frames smaller
    than one tile and non-divisible sizes (a 33x17 frame under 8x8 tiles
    gets 1-wide and 1-tall remainder tiles).
    """
    if width < 1 or height < 1:
        raise ValueError("frame dimensions must be positive")
    if tile_width < 1 or tile_height < 1:
        raise ValueError("tile dimensions must be positive")
    tiles = []
    for y0 in range(0, height, tile_height):
        for x0 in range(0, width, tile_width):
            tiles.append(Tile(
                x0=x0,
                y0=y0,
                width=min(tile_width, width - x0),
                height=min(tile_height, height - y0),
            ))
    return tiles


def _close_pool_quietly(pool: WorkerPool) -> None:
    try:
        pool.close(wait=False, timeout=2.0)
    except Exception:  # repro: lint-ok[broad-except] best-effort close at finalizer time; the process is going away and there is nobody to tell
        pass


class TileScheduler:
    """Fans a frame out over tiles and (optionally) a worker pool.

    Parameters
    ----------
    tile_size:
        ``(width, height)`` of a tile in pixels (the uniform-grid
        fallback; cost-aware splitting overrides the borders once a
        scene has per-tile cost history).
    workers:
        Process count. ``1`` renders tiles serially in-process (no pool,
        no pickling); ``>1`` uses a persistent
        :class:`~repro.pool.WorkerPool` created on first parallel render
        and **reused across frames** — workers keep scenes resident, so
        only the first frame of a scene pays the shipping cost. ``0`` or
        ``None`` means one worker per available core (``REPRO_WORKERS``
        honored).
    start_method:
        Forwarded to the pool. By default the method is chosen at pool
        start: ``fork`` (cheap scene shipping) when the process is still
        single-threaded, ``spawn`` otherwise — forking a multi-threaded
        process (e.g. from RenderServer dispatcher threads) can deadlock
        children on locks the fork snapshotted.
    pool:
        An existing :class:`~repro.pool.WorkerPool` to render on (shared
        with other schedulers/callers). The scheduler never closes a
        pool it was given; it only closes one it created.
    adaptive:
        Enable cost-aware tile splitting from per-tile cost feedback.
    task_deadline_s:
        Per-tile wall-clock deadline forwarded to a pool this scheduler
        creates (the hung-worker watchdog; see
        :class:`~repro.pool.WorkerPool`). Ignored for a shared ``pool``
        the caller constructed — deadline policy belongs to the owner.
    """

    def __init__(
        self,
        tile_size: tuple[int, int] = (16, 16),
        workers: int | None = 1,
        start_method: str | None = None,
        pool: WorkerPool | None = None,
        adaptive: bool = True,
        task_deadline_s: float | None = None,
    ) -> None:
        self.tile_width, self.tile_height = int(tile_size[0]), int(tile_size[1])
        if self.tile_width < 1 or self.tile_height < 1:
            raise ValueError("tile dimensions must be positive")
        if workers is None or workers == 0:
            workers = available_cores()
        if workers < 1:
            raise ValueError("workers must be >= 1 (or 0/None for auto)")
        self.workers = workers
        self.start_method = start_method
        self.adaptive = adaptive
        self.task_deadline_s = task_deadline_s
        self.cost_model = TileCostModel()
        #: The tile partition and worker-measured cost (seconds) of the
        #: last pooled render: ``[(Tile, cost), ...]``.
        self.last_tile_costs: list[tuple[Tile, float]] = []
        self._pool = pool
        self._owns_pool = False
        self._pool_finalizer = None

    # -- pool lifecycle -------------------------------------------------

    @property
    def pool(self) -> WorkerPool | None:
        """The pool this scheduler renders on (None until first use)."""
        return self._pool

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(workers=self.workers,
                                    start_method=self.start_method,
                                    task_deadline_s=self.task_deadline_s)
            self._owns_pool = True
            # Schedulers are often created ad hoc (tests, benchmarks);
            # tie the owned pool's shutdown to the scheduler's lifetime
            # so dropped schedulers don't strand worker processes.
            self._pool_finalizer = weakref.finalize(
                self, _close_pool_quietly, self._pool)
        return self._pool

    def pool_stats(self) -> dict:
        """Counters of the underlying pool ({} before first pooled render)."""
        return self._pool.stats() if self._pool is not None else {}

    def close(self) -> None:
        """Release the scheduler's own pool (shared pools are untouched)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        self._pool = None
        self._owns_pool = False

    def __enter__(self) -> "TileScheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- rendering ------------------------------------------------------

    def _plan_tiles(self, key: tuple, width: int, height: int,
                    n_workers: int, uniform: list[Tile]) -> list[Tile]:
        """The tile partition for one pooled frame: cost-aware when the
        scene has history, the uniform grid otherwise."""
        if not self.adaptive:
            return uniform
        target = min(max(len(uniform), 4 * n_workers), 256)
        rects = self.cost_model.plan(key, width, height, target)
        if rects is None:
            return uniform
        return [Tile(*rect) for rect in rects]

    def render(
        self,
        cloud: GaussianCloud,
        structure: MonolithicBVH | TwoLevelBVH,
        config: TraceConfig,
        camera,
        objects: SceneObjects | None = None,
        keep_traces: bool = False,
        renderer: GaussianRayTracer | None = None,
        engine: str = "scalar",
        force_serial: bool = False,
    ) -> RenderResult:
        """Render one frame tile-by-tile; returns a normal RenderResult.

        ``force_serial`` routes this one frame down the in-process
        serial path even when a pool is configured — the degradation
        path the server's pool-health circuit breaker uses. Serial and
        pooled renders are bit-identical by the standing contract
        (verbatim bundle slices), so the fallback is image-safe.

        Any camera type works: tiles are cut out of the camera's own
        full-frame bundle. Traces default to off (they are the expensive
        part to ship between processes); enable ``keep_traces`` when the
        caller needs a timing replay — both engines record them (the
        packet engine through its trace recorder), and pooled tile
        workers ship the per-ray traces back with their tile results, so
        a pooled trace-producing render still fans out across cores. ``renderer`` lets a caller reuse an
        already-constructed tracer for this (cloud, structure, config,
        engine) — per-frame shading setup is O(scene) — and only applies
        to the serial path (pool workers resolve their own from their
        scene caches). ``engine`` selects the tracing engine
        (``"scalar"``/``"packet"``/``"wavefront"``/``"auto"``); it is
        resolved to the concrete engine *here* (with the frame's ray
        count, so ``auto`` picks the wavefront engine for frame-sized
        batches), before any cache key is formed, so ``auto`` and an
        equivalent explicit engine share worker scene caches, and an
        explicit batch engine that degrades to scalar is counted by
        :func:`repro.rt.packet.packet_fallback_count` in the parent
        process (workers only ever see resolved engines).  A resolved
        ``"wavefront"`` traces the frame *whole* in-process — the
        engine's entire advantage is frame-wide breadth-first batching,
        which tile-sliced pool fan-out would undo — and the frame
        result is split back into per-tile parts, so reassembly and
        every tile-level API downstream are untouched.
        Pooled tiles ship the *flattened* structure
        (:func:`repro.bvh.flatten.flatten`): workers build either
        engine straight from the one SoA layout.
        """
        from repro.rt.packet import resolve_engine

        engine = resolve_engine(engine, structure, config,
                                n_rays=camera.width * camera.height)
        bundle = camera.generate_rays()

        registry = get_registry()
        if engine == "wavefront":
            return self._render_wavefront(
                cloud, structure, config, camera, bundle, objects,
                keep_traces, renderer)
        tiles = split_frame(camera.width, camera.height,
                            self.tile_width, self.tile_height)
        if force_serial or self.workers <= 1 or len(tiles) <= 1:
            # Single-tile frames (frame <= tile size) render in-process:
            # there is nothing to parallelize, and booting/shipping to a
            # pool would only add latency.
            if renderer is None:
                renderer = GaussianRayTracer(cloud, structure, config,
                                             engine=engine)
            with span("tiles.render", tiles=len(tiles), mode="serial"):
                parts, costs = [], []
                for tile in tiles:
                    ids = tile.pixel_ids(camera.width)
                    started = time.perf_counter()
                    parts.append(renderer.trace_rays(
                        bundle.origins[ids], bundle.directions[ids],
                        bundle.pixel_ids[ids], objects=objects,
                        keep_traces=keep_traces))
                    cost = time.perf_counter() - started
                    costs.append(cost)
                    registry.observe("tiles.tile_seconds", cost)
                if len(tiles) > 1:
                    # Serial multi-tile renders feed the cost model the
                    # same measured per-tile seconds pooled renders do,
                    # so a scheduler warmed serially plans cost-aware
                    # tiles on its first pooled frame.
                    key = scene_key(cloud, structure, config, objects,
                                    engine)
                    rects = [(t.x0, t.y0, t.width, t.height)
                             for t in tiles]
                    self.cost_model.record(key, camera.width,
                                           camera.height, rects, costs)
                    self.last_tile_costs = list(zip(tiles, costs))
                return self._assemble(parts, camera, config, structure)

        key = scene_key(cloud, structure, config, objects, engine)
        pool = self._ensure_pool()
        tiles = self._plan_tiles(key, camera.width, camera.height,
                                 pool.n_workers, tiles)
        with span("tiles.render", tiles=len(tiles), mode="pooled"):
            # Workers receive the flattened SoA layout, not the original
            # structure objects; the key stays content-based on the
            # source structure (flatten is memoized, so warm frames pay
            # a lookup).
            flat = flatten(structure)
            with span("tiles.dispatch", tiles=len(tiles)):
                futures = []
                for tile in tiles:
                    ids = tile.pixel_ids(camera.width)
                    futures.append(pool.submit_tile(
                        cloud, flat, config, objects, engine,
                        bundle.origins[ids], bundle.directions[ids],
                        bundle.pixel_ids[ids], keep_traces, key=key))
            parts, costs = [], []
            for future in futures:
                part, cost = future.result()
                parts.append(part)
                costs.append(cost)
                registry.observe("tiles.tile_seconds", cost)
            rects = [(t.x0, t.y0, t.width, t.height) for t in tiles]
            self.cost_model.record(key, camera.width, camera.height, rects,
                                   costs)
            self.last_tile_costs = list(zip(tiles, costs))
            with span("tiles.reassemble", tiles=len(tiles)):
                return self._assemble(parts, camera, config, structure)

    def _render_wavefront(
        self,
        cloud: GaussianCloud,
        structure,
        config: TraceConfig,
        camera,
        bundle,
        objects: SceneObjects | None,
        keep_traces: bool,
        renderer: GaussianRayTracer | None,
    ) -> RenderResult:
        """One whole-frame breadth-first render, split back into tiles.

        The frame is traced as a single wavefront batch (that is the
        engine), then the one BundleResult is sliced into the uniform
        tile partition's parts and fed through the same
        :meth:`_assemble` every other path uses — tile-level consumers
        (reassembly, stats merging, trace collection) cannot tell the
        difference.  The cost model learns the scene's whole-frame rate
        (:meth:`~repro.pool.TileCostModel.record_frame`; the per-tile
        density maps are left alone — a frame traced whole carries no
        intra-frame skew signal) and in return tunes the engine's ray
        chunk so one chunk stays within a fixed time budget.
        """
        registry = get_registry()
        if renderer is None:
            renderer = GaussianRayTracer(cloud, structure, config,
                                         engine="wavefront")
        key = scene_key(cloud, structure, config, objects, "wavefront")
        if self.adaptive and renderer.engine_active == "wavefront":
            chunk = self.cost_model.suggest_chunk(key)
            if chunk is not None:
                renderer.packet.ray_chunk = chunk
        tiles = split_frame(camera.width, camera.height,
                            self.tile_width, self.tile_height)
        with span("tiles.render", tiles=len(tiles), mode="wavefront"):
            started = time.perf_counter()
            whole = renderer.trace_rays(
                bundle.origins, bundle.directions, bundle.pixel_ids,
                objects=objects, keep_traces=keep_traces)
            cost = time.perf_counter() - started
            registry.observe("tiles.frame_seconds", cost)
            self.cost_model.record_frame(key, camera.width, camera.height,
                                         cost)
            self.last_tile_costs = []
            parts = self._split_frame_result(whole, tiles, camera.width)
            return self._assemble(parts, camera, config, structure)

    @staticmethod
    def _split_frame_result(whole: BundleResult, tiles: list[Tile],
                            frame_width: int) -> list[BundleResult]:
        """Slice one frame-wide BundleResult into per-tile parts.

        The frame bundle is row-major, so a tile's global pixel ids are
        exactly its row indices into the result arrays.  Stats and
        traces are frame-granular (the engine traced the frame whole);
        they ride on the first part — RenderStats.merge is additive, so
        the assembled totals are exact.
        """
        parts = []
        for i, tile in enumerate(tiles):
            ids = tile.pixel_ids(frame_width)
            parts.append(BundleResult(
                colors=whole.colors[ids],
                pixel_ids=whole.pixel_ids[ids],
                stats=whole.stats if i == 0 else RenderStats(),
                traces=whole.traces if i == 0 else [],
            ))
        return parts

    @staticmethod
    def _assemble(parts, camera, config, structure) -> RenderResult:
        """Scatter tile results (in tile order) into one frame."""
        framebuffer = ImageBuffer(camera.width, camera.height)
        stats = RenderStats()
        traces = []
        for part in parts:
            framebuffer.scatter(part.pixel_ids, part.colors)
            stats.merge(part.stats)
            traces.extend(part.traces)

        return RenderResult(
            image=framebuffer.array,
            stats=stats,
            traces=traces,
            config=config,
            structure_bytes=structure.total_bytes,
        )
