"""Request/job model for the render service.

A :class:`SceneRef` names a scene *declaratively* — workload name, scale,
seed — so requests are cheap to construct, hashable, and reproducible:
the same ref always regenerates the same Gaussian cloud bit-for-bit.
Caching, however, is keyed on *content*: :func:`cloud_fingerprint`
hashes the actual Gaussian arrays, so two refs that happen to generate
identical clouds share cache entries, and a scene edit can never serve a
stale structure or frame.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.gaussians import GaussianCloud, make_workload
from repro.render.renderer import ENGINES
from repro.rt import TraceConfig

#: Tracing modes understood by the service (same set as the render CLI).
MODES = ("baseline", "grtx-sw", "grtx-hw", "grtx")

#: Tracing engines understood by the service: ``ENGINES`` is imported
#: from the renderer (the single source of the valid set) and
#: re-exported here for service callers.


def cloud_fingerprint(cloud: GaussianCloud) -> str:
    """Content hash of a Gaussian cloud.

    Covers every field that can change a built structure or a rendered
    pixel: the arrays (with shape and dtype, so reshaped-but-same-bytes
    data cannot collide), the name, and the kappa ellipsoid cutoff.
    """
    digest = hashlib.sha256()
    digest.update(cloud.name.encode("utf-8"))
    digest.update(repr(float(cloud.kappa)).encode("ascii"))
    for array in (cloud.means, cloud.scales, cloud.rotations,
                  cloud.opacities, cloud.sh):
        digest.update(str((array.shape, array.dtype)).encode("ascii"))
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class SceneRef:
    """A reproducible reference to one synthetic workload scene."""

    name: str
    scale: float = 1.0 / 400.0
    seed: int | None = None
    sh_degree: int = 1

    @property
    def key(self) -> tuple:
        """Hashable identity of the *recipe* (not the content)."""
        return (self.name.lower(), self.scale, self.seed, self.sh_degree)

    def materialize(self) -> GaussianCloud:
        """Generate the Gaussian cloud this ref describes."""
        return make_workload(self.name, scale=self.scale,
                             sh_degree=self.sh_degree, seed=self.seed)


@dataclass(frozen=True)
class RenderRequest:
    """Everything needed to render one frame, as a hashable value.

    ``scene`` may be a workload name (resolved with ``scale``/``seed``)
    or a fully-specified :class:`SceneRef`.
    """

    scene: str | SceneRef
    proxy: str = "tlas+sphere"
    mode: str = "grtx"
    k: int = 8
    width: int = 32
    height: int = 32
    camera: str = "pinhole"
    scale: float = 1.0 / 400.0
    seed: int | None = None
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if self.width < 1 or self.height < 1:
            raise ValueError("frame dimensions must be positive")
        if isinstance(self.scene, SceneRef):
            # The ref is authoritative; a conflicting request-level scale
            # or seed would be silently ignored — reject it instead.
            defaults = type(self)
            if self.seed is not None or self.scale != defaults.scale:
                raise ValueError(
                    "scene is a SceneRef: set scale/seed on the ref, not "
                    "on the request")

    @property
    def scene_ref(self) -> SceneRef:
        if isinstance(self.scene, SceneRef):
            return self.scene
        return SceneRef(name=self.scene, scale=self.scale, seed=self.seed)

    @property
    def checkpointing(self) -> bool:
        return self.mode in ("grtx-hw", "grtx")

    @property
    def engine_active(self) -> str:
        """The engine that will actually trace this request.

        Evaluates :func:`repro.rt.packet.packet_supported`'s rule from
        request fields alone (the proxy label stands in for the
        structure family), so cache keys always carry the engine a
        render would really use — in particular ``engine="auto"``
        resolves *before* any frame or tracer key is formed.  ``"auto"``
        picks the wavefront engine when the frame carries at least
        :data:`repro.rt.packet.WAVEFRONT_MIN_RAYS` rays, the packet
        engine for smaller frames.
        """
        from repro.rt.packet import (
            PACKET_PROXIES,
            WAVEFRONT_MIN_RAYS,
            packet_config_supported,
        )

        if (self.engine in ("packet", "wavefront", "auto")
                and self.proxy in PACKET_PROXIES
                and packet_config_supported(self.trace_config())):
            if self.engine == "wavefront":
                return "wavefront"
            if (self.engine == "auto"
                    and self.width * self.height >= WAVEFRONT_MIN_RAYS):
                return "wavefront"
            return "packet"
        return "scalar"

    def trace_config(self) -> TraceConfig:
        return TraceConfig(k=self.k, checkpointing=self.checkpointing)

    def frame_key(self, scene_hash: str) -> tuple:
        """Frame-cache key: scene *content* + camera + trace config.

        Everything that can change a pixel is in here; nothing else is,
        so equivalent requests coalesce onto one cache entry. The
        *effective* engine is included (engines are parity-matched only
        to 1e-9 per channel, not bit-identical) — keying on the
        requested engine would re-render and double-cache fallback
        combinations whose frames are bit-identical to scalar ones.
        """
        return (scene_hash, self.proxy, self.mode, self.k,
                self.width, self.height, self.camera, self.engine_active)


@dataclass
class RenderResponse:
    """The result of one served request, with cache provenance."""

    request: RenderRequest
    image: np.ndarray
    scene_hash: str
    stats: Any = None
    frame_cache_hit: bool = False
    coalesced: bool = False
    latency_s: float = 0.0


@dataclass
class RenderJob:
    """A submitted request: a handle the caller can wait on."""

    request: RenderRequest
    future: Future = field(repr=False, default_factory=Future)
    #: Wall-clock nanoseconds at enqueue time (0 = never queued); the
    #: dispatcher turns it into the ``serve.queue_wait`` histogram and
    #: span, so queue pressure is visible per request.
    enqueued_ns: int = field(default=0, repr=False, compare=False)
    #: Called as ``on_timeout(job, cancelled)`` when :meth:`result`
    #: times out; the enqueuing server installs its accounting hook
    #: here (``requests.timed_out`` counter, flight breadcrumb).
    on_timeout: Callable | None = field(default=None, repr=False,
                                        compare=False)

    def done(self) -> bool:
        return self.future.done()

    def cancel(self) -> bool:
        """Cancel the job if it has not started rendering; returns
        whether it was cancelled (the dispatcher skips cancelled jobs)."""
        return self.future.cancel()

    def result(self, timeout: float | None = None) -> RenderResponse:
        """The response, waiting up to ``timeout`` seconds.

        A timed-out wait *abandons* the job: the job is cancelled if it
        is still queued (so the dispatcher never renders work nobody is
        waiting for), the server's timeout accounting runs, and the
        ``TimeoutError`` propagates. A job that already started
        rendering cannot be cancelled — it completes and populates the
        caches — but it is still counted as timed out for the caller.
        """
        try:
            return self.future.result(timeout=timeout)
        except TimeoutError:
            cancelled = self.future.cancel()
            if self.on_timeout is not None:
                self.on_timeout(self, cancelled)
            raise

    @property
    def status(self) -> str:
        if self.future.cancelled():
            return "cancelled"
        if not self.future.done():
            return "pending"
        return "failed" if self.future.exception() else "completed"
