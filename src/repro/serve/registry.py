"""Scene and acceleration-structure registry.

Building a BVH dominates cold-start latency (it costs far more than
tracing a small frame), and it is pure function of (scene content, proxy,
build params). The registry therefore memoizes builds at two levels:

* an in-memory LRU of built structures, shared by every request;
* an optional on-disk cache of :mod:`repro.bvh.serialize` archives, so a
  restarted server warm-starts from previous builds.

Disk entries that fail to load — truncated writes, stale format versions
(:class:`~repro.bvh.serialize.StructureFormatError`) — are treated as
misses and rebuilt, never trusted.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import astuple
from pathlib import Path

import repro.chaos as chaos
from repro.bvh import BuildParams, StructureFormatError, load_structure, save_structure
from repro.obs import events as obs_events
from repro.obs import flight, get_registry, span
from repro.gaussians import GaussianCloud
from repro.serve.cache import LRUCache
from repro.serve.request import SceneRef, cloud_fingerprint


def params_key(params: BuildParams) -> tuple:
    """Hashable identity of a build-parameter set."""
    return astuple(params)


class SceneRegistry:
    """Builds scenes and acceleration structures exactly once per key.

    ``structure_key = (scene content hash, proxy, build params)`` — the
    scene *recipe* (name/scale/seed) never appears in it, so distinct refs
    that generate identical clouds share one build.
    """

    def __init__(
        self,
        scene_capacity: int = 8,
        structure_capacity: int = 16,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self._scenes = LRUCache(scene_capacity, name="registry.scenes")
        self._structures = LRUCache(structure_capacity, name="registry.structures")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        # Keys with a build in progress; waiters block on the condition.
        # (A set + condition instead of per-key Locks keeps memory bounded
        # by *concurrent* builds, not by every key ever seen.)
        self._building: set[tuple] = set()
        self._build_done = threading.Condition(self._lock)
        self.builds = 0
        self.disk_hits = 0
        self.disk_rejects = 0
        self.disk_write_errors = 0
        self.scene_builds = 0

    # -- scenes ---------------------------------------------------------

    def scene(self, ref: SceneRef | GaussianCloud) -> tuple[GaussianCloud, str]:
        """Resolve a ref to ``(cloud, content hash)``, generating once.

        Accepts an already-materialized cloud too (hashed, not cached:
        the caller owns its lifetime).
        """
        if isinstance(ref, GaussianCloud):
            return ref, cloud_fingerprint(ref)
        entry = self._scenes.get(ref.key)
        if entry is not None:
            return entry
        self._claim_build(("scene", ref.key))
        try:
            entry = self._scenes.peek(ref.key)
            if entry is None:
                cloud = ref.materialize()
                entry = (cloud, cloud_fingerprint(cloud))
                self._scenes.put(ref.key, entry)
                self._count("scene_builds")
        finally:
            self._release_build(("scene", ref.key))
        return entry

    # -- structures -----------------------------------------------------

    def structure(
        self,
        ref: SceneRef | GaussianCloud,
        proxy: str,
        params: BuildParams | None = None,
    ):
        """The acceleration structure for (scene, proxy, params).

        Returns the memoized structure when one exists; otherwise loads it
        from the disk cache or builds it. Concurrent requests for the same
        key serialize on a build claim so the build runs once.
        """
        params = params or BuildParams()
        cloud, scene_hash = self.scene(ref)
        key = (scene_hash, proxy, params_key(params))
        structure = self._structures.get(key)
        if structure is not None:
            return structure
        self._claim_build(key)
        try:
            # Re-check: another thread may have built while we waited.
            structure = self._structures.peek(key)
            if structure is not None:
                return structure
            structure = self._load_from_disk(key)
            if structure is None:
                from repro.eval.harness import build_structure_for

                t0 = time.perf_counter()
                with span("serve.build", proxy=proxy,
                          scene=str(key[0])[:16]):
                    structure = build_structure_for(cloud, proxy, params)
                get_registry().observe("serve.build_seconds",
                                       time.perf_counter() - t0)
                self._count("builds")
                self._save_to_disk(key, structure)
            self._structures.put(key, structure)
            return structure
        finally:
            self._release_build(key)

    def _count(self, name: str) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)
        # Mirrored into the obs registry so stats snapshots, serve-bench
        # reports, and the doctor's anomaly scan see registry health
        # without holding a SceneRegistry reference.
        get_registry().add(f"registry.{name}")

    def _claim_build(self, key: tuple) -> None:
        """Block until no other thread is building ``key``, then claim it."""
        with self._build_done:
            while key in self._building:
                self._build_done.wait()
            self._building.add(key)

    def _release_build(self, key: tuple) -> None:
        with self._build_done:
            self._building.discard(key)
            self._build_done.notify_all()

    # -- disk persistence -----------------------------------------------

    def _disk_path(self, key: tuple) -> Path | None:
        if self.cache_dir is None:
            return None
        scene_hash, proxy, pkey = key
        tag = "-".join(str(v) for v in pkey)
        return self.cache_dir / f"{scene_hash[:16]}.{proxy}.{tag}.npz"

    def _load_from_disk(self, key: tuple):
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        directive = chaos.point("registry.disk_load")
        if directive == "corrupt":
            # Damage the artifact the way a torn write or bit-rot would:
            # the load below must detect it, evict, and rebuild.
            try:
                path.write_bytes(b"\x00chaos-corrupted\x00")
            except OSError:
                pass
        elif directive is not None:
            chaos.execute("registry.disk_load", directive)
        try:
            structure = load_structure(path)
        except FileNotFoundError:
            # Lost the exists()/load race (another process evicted or
            # replaced the entry) — a plain miss, not corruption.
            return None
        except (StructureFormatError, OSError) as exc:
            # Truncated archives and stale versions raise
            # StructureFormatError; unreadable files (permissions, I/O
            # errors mid-read) raise OSError. Either way the entry is
            # untrustworthy: evict it and rebuild from source.
            self._count("disk_rejects")
            flight.record(obs_events.EVICTION, "registry.disk_reject",
                          path=path.name, error=repr(exc))
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        self._count("disk_hits")
        return structure

    def _save_to_disk(self, key: tuple, structure) -> None:
        """Best-effort persistence: an unwritable disk (full, read-only)
        must never fail the request — the in-memory build is still good.
        """
        path = self._disk_path(key)
        if path is None:
            return
        try:
            directive = chaos.point("registry.disk_save")
            if directive is not None:
                chaos.execute("registry.disk_save", directive)
            # Write-then-rename so a crashed write never leaves a
            # truncated archive under the final name. The suffix must
            # stay ".npz" or np.savez would append one and the rename
            # source would not exist.
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp.npz")
            os.close(fd)
            try:
                save_structure(structure, tmp)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            self._count("disk_write_errors")

    # -- accounting -----------------------------------------------------

    @property
    def structure_cache_stats(self):
        return self._structures.stats

    @property
    def scene_cache_stats(self):
        return self._scenes.stats

    def counters(self) -> dict[str, int]:
        return {
            "structure_builds": self.builds,
            "scene_builds": self.scene_builds,
            "disk_hits": self.disk_hits,
            "disk_rejects": self.disk_rejects,
            "disk_write_errors": self.disk_write_errors,
            "memory_hits": self._structures.hits,
        }
