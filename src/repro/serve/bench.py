"""Load generator and throughput report for the render service.

Three measurements, matching the serve subsystem's claims:

1. **Tile-parallel speedup** — one cold frame rendered through the
   :class:`TileScheduler` with 1 worker and with N workers; wall-clock
   ratio. (This is a hardware measurement: on a single-core host the
   ratio is ~1x and the report says how many cores were available.)
2. **Cached throughput** — a deterministic repeated-request workload
   against a :class:`RenderServer`: requests/second, p50/p95 latency and
   the frame-cache hit rate.
3. **Build dedup** — distinct (scene, proxy) pairs vs. structures
   actually built; redundant builds must be zero.

Used by ``python -m repro serve-bench`` and by
``benchmarks/bench_serve_throughput.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.eval.report import format_table
from repro.obs import Histogram, get_registry
from repro.rt import TraceConfig
from repro.serve.registry import SceneRegistry
from repro.serve.request import RenderRequest
from repro.serve.server import RenderServer
from repro.serve.tiles import TileScheduler, available_cores


@dataclass
class BenchReport:
    """Human-readable report plus the raw numbers behind it."""

    report: str
    metrics: dict

    def __str__(self) -> str:
        return self.report


def _percentiles_ms(samples: list[float]) -> dict[str, float]:
    """p50/p95/p99 of a sample list in milliseconds.

    Goes through :class:`repro.obs.Histogram` — the same bucketed
    estimator the live metrics use — so the numbers here match what a
    registry snapshot of the identical samples would report.
    """
    hist = Histogram()
    for sample in samples:
        hist.observe(float(sample))
    return {q: value * 1e3 for q, value in hist.percentiles().items()}


def bench_tile_speedup(
    scene: str,
    size: int,
    scale: float,
    tile: int,
    workers: int,
    proxy: str | None = None,
    engine: str = "scalar",
) -> dict:
    """Wall-clock for one cold frame, 1 worker vs ``workers`` workers.

    The parallel scheduler renders a *second* frame on its persistent
    pool too: the warm frame ships only a scene hash to workers that
    already hold the scene, so ``t_warm_s`` vs ``t_parallel_s`` is the
    pool-reuse win (and the returned pool counters prove the cache hits
    and steals happened).

    The measured structure is the paper's headline ``tlas+sphere`` for
    every engine; the config follows the engine: the scalar engine
    measures the service's GRTX defaults (checkpointing on), while
    ``packet``/``auto`` measure baseline mode (no checkpointing) so the
    vectorized two-level path is actually the thing timed rather than
    silently falling back to scalar.
    """
    if proxy is None:
        proxy = "tlas+sphere"
    registry = SceneRegistry()
    cloud, _ = registry.scene(RenderRequest(scene=scene, scale=scale).scene_ref)
    structure = registry.structure(RenderRequest(scene=scene, scale=scale).scene_ref, proxy)
    config = TraceConfig(k=8, checkpointing=engine == "scalar")
    from repro.render import default_camera_for

    camera = default_camera_for(cloud, size, size)

    timings = {}
    t_warm = None
    pool_stats: dict = {}
    tile_costs: list[float] = []
    worker_tile_costs: list[float] = []
    for n in dict.fromkeys((1, workers)):  # workers == 1: render once
        with TileScheduler(tile_size=(tile, tile), workers=n) as scheduler:
            t0 = time.perf_counter()
            result = scheduler.render(cloud, structure, config, camera,
                                      engine=engine)
            timings[n] = time.perf_counter() - t0
            assert result.stats.n_rays >= size * size
            if n == 1:
                tile_costs = [cost for _, cost in scheduler.last_tile_costs]
            if n > 1:
                t0 = time.perf_counter()
                warm = scheduler.render(cloud, structure, config, camera,
                                        engine=engine)
                t_warm = time.perf_counter() - t0
                assert warm.stats.n_rays >= size * size
                pool_stats = scheduler.pool_stats()
                # Worker-measured per-tile render costs: they rode back
                # with the task results, so this is the pool's view of
                # the same frame, not the parent's.
                worker_tile_costs = [cost for _, cost
                                     in scheduler.last_tile_costs]
    return {
        "frame": f"{size}x{size}",
        "tile": tile,
        "workers": workers,
        "engine": engine,
        "proxy": proxy,
        "cores_available": available_cores(),
        "t_serial_s": timings[1],
        "t_parallel_s": timings[workers],
        "t_warm_s": t_warm if t_warm is not None else timings[workers],
        "speedup": timings[1] / timings[workers] if timings[workers] > 0 else 0.0,
        "warm_speedup": (timings[1] / t_warm
                         if t_warm else
                         timings[1] / timings[workers] if timings[workers] else 0.0),
        "pool": pool_stats,
        "tile_latency_ms": _percentiles_ms(tile_costs),
        "worker_tile_latency_ms": _percentiles_ms(
            worker_tile_costs or tile_costs),
    }


def _workload_requests(
    scene: str, size: int, scale: float, proxies: tuple[str, ...],
    unique: int, total: int, engine: str = "scalar", mode: str = "grtx",
) -> list[RenderRequest]:
    """A deterministic repeated-request trace over ``unique`` configs.

    Raises :class:`ValueError` for degenerate workloads (no unique
    configs, or fewer total requests than unique configs).

    Distinct configs alternate proxies and step the k-buffer capacity —
    both are frame-key fields, and (proxy, k) pairs never repeat for any
    ``unique``, so each config really is a distinct cache entry. The
    repetition order is a fixed shuffle (rng seed 0): every unique config
    appears, and repeats arrive interleaved the way real traffic would.
    """
    if unique < 1:
        raise ValueError("--unique must be >= 1")
    if total < unique:
        raise ValueError(f"--requests ({total}) must be >= --unique ({unique})")
    uniques = [
        RenderRequest(
            scene=scene, scale=scale, width=size, height=size,
            proxy=proxies[i % len(proxies)], k=4 + i // len(proxies),
            engine=engine, mode=mode,
        )
        for i in range(unique)
    ]
    rng = np.random.default_rng(0)
    picks = list(range(unique)) + list(rng.integers(0, unique, size=total - unique))
    order = rng.permutation(len(picks))
    # Keep one guaranteed first-appearance of each unique config, then a
    # random mix; the permutation interleaves them.
    return [uniques[picks[i]] for i in order]


def bench_throughput(
    scene: str,
    size: int,
    scale: float,
    proxies: tuple[str, ...],
    unique: int,
    total: int,
    tile: int,
    engine: str = "scalar",
    mode: str = "grtx",
    workers: int = 1,
) -> dict:
    """Run the repeated-request workload through a server; measure.

    Requests go through the bounded ``submit()`` queue (sized to hold
    the whole burst) so the run exercises the dispatcher path and the
    mid-burst queue-depth / utilization gauges mean something. With
    ``workers > 1`` the cold renders fan out on the scheduler's pool —
    the full production path, and (when tracing) the path that puts
    server, scheduler, worker, and engine spans inside one request.
    """
    registry = SceneRegistry()
    requests = _workload_requests(scene, size, scale, proxies, unique, total,
                                  engine, mode)
    with RenderServer(registry=registry, frame_cache_size=max(64, unique),
                      tile_size=(tile, tile), workers=workers,
                      max_pending=max(total, 1)) as server:
        # Client-observed latency = submit -> completion (including
        # queue wait, stamped by a done-callback; response.latency_s
        # only covers service time once a dispatcher picks the job up).
        done_at: dict[int, float] = {}
        t0 = time.perf_counter()
        jobs = []
        for index, request in enumerate(requests):
            job = server.submit(request)
            submitted = time.perf_counter()
            job.future.add_done_callback(
                lambda _fut, i=index, t=submitted:
                    done_at.__setitem__(i, time.perf_counter() - t))
            jobs.append(job)
        burst = server.metrics.snapshot()  # queue still loaded
        for job in jobs:
            job.result()
        wall = time.perf_counter() - t0
        latencies = [done_at[i] for i in range(len(jobs))]
        snapshot = server.stats_report()

    distinct_pairs = {(req.scene_ref.key, req.proxy) for req in requests}
    builds = registry.builds
    served = snapshot["server"]
    cached = served["frame_hits"] + served["coalesced"]
    client = _percentiles_ms(latencies)
    return {
        "requests": total,
        "unique_configs": unique,
        "wall_s": wall,
        "throughput_rps": total / wall if wall > 0 else 0.0,
        "p50_ms": client["p50"],
        "p95_ms": client["p95"],
        "p99_ms": client["p99"],
        # Server-side view of the same traffic (service time once a
        # dispatcher picks the job up), from the server's own registry.
        "server_latency_ms": {
            q: served.get(f"latency_{q}", 0.0) * 1e3
            for q in ("p50", "p95", "p99")},
        "queue_wait_ms": {
            q: served.get(f"queue_wait_{q}", 0.0) * 1e3
            for q in ("p50", "p95", "p99")},
        "frame_hit_rate": served["frame_hit_rate"],
        "frame_hits": served["frame_hits"],
        "coalesced": served["coalesced"],
        "cache_served_rate": cached / total if total else 0.0,
        "rendered": served["rendered"],
        "rejected": served["rejected"],
        "queue_depth_burst": burst["gauge.queue_depth"],
        "max_pending": served["gauge.max_pending"],
        "worker_utilization": served["gauge.worker_utilization"],
        "distinct_scene_proxy_pairs": len(distinct_pairs),
        "bvh_builds": builds,
        "redundant_builds": builds - len(distinct_pairs),
        "obs": snapshot["obs"],
    }


def run_benchmark(
    scene: str = "train",
    size: int = 64,
    request_size: int = 24,
    scale: float = 1.0 / 2000.0,
    tile: int = 16,
    workers: int = 4,
    requests: int = 60,
    unique: int = 5,
    proxies: tuple[str, ...] | None = None,
    engine: str = "scalar",
) -> BenchReport:
    """Run all three measurements and format the report.

    With ``engine="packet"`` or ``"auto"`` the workload switches to
    baseline mode (no checkpointing) — the packet engine now covers
    both structure families, so the default proxies stay the service's
    two-level-plus-monolithic mix and the benchmark exercises the
    vectorized path instead of measuring a scalar fallback.
    """
    if proxies is None:
        proxies = ("tlas+sphere", "20-tri")
    mode = "grtx" if engine == "scalar" else "baseline"
    speedup = bench_tile_speedup(scene, size, scale, tile, workers,
                                 engine=engine)
    traffic = bench_throughput(scene, request_size, scale, proxies,
                               unique, requests, tile, engine, mode,
                               workers=workers)

    pool_stats = speedup.get("pool") or {}
    tile_lat = speedup["tile_latency_ms"]
    worker_lat = speedup["worker_tile_latency_ms"]
    server_lat = traffic["server_latency_ms"]
    build_hist = (traffic["obs"].get("histograms") or {}).get(
        "serve.build_seconds") or {}
    build_lat = {q: build_hist.get(q, 0.0) * 1e3 for q in ("p50", "p95", "p99")}

    def _pcols(lat: dict) -> list[str]:
        return [f"{lat['p50']:.2f}", f"{lat['p95']:.2f}", f"{lat['p99']:.2f}"]

    sections = [
        format_table(
            f"serve-bench 1/4: tile-parallel speedup (cold {speedup['frame']} "
            f"{speedup['proxy']} frame, {engine} engine, "
            f"{speedup['cores_available']} core(s) available)",
            ["tile", "workers", "serial (s)", "parallel (s)", "warm (s)",
             "speedup", "warm speedup",
             "tile p50 (ms)", "tile p95 (ms)", "tile p99 (ms)"],
            [[f"{tile}x{tile}", speedup["workers"],
              f"{speedup['t_serial_s']:.2f}", f"{speedup['t_parallel_s']:.2f}",
              f"{speedup['t_warm_s']:.2f}",
              f"{speedup['speedup']:.2f}x", f"{speedup['warm_speedup']:.2f}x"]
             + _pcols(tile_lat)],
        ),
        format_table(
            "serve-bench 2/4: worker pool (persistent, work-stealing; tile "
            "latencies are worker-measured, shipped back with results)",
            ["workers", "tasks", "steals", "scene ships", "scene cache hits",
             "crashes", "tile p50 (ms)", "tile p95 (ms)", "tile p99 (ms)"],
            [[pool_stats.get("workers", workers),
              pool_stats.get("tasks_completed", 0),
              pool_stats.get("steals", 0),
              pool_stats.get("scene_ships", 0),
              pool_stats.get("scene_cache_hits", 0),
              pool_stats.get("crashes", 0)] + _pcols(worker_lat)],
        ),
        format_table(
            f"serve-bench 3/4: cached throughput ({requests} requests, "
            f"{unique} unique configs, {request_size}x{request_size}, "
            f"{engine} engine, bounded submit queue; p50/p95/p99 are "
            "client-observed submit-to-completion)",
            ["throughput (req/s)", "p50 (ms)", "p95 (ms)", "p99 (ms)",
             "service p50/p95/p99 (ms)", "served from cache",
             "burst queue depth", "rejected"],
            [[f"{traffic['throughput_rps']:.1f}", f"{traffic['p50_ms']:.3f}",
              f"{traffic['p95_ms']:.1f}", f"{traffic['p99_ms']:.1f}",
              "/".join(_pcols(server_lat)),
              f"{traffic['cache_served_rate']:.1%}",
              f"{traffic['queue_depth_burst']}/{traffic['max_pending']}",
              traffic["rejected"]]],
        ),
        format_table(
            "serve-bench 4/4: BVH build dedup (build latencies are "
            "process-wide serve.build_seconds)",
            ["distinct (scene, proxy)", "structures built", "redundant builds",
             "build p50 (ms)", "build p95 (ms)", "build p99 (ms)"],
            [[traffic["distinct_scene_proxy_pairs"], traffic["bvh_builds"],
              traffic["redundant_builds"]] + _pcols(build_lat)],
        ),
    ]
    summary = (
        f"summary: speedup {speedup['speedup']:.2f}x cold / "
        f"{speedup['warm_speedup']:.2f}x warm with {workers} workers "
        f"on {speedup['cores_available']} core(s) | "
        f"served from cache {traffic['cache_served_rate']:.1%} | "
        f"redundant BVH builds {traffic['redundant_builds']}"
    )
    return BenchReport(
        report="\n\n".join(sections) + "\n\n" + summary,
        metrics={"speedup": speedup, "traffic": traffic},
    )
