"""The request-serving front end.

:class:`RenderServer` sits above the registry and the tile scheduler and
adds the two behaviors a service needs under repeated traffic:

* a **frame cache** — finished frames keyed by (scene content hash,
  camera, trace config), so an identical request is answered without
  tracing a single ray;
* **in-flight coalescing** — concurrent identical requests share one
  render: the first becomes the leader, the rest block on its completion
  and are answered from the fresh cache entry (the classic
  cache-stampede guard).

``render()`` is synchronous; ``submit()`` enqueues the same path onto a
**bounded** queue drained by a fixed set of dispatcher threads (no
thread-per-job: saturation rejects with :class:`ServerSaturated` instead
of growing without bound) and returns a
:class:`~repro.serve.request.RenderJob`; ``render_batch()`` dedupes a
whole batch, then renders its distinct frames concurrently through the
same dispatchers. The actual tracing fans out tile-by-tile on the
scheduler's persistent :class:`~repro.pool.WorkerPool`.
"""

from __future__ import annotations

import copy
import queue as queue_mod
import threading
import time
from typing import Callable

import repro.chaos as chaos
from repro.bvh import BuildParams
from repro.obs import MetricsRegistry, get_registry, span
from repro.obs import events as obs_events
from repro.obs import flight
from repro.pool import WorkerCrashError
from repro.render.renderer import RenderResult
from repro.serve.cache import LRUCache
from repro.serve.registry import SceneRegistry, params_key
from repro.serve.request import RenderJob, RenderRequest, RenderResponse
from repro.serve.tiles import TileScheduler


class ServerSaturated(RuntimeError):
    """``submit()`` was refused because the pending queue is full."""


class ServerMetrics:
    """Request counters and latency histograms for one server.

    A thin facade over a **private** :class:`~repro.obs.MetricsRegistry`
    (each server owns its own, so sequential servers in one process
    report exact per-server counts; the server merges it into the
    process-global registry on close). Counter fields of the old
    dataclass (``requests``, ``rendered``, ...) remain readable as
    attributes and in :meth:`snapshot` under their unprefixed names;
    inside the registry they live as ``serve.<name>``.

    ``gauges`` is an optional provider of instantaneous values (queue
    depth, worker utilization). In :meth:`snapshot` the provider's keys
    are namespaced ``gauge.<name>`` so a gauge can never shadow a
    counter (a provider returning ``rejected`` used to silently
    overwrite the rejection count), and the provider is deliberately
    called with **no lock held**: providers read other subsystems'
    state (the pool lock, the queue), and calling them under a metrics
    lock would order those locks.
    """

    _COUNTER_FIELDS = ("requests", "frame_hits", "coalesced", "rendered",
                       "rejected", "timed_out", "pool_fallbacks")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.gauges: Callable[[], dict] | None = None

    def count(self, field_name: str, amount: float = 1) -> None:
        self.registry.add(f"serve.{field_name}", amount)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the ``serve.<name>`` histogram."""
        self.registry.observe(f"serve.{name}", value)

    def __getattr__(self, name: str):
        if name in ServerMetrics._COUNTER_FIELDS:
            return int(self.registry.counter_value(f"serve.{name}"))
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    @property
    def render_seconds(self) -> float:
        """Total seconds spent actually rendering (histogram sum, plus
        anything legacy callers added through ``count``)."""
        hist = self.registry.histogram("serve.render_seconds")
        total = hist.sum if hist is not None else 0.0
        return total + self.registry.counter_value("serve.render_seconds")

    @property
    def frame_hit_rate(self) -> float:
        requests = self.requests
        return self.frame_hits / requests if requests else 0.0

    def snapshot(self) -> dict[str, float]:
        data: dict[str, float] = {
            name: getattr(self, name) for name in self._COUNTER_FIELDS
        }
        data["render_seconds"] = round(self.render_seconds, 6)
        data["frame_hit_rate"] = round(self.frame_hit_rate, 4)
        for metric in ("latency", "queue_wait", "render_seconds"):
            hist = self.registry.histogram(f"serve.{metric}")
            if hist is not None:
                for q, value in hist.percentiles().items():
                    data[f"{metric}_{q}"] = round(value, 6)
        if self.gauges is not None:
            # Outside any lock, on purpose — see the class docstring.
            for name, value in self.gauges().items():
                data[f"gauge.{name}"] = value
        return data


class _CircuitBreaker:
    """Pool-health circuit breaker (consecutive-failure, cooldown).

    ``threshold`` consecutive pooled-render failures open the circuit
    for ``cooldown_s``; while open, renders run serially in-process
    (bit-identical by the tiling contract). After the cooldown the next
    render tries the pool again — a success closes the circuit, another
    failure re-opens it (classic half-open probe).
    """

    def __init__(self, threshold: int = 2, cooldown_s: float = 5.0) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown_s = float(cooldown_s)
        self._lock = threading.Lock()
        self._failures = 0
        self._open_until = 0.0

    def allow_pool(self) -> bool:
        with self._lock:
            return time.monotonic() >= self._open_until

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._open_until = 0.0

    def record_failure(self) -> bool:
        """Count one pooled failure; True when this one *opened* the
        circuit (the caller dumps a single incident per opening)."""
        with self._lock:
            self._failures += 1
            if self._failures < self.threshold:
                return False
            now = time.monotonic()
            was_closed = now >= self._open_until
            self._open_until = now + self.cooldown_s
            return was_closed

    def is_open(self) -> bool:
        with self._lock:
            return time.monotonic() < self._open_until


class _InFlight:
    """One leader-owned render that followers wait on."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: RenderResponse | None = None
        self.error: BaseException | None = None


class RenderServer:
    """Serves render requests with scene, structure, and frame caching.

    Parameters
    ----------
    registry:
        Scene/structure registry to use (a private one is created when
        omitted; pass ``cache_dir`` through it for disk persistence).
    frame_cache_size:
        Entries in the finished-frame LRU.
    tile_size / workers:
        Tiling configuration forwarded to :class:`TileScheduler`; with
        ``workers > 1`` tiles render on the scheduler's persistent
        worker pool, reused across frames.
    submit_workers:
        Dispatcher-thread count draining the ``submit()`` queue.
    max_pending:
        Bound on queued (not yet dispatched) jobs; ``submit()`` raises
        :class:`ServerSaturated` beyond it.
    pool:
        An existing :class:`~repro.pool.WorkerPool` to render on, shared
        with other servers/callers (one fleet per host); the server
        creates its own when omitted and ``workers > 1``.
    task_deadline_s:
        Per-tile deadline forwarded to the scheduler's pool (the
        hung-worker watchdog; see :class:`~repro.pool.WorkerPool`).
    circuit_threshold / circuit_cooldown_s:
        Pool-health circuit breaker: after ``circuit_threshold``
        consecutive pooled-render failures (:class:`WorkerCrashError` —
        quarantined poison tasks, retries exhausted), renders degrade to
        the serial in-process path for ``circuit_cooldown_s`` seconds.
        Serial output is bit-identical to pooled output by the tiling
        contract, so the degradation is invisible in pixels — it is
        counted (``pool_fallbacks``), gauged (``circuit_open``), and
        bundled (``pool-circuit-open``) instead.
    """

    def __init__(
        self,
        registry: SceneRegistry | None = None,
        frame_cache_size: int = 64,
        tile_size: tuple[int, int] = (16, 16),
        workers: int = 1,
        build_params: BuildParams | None = None,
        submit_workers: int = 2,
        max_pending: int = 64,
        pool=None,
        task_deadline_s: float | None = None,
        circuit_threshold: int = 2,
        circuit_cooldown_s: float = 5.0,
    ) -> None:
        self.registry = registry or SceneRegistry()
        self.scheduler = TileScheduler(tile_size=tile_size, workers=workers,
                                       pool=pool,
                                       task_deadline_s=task_deadline_s)
        self._breaker = _CircuitBreaker(threshold=circuit_threshold,
                                        cooldown_s=circuit_cooldown_s)
        self.build_params = build_params or BuildParams()
        self._frames = LRUCache(frame_cache_size, name="serve.frames")
        # Constructed tracers (shading setup is O(scene)) reused across
        # frames of the same (scene hash, proxy, params, engine, config)
        # in serial mode.
        self._tracers = LRUCache(16, name="serve.tracers")
        self._inflight: dict[tuple, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self.metrics = ServerMetrics()
        self.metrics.gauges = self._gauges
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if submit_workers < 1:
            raise ValueError("submit_workers must be >= 1")
        self.max_pending = max_pending
        self.submit_workers = submit_workers
        self._queue: queue_mod.Queue = queue_mod.Queue(maxsize=max_pending)
        self._dispatchers: list[threading.Thread] = []
        self._dispatchers_busy = 0
        self._dispatch_lock = threading.Lock()
        self._closed = False
        self._obs_merged = False

    # -- sync API -------------------------------------------------------

    def render(self, request: RenderRequest) -> RenderResponse:
        """Serve one request: frame cache, then coalesce, then render."""
        if self._closed:
            raise RuntimeError("server is closed")
        return self._serve(request)

    def _serve(self, request: RenderRequest) -> RenderResponse:
        # The internal path skips the closed check so jobs already
        # accepted by submit() drain during close() instead of failing.
        with span("serve.request", scene=request.scene_ref.name,
                  width=request.width, height=request.height):
            return self._serve_inner(request)

    def _serve_inner(self, request: RenderRequest) -> RenderResponse:
        started = time.perf_counter()
        self.metrics.count("requests")
        directive = chaos.point("serve.request")
        if directive is not None:
            chaos.execute("serve.request", directive)

        cloud, scene_hash = self.registry.scene(request.scene_ref)
        key = request.frame_key(scene_hash)

        cached = self._frames.get(key)
        if cached is not None:
            self.metrics.count("frame_hits")
            return self._respond(request, cached, scene_hash, started,
                                 frame_cache_hit=True)

        entry, leader = self._join_or_lead(key)
        if not leader:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            self.metrics.count("coalesced")
            result = entry.response
            return self._respond(request, result, scene_hash, started,
                                 coalesced=True)

        # Re-check under leadership: a previous leader may have finished
        # (and vacated the in-flight table) between our miss above and
        # now — the classic stampede window.
        cached = self._frames.get(key)
        if cached is not None:
            entry.response = cached
            entry.event.set()
            with self._inflight_lock:
                self._inflight.pop(key, None)
            self.metrics.count("frame_hits")
            return self._respond(request, cached, scene_hash, started,
                                 frame_cache_hit=True)

        try:
            result = self._render_now(request, cloud, scene_hash)
            self._frames.put(key, result)
            entry.response = result
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            entry.event.set()
            with self._inflight_lock:
                self._inflight.pop(key, None)
        return self._respond(request, result, scene_hash, started)

    def render_batch(self, requests: list[RenderRequest]) -> list[RenderResponse]:
        """Serve a batch, computing each distinct frame at most once.

        Distinct frames are dispatched concurrently through the submit
        dispatchers (backpressured, never rejected: a synchronous batch
        caller is its own flow control). Within-batch duplicates are
        answered from the response their first occurrence produced
        (counted as frame hits) — guaranteed even when the batch holds
        more distinct frames than the frame cache does.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        leaders: dict[tuple, RenderJob] = {}
        keys: list[tuple] = []
        for request in requests:
            _, scene_hash = self.registry.scene(request.scene_ref)
            key = request.frame_key(scene_hash)
            keys.append((key, scene_hash))
            if key not in leaders:
                leaders[key] = self._enqueue(request, block=True)
        responses = []
        seen: set[tuple] = set()
        for request, (key, scene_hash) in zip(requests, keys):
            started = time.perf_counter()
            lead = leaders[key].result()
            if key in seen:
                self.metrics.count("requests")
                self.metrics.count("frame_hits")
                responses.append(self._respond(request, lead, scene_hash,
                                               started, frame_cache_hit=True))
            else:
                seen.add(key)
                responses.append(lead)
        return responses

    # -- async API ------------------------------------------------------

    def submit(self, request: RenderRequest) -> RenderJob:
        """Queue a request; returns a job whose ``result()`` blocks.

        The pending queue is bounded by ``max_pending``; beyond it,
        submission fails fast with :class:`ServerSaturated` (classic
        load shedding) instead of buffering without limit.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        return self._enqueue(request, block=False)

    def _enqueue(self, request: RenderRequest, block: bool) -> RenderJob:
        self._ensure_dispatchers()
        job = RenderJob(request=request)
        job.enqueued_ns = time.time_ns()
        job.on_timeout = self._job_timed_out
        try:
            if block:
                self._queue.put(job)
            else:
                self._queue.put_nowait(job)
        except queue_mod.Full:
            self.metrics.count("rejected")
            flight.record(obs_events.SHED, "serve.shed",
                          scene=request.scene_ref.name,
                          max_pending=self.max_pending)
            # Shedding is by design, but *that* it happened is incident-
            # worthy: dump a (rate-limited) bundle so a saturation storm
            # leaves evidence of what the server was doing when it hit
            # the wall. Dumping is I/O, but we hold no server lock here
            # and the submitter was getting an exception anyway.
            flight.dump_incident("server-saturated",
                                 scene=request.scene_ref.name,
                                 max_pending=self.max_pending)
            raise ServerSaturated(
                f"submit queue is full ({self.max_pending} pending); "
                "retry later or raise max_pending") from None
        return job

    def _ensure_dispatchers(self) -> None:
        with self._dispatch_lock:
            if self._dispatchers:
                return
            for index in range(self.submit_workers):
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-serve-{index}", daemon=True)
                thread.start()
                self._dispatchers.append(thread)

    def _dispatch_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.enqueued_ns:
                from repro.obs import emit_span

                dequeued_ns = time.time_ns()
                self.metrics.observe(
                    "queue_wait", (dequeued_ns - job.enqueued_ns) / 1e9)
                emit_span("serve.queue_wait", job.enqueued_ns, dequeued_ns,
                          scene=job.request.scene_ref.name)
            if not job.future.set_running_or_notify_cancel():
                # The waiter timed out and abandoned the job while it
                # sat queued — nobody wants this frame; skip the render.
                continue
            with self._dispatch_lock:
                self._dispatchers_busy += 1
            try:
                job.future.set_result(self._serve(job.request))
            except BaseException as exc:
                job.future.set_exception(exc)
            finally:
                with self._dispatch_lock:
                    self._dispatchers_busy -= 1

    def _job_timed_out(self, job: RenderJob, cancelled: bool) -> None:
        """Installed as every queued job's ``on_timeout`` hook."""
        self.metrics.count("timed_out")
        flight.record(obs_events.SHED, "serve.request_timeout",
                      scene=job.request.scene_ref.name,
                      cancelled=cancelled)

    def close(self) -> None:
        """Stop accepting work, drain queued jobs, release the pool."""
        self._closed = True
        with self._dispatch_lock:
            dispatchers = list(self._dispatchers)
        for _ in dispatchers:
            self._queue.put(None)  # FIFO: sentinels queue behind real jobs
        for thread in dispatchers:
            thread.join()
        # A submit() racing close() can slip a job in behind the
        # sentinels; fail anything left so no caller blocks forever.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue_mod.Empty:
                break
            if job is not None and not job.future.done():
                job.future.set_exception(RuntimeError("server is closed"))
        self.scheduler.close()
        # Fold this server's private metrics into the process-global
        # registry exactly once, so `repro stats` and obs snapshots see
        # servers that have come and gone. close() is idempotent.
        if not self._obs_merged:
            self._obs_merged = True
            get_registry().merge(self.metrics.registry.collect())

    def __enter__(self) -> "RenderServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- internals ------------------------------------------------------

    def _join_or_lead(self, key: tuple) -> tuple[_InFlight, bool]:
        with self._inflight_lock:
            entry = self._inflight.get(key)
            if entry is not None:
                return entry, False
            entry = self._inflight[key] = _InFlight()
            return entry, True

    def _render_now(self, request: RenderRequest, cloud, scene_hash: str) -> RenderResult:
        from repro.rt.packet import resolve_engine

        structure = self.registry.structure(
            request.scene_ref, request.proxy, self.build_params)
        camera = self._camera_for(request, cloud)
        config = request.trace_config()
        # Resolve the engine exactly once per rendered request (counting
        # a degraded explicit "packet" exactly once, whatever the tracer
        # cache holds), then hand the concrete engine to the renderer
        # and scheduler so nothing downstream re-resolves.
        engine = resolve_engine(request.engine, structure, config,
                                n_rays=request.width * request.height)
        renderer = None
        tracer_key = None
        if self.scheduler.workers <= 1:
            # Check the tracer *out* of the cache (pop, not get): Tracer
            # keeps per-ray scratch state, so two threads must never
            # trace through one instance concurrently. A concurrent
            # request simply builds its own.
            #
            # The key is content-based: scene hash + proxy + build
            # params + engine + the *full* TraceConfig. Keying by
            # id(cloud)/id(structure) let a recycled id of a dead scene
            # collide with a new one and serve a tracer built over the
            # wrong geometry, and omitting TraceConfig fields let a
            # cached renderer serve requests with a mismatched config
            # (the serial TileScheduler path traces with the passed
            # renderer's own config).
            tracer_key = (scene_hash, request.proxy,
                          params_key(self.build_params),
                          request.engine_active, config)
            renderer = self._tracers.pop(tracer_key)
            if renderer is None:
                from repro.render.renderer import GaussianRayTracer

                renderer = GaussianRayTracer(cloud, structure, config,
                                             engine=engine)
        pooled = self.scheduler.workers > 1
        force_serial = pooled and not self._breaker.allow_pool()
        t0 = time.perf_counter()
        try:
            with span("serve.render", scene=request.scene_ref.name,
                      engine=engine, width=request.width,
                      height=request.height):
                try:
                    result = self.scheduler.render(
                        cloud, structure, config, camera, renderer=renderer,
                        engine=engine, force_serial=force_serial)
                    if pooled and not force_serial:
                        self._breaker.record_success()
                except WorkerCrashError as exc:
                    if not pooled or force_serial:
                        raise
                    # The pool ate this frame (quarantined poison task,
                    # retries exhausted). The request is still
                    # servable: the serial path produces bit-identical
                    # pixels, so degrade — counted, gauged, and bundled,
                    # never silent.
                    opened = self._breaker.record_failure()
                    self.metrics.count("pool_fallbacks")
                    flight.record(obs_events.FALLBACK, "serve.pool_fallback",
                                  scene=request.scene_ref.name,
                                  error=repr(exc),
                                  circuit_open=self._breaker.is_open())
                    if opened:
                        flight.dump_incident(
                            "pool-circuit-open", error=repr(exc),
                            scene=request.scene_ref.name,
                            threshold=self._breaker.threshold,
                            cooldown_s=self._breaker.cooldown_s)
                    result = self.scheduler.render(
                        cloud, structure, config, camera, renderer=renderer,
                        engine=engine, force_serial=True)
        finally:
            if renderer is not None:
                self._tracers.put(tracer_key, renderer)
        self.metrics.count("rendered")
        self.metrics.observe("render_seconds", time.perf_counter() - t0)
        return result

    def _camera_for(self, request: RenderRequest, cloud):
        from repro.render import default_camera_for

        if request.camera != "pinhole":
            raise ValueError(
                f"unsupported camera {request.camera!r}; the service renders "
                "pinhole views (extend _camera_for to add more)")
        return default_camera_for(cloud, request.width, request.height)

    def _respond(
        self,
        request: RenderRequest,
        result: RenderResult | RenderResponse,
        scene_hash: str,
        started: float,
        frame_cache_hit: bool = False,
        coalesced: bool = False,
    ) -> RenderResponse:
        # Cached frames are shared between responses; hand out copies so
        # one caller mutating its image or stats cannot poison the cache.
        latency = time.perf_counter() - started
        self.metrics.observe("latency", latency)
        return RenderResponse(
            request=request,
            image=result.image.copy(),
            scene_hash=scene_hash,
            stats=copy.copy(result.stats),
            frame_cache_hit=frame_cache_hit,
            coalesced=coalesced,
            latency_s=latency,
        )

    # -- reporting ------------------------------------------------------

    def _gauges(self) -> dict[str, float]:
        """Instantaneous load gauges merged into metric snapshots.

        ``packet_fallbacks`` counts engine="packet" requests that
        degraded to the scalar tracer. It reads the process-global
        registry counter ``rt.packet_fallbacks`` rather than the legacy
        in-process global: worker processes fold their fallback counts
        into that registry with every task result, so pooled renders
        whose fallback fired *inside a worker* are counted too (the old
        gauge silently missed them).
        """
        pool = self.scheduler.pool
        with self._dispatch_lock:
            busy = self._dispatchers_busy
        return {
            "queue_depth": self._queue.qsize(),
            "max_pending": self.max_pending,
            "dispatchers_busy": busy,
            "worker_utilization": round(
                pool.utilization() if pool is not None else 0.0, 4),
            "packet_fallbacks": int(
                get_registry().counter_value("rt.packet_fallbacks")),
            "circuit_open": int(self._breaker.is_open()),
        }

    @property
    def frame_cache_stats(self):
        return self._frames.stats

    def stats_report(self) -> dict[str, object]:
        """One dict with every serving counter (metrics + caches + pool)."""
        return {
            "server": self.metrics.snapshot(),
            "frame_cache": self._frames.stats,
            "registry": self.registry.counters(),
            "pool": self.scheduler.pool_stats(),
            "obs": get_registry().snapshot(),
        }
