"""Plain-text tables mirroring the paper's figure series."""

from __future__ import annotations

import math
from collections.abc import Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the aggregate the paper reports for speedups."""
    values = [v for v in values if v > 0.0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str | None = None,
) -> str:
    """Render an aligned text table (what the benchmark harness prints)."""
    header = [str(c) for c in columns]
    body = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    for row in body:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if notes:
        lines.append(f"note: {notes}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
