"""Evaluation harness: the paper's workloads and per-figure experiments."""

from repro.eval.harness import (
    BENCH_RESOLUTION,
    BENCH_SCALE,
    CachedRun,
    SCENES,
    clear_caches,
    get_cloud,
    get_structure,
    run_config,
)
from repro.eval.report import format_table, geomean

__all__ = [
    "BENCH_RESOLUTION",
    "BENCH_SCALE",
    "CachedRun",
    "SCENES",
    "clear_caches",
    "format_table",
    "geomean",
    "get_cloud",
    "get_structure",
    "run_config",
]
