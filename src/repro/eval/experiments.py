"""One experiment function per table and figure of the paper.

Each function renders (or reuses) the needed configurations through
:func:`repro.eval.harness.run_config`, assembles the same rows/series the
paper plots, and returns an :class:`ExperimentResult` whose ``table``
property is a printable text table. The benchmark suite under
``benchmarks/`` calls exactly these functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.harness import (
    BENCH_RESOLUTION,
    BENCH_SCALE,
    FIG13_CONFIGS,
    SCENES,
    get_cloud,
    get_structure,
    run_config,
)
from repro.eval.report import format_table, geomean
from repro.gaussians.synthetic import WORKLOAD_SPECS
from repro.hwsim import GpuConfig, raster_cycles
from repro.hwsim.rtunit import checkpoint_buffer_bytes, checkpoint_hardware_cost
from repro.render import GaussianRasterizer, default_camera_for

_MB = 1024.0 * 1024.0


@dataclass
class ExperimentResult:
    """Rows + metadata for one reproduced table/figure."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: str | None = None

    @property
    def table(self) -> str:
        return format_table(f"{self.exp_id}: {self.title}", self.columns, self.rows, self.notes)

    def column(self, name: str) -> list[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def row(self, key: str) -> list[object]:
        for row in self.rows:
            if row and str(row[0]) == key:
                return row
        raise KeyError(f"no row {key!r} in {self.exp_id}")


# ---------------------------------------------------------------------------
# Motivation (Section III)
# ---------------------------------------------------------------------------

def fig04a(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 4(a): rasterization (3DGS) vs ray tracing (3DGRT) time."""
    scenes = scenes or SCENES
    gpu = GpuConfig.rtx_like()
    rows = []
    slowdowns = []
    for scene in scenes:
        cloud = get_cloud(scene)
        camera = default_camera_for(cloud, *BENCH_RESOLUTION)
        raster = GaussianRasterizer(cloud).render(camera)
        raster_ms = gpu.cycles_to_ms(raster_cycles(raster, gpu))
        rt = run_config(scene, proxy="20-tri", k=16)
        slowdown = rt.time_ms / raster_ms if raster_ms else 0.0
        slowdowns.append(slowdown)
        rows.append([scene, raster_ms, rt.time_ms, slowdown])
    rows.append(["geomean", "", "", geomean(slowdowns)])
    return ExperimentResult(
        "fig04a", "3DGS rasterization vs 3DGRT ray tracing (model ms)",
        ["scene", "3DGS (ms)", "3DGRT (ms)", "RT slowdown"],
        rows,
        notes="paper: ray tracing ~3.04x slower on average",
    )


def fig04b(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 4(b): single tracing round, isolating each operation."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        run = run_config(scene, proxy="20-tri", k=16)
        rounds = max(run.stats.rounds_total / max(run.stats.n_rays, 1), 1.0)
        gpu = GpuConfig.rtx_like()
        trav = gpu.cycles_to_ms(run.timing.traversal_cycles) / rounds
        sort = gpu.cycles_to_ms(run.timing.sorting_cycles) / rounds
        blend = gpu.cycles_to_ms(run.timing.blending_cycles) / rounds
        rows.append([scene, trav, trav + sort, trav + sort + blend])
    return ExperimentResult(
        "fig04b", "Per-round time: traversal / +sorting / +blending (model ms)",
        ["scene", "traversal", "+sorting", "+blending"],
        rows,
        notes="paper: BVH traversal dominates; sorting/blending marginal",
    )


def fig05(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 5: icosahedron mesh vs custom primitive (time and BVH size)."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        ico = run_config(scene, proxy="20-tri", k=16)
        custom = run_config(scene, proxy="custom", k=16)
        rows.append([
            scene,
            ico.time_ms,
            custom.time_ms,
            ico.structure_bytes / _MB,
            custom.structure_bytes / _MB,
        ])
    return ExperimentResult(
        "fig05", "Bounding primitives: 20-tri icosahedron vs custom ellipsoid",
        ["scene", "ico time (ms)", "custom time (ms)", "ico BVH (MB)", "custom BVH (MB)"],
        rows,
        notes="paper: custom primitives are slower (software tests) but far smaller BVHs",
    )


def fig06a(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 6(a): multi-round (k=16) vs single-round traversal."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        multi = run_config(scene, proxy="20-tri", k=16, mode="multiround")
        single = run_config(scene, proxy="20-tri", k=16, mode="singleround")
        rows.append([scene, multi.time_ms, single.time_ms, single.time_ms / multi.time_ms])
    return ExperimentResult(
        "fig06a", "Multi-round vs single-round traversal (k=16)",
        ["scene", "multi-round (ms)", "single-round (ms)", "single/multi"],
        rows,
        notes="paper: multi-round wins thanks to early ray termination",
    )


def fig06b(scenes: list[str] | None = None,
           k_values: tuple[int, ...] = (4, 8, 16, 32, 64)) -> ExperimentResult:
    """Figure 6(b): baseline rendering time across k values."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        row: list[object] = [scene]
        for k in k_values:
            row.append(run_config(scene, proxy="20-tri", k=k).time_ms)
        rows.append(row)
    return ExperimentResult(
        "fig06b", "Baseline rendering time vs k-buffer size (model ms)",
        ["scene"] + [f"k={k}" for k in k_values],
        rows,
    )


def fig07(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 7: unique vs total node visits across rounds (k=16)."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        run = run_config(scene, proxy="20-tri", k=16)
        stats = run.stats
        rows.append([
            scene,
            stats.unique_internal_visits, stats.unique_leaf_visits,
            stats.total_internal_visits, stats.total_leaf_visits,
            stats.redundancy,
        ])
    return ExperimentResult(
        "fig07", "Unique vs total visited nodes across rounds (k=16)",
        ["scene", "uniq internal", "uniq leaf", "total internal", "total leaf", "total/unique"],
        rows,
        notes="paper: a non-negligible gap => redundant re-traversal across rounds",
    )


# ---------------------------------------------------------------------------
# Configuration tables
# ---------------------------------------------------------------------------

def table1() -> ExperimentResult:
    """Table I: simulated GPU configuration."""
    gpu = GpuConfig.rtx_like()
    rows = [[k, v] for k, v in gpu.table1_rows()]
    return ExperimentResult("table1", "Simulation configuration", ["parameter", "value"], rows)


def table2(scenes: list[str] | None = None) -> ExperimentResult:
    """Table II: workload summary with BVH sizes and footprints."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        spec = WORKLOAD_SPECS[scene]
        cloud = get_cloud(scene)
        mono = run_config(scene, proxy="20-tri", k=8)
        tlas = run_config(scene, proxy="tlas+20-tri", k=8)
        rows.append([
            scene,
            f"{spec.native_resolution[0]}x{spec.native_resolution[1]}",
            len(cloud),
            mono.bvh.height,
            mono.structure_bytes / _MB,
            tlas.structure_bytes / _MB,
            mono.timing.footprint_bytes / _MB,
            tlas.timing.footprint_bytes / _MB,
        ])
    return ExperimentResult(
        "table2", "Workloads: BVH size and traversal memory footprint",
        ["scene", "native res", "#gauss", "height(20-tri)",
         "BVH 20-tri (MB)", "BVH TLAS+20 (MB)",
         "footprint 20-tri (MB)", "footprint TLAS+20 (MB)"],
        rows,
        notes=f"scenes generated at {BENCH_SCALE:.4f} of the paper's Gaussian counts",
    )


# ---------------------------------------------------------------------------
# Main results (Section V)
# ---------------------------------------------------------------------------

def fig12(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 12: GRTX-SW speedups for four Gaussian geometries."""
    scenes = scenes or SCENES
    proxies = ("20-tri", "80-tri", "tlas+20-tri", "tlas+80-tri")
    rows = []
    speedups: dict[str, list[float]] = {p: [] for p in proxies}
    for scene in scenes:
        base = run_config(scene, proxy="20-tri", k=8)
        row: list[object] = [scene]
        for proxy in proxies:
            run = run_config(scene, proxy=proxy, k=8)
            s = base.time_ms / run.time_ms
            speedups[proxy].append(s)
            row.append(s)
        rows.append(row)
    rows.append(["geomean"] + [geomean(speedups[p]) for p in proxies])
    return ExperimentResult(
        "fig12", "GRTX-SW speedup over 20-tri monolithic baseline",
        ["scene"] + list(proxies), rows,
        notes="paper: TLAS+20/80-tri beat both monolithic variants",
    )


def fig13(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 13: end-to-end speedups of GRTX-SW / GRTX-HW / GRTX."""
    scenes = scenes or SCENES
    rows = []
    speedups: dict[str, list[float]] = {name: [] for name in FIG13_CONFIGS}
    for scene in scenes:
        base = run_config(scene, k=8, **FIG13_CONFIGS["Baseline"])
        row: list[object] = [scene]
        for name, kwargs in FIG13_CONFIGS.items():
            run = run_config(scene, k=8, **kwargs)
            s = base.time_ms / run.time_ms
            speedups[name].append(s)
            row.append(s)
        rows.append(row)
    rows.append(["geomean"] + [geomean(speedups[name]) for name in FIG13_CONFIGS])
    return ExperimentResult(
        "fig13", "End-to-end speedup over the 20-tri baseline",
        ["scene"] + list(FIG13_CONFIGS), rows,
        notes="paper: GRTX 4.36x average (up to 6.09x); GRTX-HW alone 1.94x",
    )


def _normalized_metric(metric: str, title: str, exp_id: str, notes: str,
                       scenes: list[str] | None = None,
                       invert: bool = False) -> ExperimentResult:
    """Shared shape of Figures 14, 15, 17: metric normalized to baseline."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        base_value = None
        row: list[object] = [scene]
        for name, kwargs in FIG13_CONFIGS.items():
            run = run_config(scene, k=8, **kwargs)
            value = getattr(run.timing, metric)
            if base_value is None:
                base_value = value
            norm = value / base_value if base_value else 0.0
            row.append(norm)
        rows.append(row)
    return ExperimentResult(exp_id, title, ["scene"] + list(FIG13_CONFIGS), rows, notes)


def fig14(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 14: node fetches normalized to the baseline."""
    return _normalized_metric(
        "node_fetches", "Node fetches (normalized to baseline)", "fig14",
        "paper: GRTX reduces fetches 3.03x on average", scenes,
    )


def fig15(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 15: average node fetch latency normalized to the baseline."""
    return _normalized_metric(
        "avg_fetch_latency", "Average node fetch latency (normalized)", "fig15",
        "paper: GRTX reduces average fetch latency 1.77x", scenes,
    )


def fig16(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 16: L1 cache hit rate for node fetches."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        row: list[object] = [scene]
        for name, kwargs in FIG13_CONFIGS.items():
            run = run_config(scene, k=8, **kwargs)
            row.append(run.timing.l1_hit_rate)
        rows.append(row)
    return ExperimentResult(
        "fig16", "L1 hit rate for node fetches",
        ["scene"] + list(FIG13_CONFIGS), rows,
        notes="paper: GRTX-SW exceeds 70% on every scene",
    )


def fig17(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 17: L2 accesses normalized to the baseline."""
    return _normalized_metric(
        "l2_accesses", "L2 cache accesses (normalized)", "fig17",
        "paper: GRTX reduces L2 accesses 4.75x", scenes,
    )


# ---------------------------------------------------------------------------
# Sensitivity (Section V-D)
# ---------------------------------------------------------------------------

def fig18(scenes: list[str] | None = None,
          k_values: tuple[int, ...] = (4, 8, 16, 32, 64)) -> ExperimentResult:
    """Figure 18: GRTX performance across k-buffer sizes (normalized to k=4)."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        base = run_config(scene, proxy="tlas+20-tri", checkpointing=True, k=k_values[0])
        row: list[object] = [scene]
        for k in k_values:
            run = run_config(scene, proxy="tlas+20-tri", checkpointing=True, k=k)
            row.append(base.time_ms / run.time_ms)
        rows.append(row)
    return ExperimentResult(
        "fig18", "GRTX speedup vs k (normalized to k=4)",
        ["scene"] + [f"k={k}" for k in k_values], rows,
        notes="paper: k=8 is the sweet spot; k=4 loses to straggler overhead",
    )


def fig19(scenes: tuple[str, str] = ("train", "truck")) -> ExperimentResult:
    """Figure 19: resolution / FoV sensitivity (speedups + L1 hit rate)."""
    rows = []
    hi_res = (BENCH_RESOLUTION[0] * 2, BENCH_RESOLUTION[1] * 2)
    settings = [
        ("hi-res/orig-FoV", dict(resolution=hi_res, fov_mode="original")),
        ("low-res/cropped-FoV", dict(resolution=BENCH_RESOLUTION, fov_mode="cropped")),
    ]
    for setting_name, setting in settings:
        for scene in scenes:
            base = run_config(scene, k=8, **FIG13_CONFIGS["Baseline"], **setting)
            row: list[object] = [f"{scene} ({setting_name})"]
            for name, kwargs in FIG13_CONFIGS.items():
                run = run_config(scene, k=8, **kwargs, **setting)
                row.append(base.time_ms / run.time_ms)
            row.append(base.timing.l1_hit_rate)
            grtx_sw = run_config(scene, k=8, **FIG13_CONFIGS["GRTX-SW"], **setting)
            row.append(grtx_sw.timing.l1_hit_rate)
            rows.append(row)
    return ExperimentResult(
        "fig19", "Speedup and L1 hit rate across resolution / FoV settings",
        ["scene (setting)"] + list(FIG13_CONFIGS) + ["base L1", "GRTX-SW L1"], rows,
        notes="paper: GRTX-HW consistent; GRTX-SW gains shrink with coherent rays",
    )


def fig20(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 20: checkpoint + eviction buffer memory usage (8 SMs)."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        run = run_config(scene, proxy="tlas+20-tri", checkpointing=True, k=8)
        ckpt, evict = checkpoint_buffer_bytes(
            run.stats.ckpt_high_water, run.stats.evict_high_water
        )
        rows.append([scene, run.stats.ckpt_high_water, run.stats.evict_high_water,
                     ckpt / _MB, evict / _MB, (ckpt + evict) / _MB])
    return ExperimentResult(
        "fig20", "Checkpoint / eviction buffer memory (8 SM configuration)",
        ["scene", "max ckpt entries/ray", "max evict entries/ray",
         "ckpt (MB)", "evict (MB)", "total (MB)"],
        rows,
        notes="paper: worst case (Train) 97.68 MB combined",
    )


def table3() -> ExperimentResult:
    """Table III: GRTX-HW per-RT-core storage cost."""
    hw = checkpoint_hardware_cost()
    rows = [
        ["replay flag + src/dst offsets per thread", f"{hw.per_thread_bits} bits"],
        ["threads per warp", hw.threads_per_warp],
        ["warp buffer entries", hw.warps],
        ["src/dst base + max size registers", f"{hw.base_register_bytes} B"],
        ["total per RT core", f"{hw.total_kb:.2f} KB"],
    ]
    return ExperimentResult(
        "table3", "GRTX-HW hardware cost", ["component", "size"], rows,
        notes="paper: 1.05 KB per RT core",
    )


# ---------------------------------------------------------------------------
# Analysis & discussion (Section VI)
# ---------------------------------------------------------------------------

def fig21(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 21: OptiX-style payload k-buffer vs Vulkan-style SoA buffer."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        optix = run_config(scene, proxy="20-tri", k=16, kbuffer_layout="payload")
        vulkan = run_config(scene, proxy="20-tri", k=16, kbuffer_layout="soa")
        rows.append([scene, optix.time_ms, vulkan.time_ms, vulkan.time_ms / optix.time_ms])
    return ExperimentResult(
        "fig21", "OptiX (payload k-buffer, k=16) vs Vulkan (SoA k-buffer)",
        ["scene", "OptiX-style (ms)", "Vulkan-style (ms)", "Vulkan/OptiX"],
        rows,
        notes="paper: the Vulkan implementation performs similarly to OptiX",
    )


def fig22(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 22: GRTX-SW with the hardware sphere primitive."""
    scenes = scenes or SCENES
    rows = []
    speeds = []
    for scene in scenes:
        base = run_config(scene, proxy="20-tri", k=8)
        sphere = run_config(scene, proxy="tlas+sphere", k=8)
        s = base.time_ms / sphere.time_ms
        speeds.append(s)
        rows.append([scene, s])
    rows.append(["geomean", geomean(speeds)])
    return ExperimentResult(
        "fig22", "GRTX-SW sphere-primitive speedup over 20-tri baseline",
        ["scene", "speedup"], rows,
        notes="paper: notable speedup, but below TLAS+80-tri (sphere test throughput)",
    )


def fig23(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 23: GRTX-HW on primary vs secondary rays."""
    scenes = scenes or SCENES
    rows = []
    for scene in scenes:
        base = run_config(scene, proxy="20-tri", k=8, objects=True)
        hw = run_config(scene, proxy="20-tri", k=8, checkpointing=True, objects=True)
        primary = (base.timing.label_cycles["primary"]
                   / max(hw.timing.label_cycles["primary"], 1e-9))
        base_sec = base.timing.label_cycles["secondary"]
        hw_sec = hw.timing.label_cycles["secondary"]
        secondary = base_sec / hw_sec if hw_sec else 0.0
        rows.append([scene, primary, secondary])
    return ExperimentResult(
        "fig23", "GRTX-HW speedup on primary vs secondary rays",
        ["scene", "primary speedup", "secondary speedup"], rows,
        notes="paper: similar speedups for both ray types (per-ray redundancy removal)",
    )


def fig24(scenes: list[str] | None = None) -> ExperimentResult:
    """Figure 24: AMD-like GPU; monolithic BVHs exceed the 4 GB cap."""
    scenes = scenes or SCENES
    proxies = ("20-tri", "80-tri", "tlas+20-tri", "tlas+80-tri")
    gpu = GpuConfig.amd_like(scene_scale=BENCH_SCALE * 100.0)
    rows = []
    for scene in scenes:
        ref = run_config(scene, proxy="tlas+80-tri", k=8, gpu="amd")
        row: list[object] = [scene]
        for proxy in proxies:
            structure = get_structure(scene, proxy)
            scaled = structure.total_bytes * gpu.bvh_size_scale
            if gpu.max_buffer_bytes is not None and scaled > gpu.max_buffer_bytes:
                row.append("x (OOM)")
                continue
            run = run_config(scene, proxy=proxy, k=8, gpu="amd")
            row.append(run.time_ms / ref.time_ms)
        rows.append(row)
    return ExperimentResult(
        "fig24", "AMD-like GPU: rendering time normalized to TLAS+80-tri",
        ["scene"] + list(proxies), rows,
        notes="paper: monolithic 20/80-tri exceed the 4 GB Vulkan allocation cap "
              "on most scenes (x); shared-BLAS configurations fit and win",
    )


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures
# ---------------------------------------------------------------------------

def ablation_prefetch(scenes: list[str] | None = None) -> ExperimentResult:
    """Sibling-node prefetcher on/off (the Section V-A fidelity knob)."""
    scenes = scenes or SCENES[:3]
    rows = []
    for scene in scenes:
        on = run_config(scene, proxy="20-tri", k=8, prefetch=True)
        off = run_config(scene, proxy="20-tri", k=8, prefetch=False)
        rows.append([scene, on.timing.l1_hit_rate, off.timing.l1_hit_rate,
                     off.time_ms / on.time_ms])
    return ExperimentResult(
        "ablation-prefetch", "Sibling prefetcher: L1 hit rate and speedup",
        ["scene", "L1 (prefetch on)", "L1 (prefetch off)", "speedup from prefetch"], rows,
    )


def ablation_bvh_width(scene: str = "bonsai",
                       widths: tuple[int, ...] = (2, 4, 6, 8)) -> ExperimentResult:
    """BVH branching factor sweep (the paper fixes BVH-6 via Embree)."""
    rows = []
    for width in widths:
        run = run_config(scene, proxy="tlas+20-tri", k=8, width=width)
        rows.append([width, run.bvh.height, run.structure_bytes / _MB, run.time_ms])
    return ExperimentResult(
        "ablation-width", f"BVH branching factor sweep ({scene})",
        ["width", "height", "BVH (MB)", "time (ms)"], rows,
    )


def quality_equivalence(scenes: list[str] | None = None) -> ExperimentResult:
    """Rendering-quality validation (the paper's Section III-C premise:
    "rendering quality remains the same regardless of bounding
    primitives"). PSNR of every structure's image against the exact
    unit-sphere reference, plus baseline-vs-GRTX-HW bit equality."""
    scenes = scenes or SCENES
    from repro.render import psnr
    rows = []
    for scene in scenes:
        ref = run_config(scene, proxy="tlas+sphere", k=8)
        custom = run_config(scene, proxy="custom", k=8)
        tri = run_config(scene, proxy="20-tri", k=8)
        tlas_tri = run_config(scene, proxy="tlas+20-tri", k=8)
        hw = run_config(scene, proxy="20-tri", k=8, checkpointing=True)
        rows.append([
            scene,
            psnr(custom.image, ref.image),
            psnr(tri.image, ref.image),
            psnr(tlas_tri.image, tri.image),
            "yes" if np.array_equal(hw.image, tri.image) else "NO",
        ])
    return ExperimentResult(
        "quality", "Rendering equivalence across structures",
        ["scene", "custom vs sphere (dB)", "20-tri vs sphere (dB)",
         "tlas+20 vs mono-20 (dB)", "HW == baseline"],
        rows,
        notes="exact primitives match bit-for-bit (inf dB); proxy families "
              "differ only in the 3DGRT sort key; checkpointing is lossless",
    )


def ablation_builder(scene: str = "bonsai") -> ExperimentResult:
    """BVH build strategy comparison: binned SAH vs median vs LBVH.

    The paper builds with Embree's binned SAH; GPU drivers typically use
    Morton-code LBVHs for build speed. This ablation quantifies the tree
    quality (SAH cost, sibling overlap) and traversal cost each strategy
    trades away on a Gaussian workload.
    """
    from repro.bvh import BuildParams, build_two_level, tree_quality
    from repro.render import GaussianRayTracer, default_camera_for

    cloud = get_cloud(scene)
    rows = []
    for strategy in ("sah", "median", "lbvh"):
        structure = build_two_level(
            cloud, "sphere", params=BuildParams(strategy=strategy))
        quality = tree_quality(structure.tlas)
        renderer = GaussianRayTracer(cloud, structure, _trace_config(k=8),
                                     engine="auto")
        result = renderer.render(
            default_camera_for(cloud, *BENCH_RESOLUTION))
        from repro.hwsim import replay as hw_replay
        timing = hw_replay(result.traces, GpuConfig.rtx_like())
        rows.append([
            strategy, quality.sah_cost, quality.mean_sibling_overlap,
            quality.height, timing.node_fetches, timing.time_ms,
        ])
    return ExperimentResult(
        "ablation-builder", f"BVH build strategy ({scene}, TLAS+sphere)",
        ["strategy", "SAH cost", "sibling overlap", "height",
         "node fetches", "time (ms)"],
        rows,
        notes="binned SAH is the paper's Embree configuration; LBVH is the "
              "GPU-driver fast path; all three render identical images",
    )


def ablation_treelet(scene: str = "drjohnson") -> ExperimentResult:
    """Treelet prefetching (MICRO'23) vs the sibling prefetcher vs both.

    The paper calls treelet prefetching orthogonal to GRTX; here we
    measure it on the Gaussian workload. Finding: it recovers most of the
    sibling prefetcher's benefit when that is absent, but adds nothing —
    and slightly pollutes the L1 — on top of it.
    """
    from dataclasses import replace as dc_replace

    from repro.hwsim import replay as hw_replay
    from repro.hwsim.treelet import build_treelet_map
    from repro.render import GaussianRayTracer, default_camera_for

    cloud = get_cloud(scene)
    structure = get_structure(scene, "20-tri")
    renderer = GaussianRayTracer(cloud, structure, _trace_config(k=8),
                                 engine="auto")
    result = renderer.render(default_camera_for(cloud, *BENCH_RESOLUTION))
    treelets = build_treelet_map(structure, 1024)

    configs = [
        ("none", dc_replace(GpuConfig.rtx_like(), prefetch_enabled=False), None),
        ("treelet", dc_replace(GpuConfig.rtx_like(), prefetch_enabled=False), treelets),
        ("sibling", GpuConfig.rtx_like(), None),
        ("sibling+treelet", GpuConfig.rtx_like(), treelets),
    ]
    rows = []
    for label, config, tmap in configs:
        timing = hw_replay(result.traces, config, treelet_map=tmap)
        rows.append([label, timing.avg_fetch_latency, timing.l1_hit_rate,
                     timing.prefetches, timing.time_ms])
    return ExperimentResult(
        "ablation-treelet", f"Prefetch policy comparison ({scene}, 20-tri)",
        ["policy", "fetch latency", "L1 hit rate", "prefetches", "time (ms)"],
        rows,
    )


def ablation_predictor(scenes: list[str] | None = None) -> ExperimentResult:
    """Why the ray predictor (MICRO'21) does not transfer (Section VII).

    The predictor's own metric (hit rate) is high — rays re-find their
    last first-hit — but volume rendering needs *all* intersections, so
    one verified prediction covers only 1/mean_blended of the required
    work. The savable-traversal column is the product, an upper bound on
    benefit.
    """
    from repro.render import GaussianRayTracer, PinholeCamera, default_camera_for
    from repro.rt import analyze_predictor

    scenes = scenes or SCENES[:3]
    rows = []
    for scene in scenes:
        cloud = get_cloud(scene)
        structure = get_structure(scene, "tlas+sphere")
        renderer = GaussianRayTracer(cloud, structure, _trace_config(k=8))
        cam1 = default_camera_for(cloud, 12, 12)
        step = 0.002 * float(np.abs(cloud.means - cloud.means.mean(0)).max())
        cam2 = PinholeCamera(cam1.position + step, cam1.look_at, cam1.up,
                             12, 12, cam1.fov_y)
        report = analyze_predictor(renderer, cam1, cam2)
        rows.append([scene, report.hit_rate, report.mean_blended,
                     report.mean_coverage, report.traversal_savable_fraction])
    return ExperimentResult(
        "ablation-predictor", "Ray predictor coverage on Gaussian RT",
        ["scene", "prediction hit rate", "mean blended/ray",
         "coverage", "savable traversal (bound)"],
        rows,
        notes="high hit rate but low coverage: one predicted hit cannot "
              "replace finding all k-nearest Gaussians (paper Section VII)",
    )


def ablation_energy(scenes: list[str] | None = None) -> ExperimentResult:
    """Energy breakdown of the four Figure 13 configurations.

    GRTX's fetch reductions are energy reductions: DRAM access costs
    ~100x an L1 access, so the shared BLAS (L1-resident) and
    checkpointing (fewer fetches) both cut memory energy.
    """
    from repro.hwsim import estimate_energy

    scenes = scenes or SCENES[:3]
    rows = []
    for scene in scenes:
        base_energy = None
        for label, overrides in FIG13_CONFIGS.items():
            run = run_config(scene, k=8, **overrides)
            energy = estimate_energy(run.timing, GpuConfig.rtx_like())
            if base_energy is None:
                base_energy = energy.dynamic_nj
            rows.append([
                scene, label, energy.l1_nj, energy.l2_nj, energy.dram_nj,
                energy.memory_fraction,
                base_energy / energy.dynamic_nj if energy.dynamic_nj else 0.0,
            ])
    return ExperimentResult(
        "ablation-energy", "Dynamic energy breakdown (Figure 13 configs)",
        ["scene", "config", "L1 (nJ)", "L2 (nJ)", "DRAM (nJ)",
         "memory fraction", "energy reduction"],
        rows,
    )


def ablation_dram(scene: str = "truck") -> ExperimentResult:
    """Banked-DRAM refinement: row-buffer hit rates per configuration.

    The compact shared BLAS concentrates DRAM traffic into few rows; the
    monolithic BVH scatters it. The flat-latency model (the default, as
    in the paper) cannot see this; the banked model quantifies it.
    """
    from dataclasses import replace as dc_replace

    from repro.hwsim import replay as hw_replay
    from repro.render import GaussianRayTracer, default_camera_for

    cloud = get_cloud(scene)
    banked = dc_replace(GpuConfig.rtx_like(), dram_model="banked")
    rows = []
    for label, overrides in FIG13_CONFIGS.items():
        structure = get_structure(scene, overrides["proxy"])
        config = _trace_config(k=8, checkpointing=overrides["checkpointing"])
        renderer = GaussianRayTracer(cloud, structure, config, engine="auto")
        result = renderer.render(default_camera_for(cloud, *BENCH_RESOLUTION))
        timing = hw_replay(result.traces, banked)
        rows.append([label, timing.dram_accesses, timing.dram_row_hit_rate,
                     timing.avg_fetch_latency, timing.time_ms])
    return ExperimentResult(
        "ablation-dram", f"Banked DRAM row-buffer behaviour ({scene})",
        ["config", "DRAM accesses", "row hit rate", "fetch latency", "time (ms)"],
        rows,
    )


def ablation_popping(scene: str = "room", n_frames: int = 8) -> ExperimentResult:
    """View-consistency: per-ray sorting vs 3DGS's global depth sort.

    Section II-B: "ray tracing enables per-ray sorting that eliminates
    visual artifacts during camera movement". To isolate the *sorting*
    effect we blend the *same* per-ray hit lists twice per frame of a
    camera orbit: once in exact per-ray t order (ray tracing), once
    re-sorted by global view-space depth of each Gaussian's center (the
    3DGS order, shared by all pixels). Popping is the temporal roughness
    of each sequence; sort flips between frames raise it.
    """
    from repro.render import GaussianRayTracer, default_camera_for
    from repro.render.metrics import popping_score
    from repro.rt import SceneShading

    cloud = get_cloud(scene)
    structure = get_structure(scene, "tlas+sphere")
    config = _trace_config(k=8)
    from dataclasses import replace as dc_replace

    config = dc_replace(config, record_blended=True)
    renderer = GaussianRayTracer(cloud, structure, config)
    shading = SceneShading(cloud)
    threshold = config.transmittance_min

    base = default_camera_for(cloud, *BENCH_RESOLUTION)
    center = cloud.means.mean(axis=0)
    from repro.render.path import orbit_path

    cameras = orbit_path(base, center, n_frames, total_angle=0.03 * (n_frames - 1))
    perray_frames, global_frames = [], []
    for camera in cameras:
        _r, _u, forward = camera.basis
        depth_key = (cloud.means - camera.position) @ forward

        bundle = camera.generate_rays()
        exact = np.zeros((camera.n_pixels, 3))
        glob = np.zeros((camera.n_pixels, 3))
        for r in range(len(bundle)):
            outcome = renderer.tracer.trace_ray(
                bundle.origins[r], bundle.directions[r])
            pixel = int(bundle.pixel_ids[r])
            exact[pixel] = outcome.color
            records = outcome.blend_records or []
            if not records:
                continue
            # Re-blend the same Gaussians in global depth order.
            order = sorted(records, key=lambda rec: depth_key[rec[0]])
            gids = np.fromiter((rec[0] for rec in order), dtype=np.int64,
                               count=len(order))
            colors = shading.colors(gids, bundle.directions[r])
            trans = 1.0
            color = np.zeros(3)
            for j, (_gid, alpha, _t) in enumerate(order):
                color += trans * alpha * colors[j]
                trans *= 1.0 - alpha
                if trans < threshold:
                    break
            glob[pixel] = color
        shape = (camera.height, camera.width, 3)
        perray_frames.append(exact.reshape(shape))
        global_frames.append(glob.reshape(shape))

    rows = [
        ["per-ray sort (ray tracing)", popping_score(perray_frames)],
        ["global depth sort (3DGS)", popping_score(global_frames)],
    ]
    return ExperimentResult(
        "ablation-popping", f"Temporal popping on a camera orbit ({scene})",
        ["blend order", "popping score"],
        rows,
        notes="identical hit lists, two blend orders; the global-sort "
              "sequence flickers when the shared sort order flips between "
              "frames, the artifact per-ray sorting eliminates",
    )


def ablation_divergence(scene: str = "bonsai",
                        k_values: tuple[int, ...] = (4, 8, 16, 32)) -> ExperimentResult:
    """Intra-warp divergence across k-buffer sizes (Figure 18's driver).

    Small k multiplies tracing rounds, and each round is warp-synchronous:
    lanes that finish early idle for the warp's straggler. The idle-lane
    fraction and round spread quantify the overhead that makes k=4 lose
    to k=8 despite finer-grained early ray termination.
    """
    from repro.hwsim import analyze_divergence
    from repro.render import GaussianRayTracer, default_camera_for

    cloud = get_cloud(scene)
    structure = get_structure(scene, "tlas+sphere")
    camera = default_camera_for(cloud, *BENCH_RESOLUTION)
    rows = []
    for k in k_values:
        renderer = GaussianRayTracer(cloud, structure,
                                     _trace_config(k=k, checkpointing=True))
        result = renderer.render(camera)
        report = analyze_divergence(result.traces)
        rows.append([k, report.n_rounds_total, report.mean_round_spread,
                     report.idle_lane_fraction, report.straggler_ratio])
    return ExperimentResult(
        "ablation-divergence", f"Warp divergence vs k-buffer size ({scene})",
        ["k", "warp rounds", "round spread", "idle lane fraction",
         "straggler ratio"],
        rows,
        notes="smaller k => more warp-synchronous rounds and more idle "
              "lanes; the straggler overhead that bounds Figure 18's sweep",
    )


def ablation_cameras(scene: str = "train") -> ExperimentResult:
    """Distorted-camera support: the motivation ray tracing serves.

    A rasterizer needs one linear projection per frame; its best-fit
    pinhole approximation of a fisheye accumulates angular error that
    diverges toward 180 degrees. The ray tracer renders each model
    exactly at ~the pinhole's cost.
    """
    from repro.hwsim import replay as hw_replay
    from repro.render import GaussianRayTracer, default_camera_for
    from repro.render.cameras import (
        EquirectangularCamera,
        FisheyeCamera,
        rasterizer_fisheye_error,
    )

    cloud = get_cloud(scene)
    structure = get_structure(scene, "tlas+sphere")
    renderer = GaussianRayTracer(cloud, structure, _trace_config(k=8),
                                 engine="auto")
    res = BENCH_RESOLUTION
    pin = default_camera_for(cloud, *res)
    cameras = [
        ("pinhole 60deg", pin, 0.0),
        ("fisheye 180deg",
         FisheyeCamera(pin.position, pin.look_at, pin.up, *res, fov=np.pi),
         rasterizer_fisheye_error(np.pi - 1e-3)),
        ("fisheye 220deg",
         FisheyeCamera(pin.position, pin.look_at, pin.up, *res,
                       fov=np.deg2rad(220)),
         rasterizer_fisheye_error(np.deg2rad(220))),
        ("equirect 360deg",
         EquirectangularCamera(pin.position, pin.look_at, pin.up,
                               2 * res[0], res[1]), float("inf")),
    ]
    rows = []
    for label, camera, raster_err in cameras:
        result = renderer.render(camera)
        timing = hw_replay(result.traces, GpuConfig.rtx_like())
        rows.append([label, camera.n_pixels, timing.time_ms,
                     raster_err if raster_err != float("inf") else "impossible"])
    return ExperimentResult(
        "ablation-cameras", f"Camera-model generality ({scene})",
        ["camera", "rays", "RT time (ms)", "raster angular error (rad)"],
        rows,
        notes="rasterization cannot express panoramas at all and "
              "approximates wide fisheyes with growing error; the ray "
              "tracer's cost stays proportional to the ray count",
    )


def _trace_config(k: int = 8, checkpointing: bool = False):
    from repro.rt import TraceConfig

    return TraceConfig(k=k, checkpointing=checkpointing)


#: Every experiment, keyed by id (used by the CLI example and the docs).
ALL_EXPERIMENTS: dict = {
    "fig04a": fig04a, "fig04b": fig04b, "fig05": fig05, "fig06a": fig06a,
    "fig06b": fig06b, "fig07": fig07, "table1": table1, "table2": table2,
    "fig12": fig12, "fig13": fig13, "fig14": fig14, "fig15": fig15,
    "fig16": fig16, "fig17": fig17, "fig18": fig18, "fig19": fig19,
    "fig20": fig20, "table3": table3, "fig21": fig21, "fig22": fig22,
    "fig23": fig23, "fig24": fig24,
    "quality": quality_equivalence,
    "ablation-prefetch": ablation_prefetch, "ablation-width": ablation_bvh_width,
    "ablation-builder": ablation_builder, "ablation-treelet": ablation_treelet,
    "ablation-predictor": ablation_predictor, "ablation-energy": ablation_energy,
    "ablation-dram": ablation_dram, "ablation-popping": ablation_popping,
    "ablation-cameras": ablation_cameras,
    "ablation-divergence": ablation_divergence,
}


# ---------------------------------------------------------------------------
# The parallel paper campaign.
#
# Most experiments spend all their time in run_config() renders and only
# assemble rows from the results. Each entry below is a *plan*: the exact
# config set an experiment will request, as normalized-kwarg dicts. The
# campaign evaluates the union of the requested plans on the worker pool
# (deduplicated, scene-affine — see harness.parallel_run_configs), which
# seeds the in-process run cache; the experiment functions then assemble
# their tables from warm hits. Experiments without a plan (the ablations
# that drive the renderer directly) simply run serially afterwards.
#
# Plans are callables so they read SCENES / BENCH_RESOLUTION at campaign
# time, not import time.

def _fig13_family() -> list[dict]:
    return [dict(scene=s, k=8, **kw)
            for s in SCENES for kw in FIG13_CONFIGS.values()]


def _fig19_plan() -> list[dict]:
    from repro.eval.harness import BENCH_RESOLUTION as res

    hi_res = (res[0] * 2, res[1] * 2)
    settings = [dict(resolution=hi_res, fov_mode="original"),
                dict(resolution=res, fov_mode="cropped")]
    return [dict(scene=s, k=8, **kw, **setting)
            for setting in settings
            for s in ("train", "truck")
            for kw in FIG13_CONFIGS.values()]


CAMPAIGN_PLANS: dict = {
    "fig04a": lambda: [dict(scene=s, proxy="20-tri", k=16) for s in SCENES],
    "fig04b": lambda: [dict(scene=s, proxy="20-tri", k=16) for s in SCENES],
    "fig05": lambda: [dict(scene=s, proxy=p, k=16)
                      for s in SCENES for p in ("20-tri", "custom")],
    "fig06a": lambda: [dict(scene=s, proxy="20-tri", k=16, mode=m)
                       for s in SCENES for m in ("multiround", "singleround")],
    "fig06b": lambda: [dict(scene=s, proxy="20-tri", k=k)
                       for s in SCENES for k in (4, 8, 16, 32, 64)],
    "fig07": lambda: [dict(scene=s, proxy="20-tri", k=16) for s in SCENES],
    "table2": lambda: [dict(scene=s, proxy=p, k=8)
                       for s in SCENES for p in ("20-tri", "tlas+20-tri")],
    "fig12": lambda: [dict(scene=s, proxy=p, k=8) for s in SCENES
                      for p in ("20-tri", "80-tri", "tlas+20-tri", "tlas+80-tri")],
    "fig13": _fig13_family,
    "fig14": _fig13_family,
    "fig15": _fig13_family,
    "fig16": _fig13_family,
    "fig17": _fig13_family,
    "fig18": lambda: [dict(scene=s, proxy="tlas+20-tri", checkpointing=True, k=k)
                      for s in SCENES for k in (4, 8, 16, 32, 64)],
    "fig19": _fig19_plan,
    "fig20": lambda: [dict(scene=s, proxy="tlas+20-tri", checkpointing=True, k=8)
                      for s in SCENES],
    "fig21": lambda: [dict(scene=s, proxy="20-tri", k=16, kbuffer_layout=kb)
                      for s in SCENES for kb in ("payload", "soa")],
    "fig22": lambda: [dict(scene=s, proxy=p, k=8)
                      for s in SCENES for p in ("20-tri", "tlas+sphere")],
    "fig23": lambda: [dict(scene=s, proxy="20-tri", k=8, objects=True,
                           checkpointing=c)
                      for s in SCENES for c in (False, True)],
    "quality": lambda: [dict(scene=s, proxy=p, k=8, checkpointing=ckpt)
                        for s in SCENES
                        for p, ckpt in (("tlas+sphere", False),
                                        ("custom", False), ("20-tri", False),
                                        ("tlas+20-tri", False), ("20-tri", True))],
    "ablation-prefetch": lambda: [dict(scene=s, proxy="20-tri", k=8, prefetch=p)
                                  for s in SCENES[:3] for p in (True, False)],
    "ablation-energy": lambda: [dict(scene=s, k=8, **kw)
                                for s in SCENES[:3]
                                for kw in FIG13_CONFIGS.values()],
}


def campaign_configs(exp_ids: list[str]) -> list[dict]:
    """The union of render plans for a set of experiment ids."""
    configs: list[dict] = []
    for exp_id in exp_ids:
        plan = CAMPAIGN_PLANS.get(exp_id)
        if plan is not None:
            configs.extend(plan())
    return configs


def run_campaign(exp_ids: list[str] | None = None, workers: int | None = None,
                 pool=None) -> dict[str, ExperimentResult]:
    """Regenerate many paper tables/figures, rendering on every core.

    The render configs behind the requested experiments are fanned out
    across a :class:`repro.pool.WorkerPool` first (``pool`` shares an
    existing one; otherwise ``workers`` processes are used, auto-sized
    when ``None``/``0``); the experiment functions then assemble their
    tables from the warm cache. Results are exactly what the serial
    functions produce — the pool only changes where renders run.
    """
    from repro.eval.harness import parallel_run_configs

    exp_ids = list(exp_ids) if exp_ids else list(ALL_EXPERIMENTS)
    unknown = [e for e in exp_ids if e not in ALL_EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiment ids: {unknown}")
    configs = campaign_configs(exp_ids)
    if configs:
        parallel_run_configs(configs, pool=pool, workers=workers)
    return {exp_id: ALL_EXPERIMENTS[exp_id]() for exp_id in exp_ids}
