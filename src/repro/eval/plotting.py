"""Text-mode charts for experiment results.

The benchmark suite runs in terminals without a display, so every figure
the paper plots as bars or lines is also rendered as an ASCII chart next
to its numeric table. Charts are deterministic text, which makes them
diffable artifacts: `benchmarks/results/` captures both the numbers and
their shape.
"""

from __future__ import annotations

from typing import Sequence

_BAR_WIDTH = 40
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, max_value: float, width: int = _BAR_WIDTH) -> str:
    """Unicode block bar scaled so ``max_value`` fills ``width`` cells."""
    if max_value <= 0.0:
        return ""
    cells = value / max_value * width
    full = int(cells)
    frac = int((cells - full) * 8)
    bar = "█" * full
    if frac:
        bar += _BLOCKS[frac]
    return bar


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    unit: str = "",
    width: int = _BAR_WIDTH,
) -> str:
    """A horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title
    label_w = max(len(str(label)) for label in labels)
    peak = max(values)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        suffix = f" {value:.3g}{unit}"
        lines.append(f"{str(label):>{label_w}} |{_bar(value, peak, width)}{suffix}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str = "",
    unit: str = "",
    width: int = _BAR_WIDTH,
) -> str:
    """Bars for several series per group (the Figure 13-17 layout)."""
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(f"series {name!r} length does not match groups")
    peak = max((max(vals) for vals in series.values() if len(vals)), default=0.0)
    label_w = max(
        [len(str(g)) for g in groups] + [len(name) + 2 for name in series],
        default=0,
    )
    lines = [title] if title else []
    for gi, group in enumerate(groups):
        lines.append(f"{str(group):>{label_w}}")
        for name, values in series.items():
            value = values[gi]
            lines.append(
                f"{('  ' + name):>{label_w}} |{_bar(value, peak, width)} {value:.3g}{unit}"
            )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str = "",
    height: int = 12,
    width: int = 60,
) -> str:
    """A dot-matrix line chart for parameter sweeps (Figure 6b / 18)."""
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length does not match xs")
    if not xs:
        return title
    all_ys = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_ys), max(all_ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [title] if title else []
    lines.append(f"{y_max:>10.3g} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{y_min:>10.3g} ┴" + "─" * width)
    lines.append(" " * 12 + f"{x_min:<10.3g}{'':^{max(width - 20, 0)}}{x_max:>10.3g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def chart_for_result(result, value_column: str | None = None) -> str:
    """Best-effort chart for an :class:`ExperimentResult`-like object.

    Uses the first column as labels and ``value_column`` (default: the
    last numeric column) as values.
    """
    labels = [str(row[0]) for row in result.rows]
    columns = result.columns
    if value_column is None:
        value_column = columns[-1]
    idx = columns.index(value_column)
    values = []
    for row in result.rows:
        try:
            values.append(float(row[idx]))
        except (TypeError, ValueError):
            values.append(0.0)
    return bar_chart(labels, values, title=f"{result.exp_id} — {value_column}")
