"""Shared experiment infrastructure.

Every figure in the paper is regenerated from a handful of (scene,
structure, tracing-mode) render configurations; this module builds and
caches them so the benchmark suite runs each expensive render exactly
once per session. Scales are reduced relative to the paper (see
EXPERIMENTS.md): scenes are generated at ``BENCH_SCALE`` of their trained
Gaussian counts and rendered at ``BENCH_RESOLUTION`` — both overridable
through the ``GRTX_BENCH_SCALE`` / ``GRTX_BENCH_RES`` environment
variables for higher-fidelity (slower) runs.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.bvh import BuildParams, build_monolithic, build_two_level, structure_stats
from repro.bvh.stats import BVHStats
from repro.gaussians import GaussianCloud, make_workload
from repro.gaussians.synthetic import WORKLOAD_ORDER
from repro.hwsim import GpuConfig, TimingReport, replay
from repro.obs import get_registry, span
from repro.render import GaussianRayTracer, PinholeCamera, SceneObjects, default_camera_for
from repro.render.renderer import RenderStats
from repro.rt import TraceConfig

#: Canonical scene ordering used by every figure.
SCENES = list(WORKLOAD_ORDER)

#: Default down-scale of the paper's Gaussian counts for benchmarks.
BENCH_SCALE = float(os.environ.get("GRTX_BENCH_SCALE", 1.0 / 400.0))

#: Default render resolution for benchmarks (paper: 128x128).
_res = int(os.environ.get("GRTX_BENCH_RES", 20))
BENCH_RESOLUTION = (_res, _res)

#: Structure labels used throughout the evaluation.
PROXIES = ("20-tri", "80-tri", "custom", "tlas+20-tri", "tlas+80-tri", "tlas+sphere")

_cloud_cache: dict = {}
_structure_cache: dict = {}
_run_cache: dict = {}

#: Guards every mutation of the three memo dicts above. Builds happen
#: outside the lock (a duplicate build is benign; holding the lock
#: through a render would serialize the world), writes inside it.
_caches_lock = threading.Lock()


def clear_caches() -> None:
    """Drop all cached clouds, structures and runs (tests use this)."""
    with _caches_lock:
        _cloud_cache.clear()
        _structure_cache.clear()
        _run_cache.clear()


def get_cloud(scene: str, scale: float | None = None) -> GaussianCloud:
    """The (cached) synthetic Gaussian cloud for one workload.

    ``scale`` defaults to the *current* ``BENCH_SCALE`` (read at call
    time, so tests and campaigns that shrink the module attribute are
    honored).
    """
    if scale is None:
        scale = BENCH_SCALE
    key = (scene, scale)
    if key not in _cloud_cache:
        cloud = make_workload(scene, scale=scale)
        with _caches_lock:
            _cloud_cache.setdefault(key, cloud)
    return _cloud_cache[key]


def build_structure_for(cloud: GaussianCloud, proxy: str,
                        params: BuildParams | None = None):
    """Build the acceleration structure named by a proxy label.

    The labels are the ones used throughout the evaluation (PROXIES):
    monolithic ``20-tri`` / ``80-tri`` / ``custom`` and two-level
    ``tlas+20-tri`` / ``tlas+80-tri`` / ``tlas+sphere``.
    """
    params = params or BuildParams()
    if proxy in ("20-tri", "80-tri", "custom"):
        return build_monolithic(cloud, proxy, params)
    if proxy == "tlas+20-tri":
        return build_two_level(cloud, "icosphere", 0, params)
    if proxy == "tlas+80-tri":
        return build_two_level(cloud, "icosphere", 1, params)
    if proxy == "tlas+sphere":
        return build_two_level(cloud, "sphere", params=params)
    raise ValueError(f"unknown proxy {proxy!r}")


def get_structure(scene: str, proxy: str, scale: float | None = None, width: int = 6):
    """The (cached) acceleration structure for one workload."""
    if scale is None:
        scale = BENCH_SCALE
    key = (scene, proxy, scale, width)
    if key not in _structure_cache:
        cloud = get_cloud(scene, scale)
        structure = build_structure_for(cloud, proxy, BuildParams(width=width))
        with _caches_lock:
            _structure_cache.setdefault(key, structure)
    return _structure_cache[key]


@dataclass
class CachedRun:
    """One fully evaluated render: image + functional stats + timing."""

    scene: str
    proxy: str
    image: np.ndarray
    stats: RenderStats
    timing: TimingReport
    bvh: BVHStats
    config: TraceConfig
    structure_bytes: int = 0
    raster_cycles: float = 0.0

    @property
    def cycles(self) -> float:
        return self.timing.cycles

    @property
    def time_ms(self) -> float:
        return self.timing.time_ms


def normalize_config(
    scene: str,
    proxy: str = "20-tri",
    k: int = 8,
    mode: str = "multiround",
    checkpointing: bool = False,
    scale: float | None = None,
    resolution: tuple[int, int] | None = None,
    fov_mode: str = "original",
    objects: bool = False,
    kbuffer_layout: str = "soa",
    gpu: str = "rtx",
    prefetch: bool = True,
    width: int = 6,
    engine: str = "auto",
) -> dict:
    """Resolve a run_config kwarg set to fully explicit values.

    ``scale``/``resolution`` defaults are read from the *current*
    ``BENCH_SCALE``/``BENCH_RESOLUTION``, so a normalized config means
    the same render everywhere — in this process, or shipped to a pool
    worker whose module defaults may differ.

    ``engine`` defaults to ``"auto"``: trace-producing campaign renders
    run on the packet engine's recording path whenever it covers the
    (structure, config) pair — per-ray fetch traces and every replayed
    timing figure are engine-identical — and fall back to the scalar
    tracer otherwise (GRTX-HW checkpointing).
    """
    return dict(
        scene=scene, proxy=proxy, k=k, mode=mode, checkpointing=checkpointing,
        scale=BENCH_SCALE if scale is None else scale,
        resolution=tuple(resolution or BENCH_RESOLUTION),
        fov_mode=fov_mode, objects=objects, kbuffer_layout=kbuffer_layout,
        gpu=gpu, prefetch=prefetch, width=width, engine=engine,
    )


def _config_key(cfg: dict) -> tuple:
    """Run-cache key of a normalized config (field order is stable)."""
    return (cfg["scene"], cfg["proxy"], cfg["k"], cfg["mode"],
            cfg["checkpointing"], cfg["scale"], cfg["resolution"],
            cfg["fov_mode"], cfg["objects"], cfg["kbuffer_layout"],
            cfg["gpu"], cfg["prefetch"], cfg["width"], cfg["engine"])


def run_config(scene: str, **kwargs) -> CachedRun:
    """Render one configuration (cached) and replay it for timing.

    Accepts the keyword set of :func:`normalize_config`. ``fov_mode``:
    ``"original"`` keeps the default 60-degree FoV at any resolution
    (Figure 19a's low-coherence setting); ``"cropped"`` scales the FoV
    down with the resolution (Figure 19b).
    """
    cfg = normalize_config(scene, **kwargs)
    key = _config_key(cfg)
    if key in _run_cache:
        get_registry().add("campaign.run_cache_hits")
        return _run_cache[key]
    with span("campaign.run", scene=cfg["scene"], proxy=cfg["proxy"],
              mode=cfg["mode"], checkpointing=cfg["checkpointing"]):
        run = _run_config_uncached(cfg)
    with _caches_lock:
        _run_cache[key] = run
    return run


def _run_config_uncached(cfg: dict) -> CachedRun:
    registry = get_registry()
    registry.add("campaign.runs")
    scene = cfg["scene"]
    scale, resolution = cfg["scale"], cfg["resolution"]
    proxy, kbuffer_layout = cfg["proxy"], cfg["kbuffer_layout"]
    cloud = get_cloud(scene, scale)
    structure = get_structure(scene, proxy, scale, cfg["width"])
    config = TraceConfig(k=cfg["k"], mode=cfg["mode"],
                         checkpointing=cfg["checkpointing"],
                         kbuffer_layout=kbuffer_layout)
    camera = default_camera_for(cloud, 64, 64)
    if cfg["fov_mode"] == "cropped":
        camera = camera.cropped(*resolution)
    else:
        camera = camera.with_resolution(*resolution)

    scene_objects = SceneObjects.default_for(cloud) if cfg["objects"] else None
    renderer = GaussianRayTracer(cloud, structure, config,
                                 engine=cfg["engine"])
    t0 = time.perf_counter()
    result = renderer.render(camera, objects=scene_objects)
    registry.observe("campaign.render_seconds", time.perf_counter() - t0)

    if cfg["gpu"] == "rtx":
        gpu_config = GpuConfig.rtx_like()
    elif cfg["gpu"] == "amd":
        gpu_config = GpuConfig.amd_like(scene_scale=scale * 100.0)
    else:
        raise ValueError(f"unknown gpu {cfg['gpu']!r}")
    if not cfg["prefetch"]:
        from dataclasses import replace
        gpu_config = replace(gpu_config, prefetch_enabled=False)

    t0 = time.perf_counter()
    timing = replay(result.traces, gpu_config, kbuffer_layout=kbuffer_layout)
    registry.observe("campaign.replay_seconds", time.perf_counter() - t0)
    result.drop_traces()

    return CachedRun(
        scene=scene,
        proxy=proxy,
        image=result.image,
        stats=result.stats,
        timing=timing,
        bvh=structure_stats(structure),
        config=config,
        structure_bytes=structure.total_bytes,
    )


def parallel_run_configs(configs: list[dict], pool=None,
                         workers: int | None = None) -> list[CachedRun]:
    """Evaluate many :func:`run_config` calls across a worker pool.

    Configs are normalized (fully explicit, so workers reproduce them
    bit-exactly whatever their own module defaults are), deduplicated,
    fanned out with per-scene affinity — tasks for one scene land on the
    worker already holding its cloud/structure caches — and the results
    are installed into this process's ``_run_cache``, so subsequent
    ``run_config`` calls (e.g. the experiment functions assembling
    tables) are cache hits. Returns the runs aligned with ``configs``.

    ``pool`` shares an existing :class:`repro.pool.WorkerPool`; without
    one, a private pool of ``workers`` processes is created for the call.
    """
    normalized = [normalize_config(**cfg) for cfg in configs]
    keys = [_config_key(cfg) for cfg in normalized]
    owns_pool = pool is None
    if owns_pool:
        from repro.pool import WorkerPool

        pool = WorkerPool(workers=workers)
    try:
        futures: dict[tuple, object] = {}
        for cfg, key in zip(normalized, keys):
            if key in _run_cache or key in futures:
                continue
            futures[key] = pool.submit(run_config, affinity=cfg["scene"], **cfg)
        for key, future in futures.items():
            run = future.result()
            with _caches_lock:
                _run_cache[key] = run
    finally:
        if owns_pool:
            pool.close()
    return [_run_cache[key] for key in keys]


# The four end-to-end configurations of Figure 13.
FIG13_CONFIGS = {
    "Baseline": dict(proxy="20-tri", checkpointing=False),
    "GRTX-SW": dict(proxy="tlas+20-tri", checkpointing=False),
    "GRTX-HW": dict(proxy="20-tri", checkpointing=True),
    "GRTX": dict(proxy="tlas+20-tri", checkpointing=True),
}
