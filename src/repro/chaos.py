"""Deterministic, seeded fault injection for the whole stack.

Production schedulers treat failure policy — timeouts, requeues,
quarantine — as a first-class, *testable* subsystem: you validate the
controller by injecting the failure, not by waiting for it. This module
is that injector. Subsystems thread **registered injection points**
(:data:`POINTS`) through their failure-prone seams; a schedule (env or
:func:`configure`) decides which invocation of which point fires which
fault. Everything is deterministic given the schedule and seed: hits
are exact per-process invocation counts, probabilistic hits hash
``(seed, point, count)``, and ``:once`` entries claim a cross-process
token file so a fleet of workers fires a fault exactly once.

Design constraints, in order:

* **Zero overhead when disabled.** :func:`point` is one module-global
  bool check when no schedule is armed — cheap enough to sit on the
  task dispatch path. ``benchmarks/bench_chaos.py`` gates this ≤1%.
* **Every firing leaves evidence.** A fired fault is recorded into the
  flight ring (:data:`repro.obs.events.CHAOS`) and counted
  (``chaos.injected``), so ``repro doctor`` can attribute the crash it
  caused to the schedule that caused it.
* **Points are registered, not ad hoc.** Call sites use
  ``chaos.point(name)`` with a literal name from :data:`POINTS`; the
  ``chaos-point-registered`` lint rule rejects ad-hoc ``REPRO_CHAOS``
  env checks and unregistered names, so the injection surface stays
  enumerable.

Schedule grammar (``REPRO_CHAOS``, entries separated by ``;``)::

    point=directive@hits[:once]

    pool.worker.task=kill@2:once;pool.worker.task=hang@5:once
    registry.disk_load=corrupt@1
    pool.worker.task=slow(0.2)@p0.25        # seeded probability per hit
    flight.spool=oserror@*                  # every invocation

``hits`` is a comma list of 1-based per-process invocation numbers,
``*`` (every invocation), or ``pN`` (fire with probability N, derived
deterministically from ``REPRO_CHAOS_SEED``). Directives are
interpreted by the call site; the common ones are ``kill`` (SIGKILL
self), ``hang`` (SIGSTOP self — exercises the pool watchdog), ``slow``
/ ``slow(seconds)``, ``error`` (raise :class:`ChaosInjectedError`),
``oserror`` (raise ``OSError``), ``corrupt`` (damage the artifact
about to be read), and ``unpicklable`` (poison a task result).

Knobs: ``REPRO_CHAOS`` (the schedule; empty/unset disarms),
``REPRO_CHAOS_SEED`` (probabilistic hits), ``REPRO_CHAOS_TOKENS``
(directory for ``:once`` claim tokens; defaults to
``<flight dir>/chaos-tokens``).
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time

from repro.obs import events as ev

__all__ = [
    "ChaosInjectedError",
    "POINTS",
    "active",
    "configure",
    "execute",
    "fired",
    "point",
    "poison_task",
    "reset",
]


class ChaosInjectedError(RuntimeError):
    """An injected (scheduled) fault, raised by an ``error`` directive."""


#: The registered injection points. A call site may only gate on a name
#: in this set (``point()`` raises on anything else, and the
#: ``chaos-point-registered`` lint rule enforces it statically), so the
#: full injection surface is this one tuple of seams:
POINTS = frozenset({
    # Worker-side, between a task's start checkpoint and its execution:
    # kill / hang / slow / error — the crash, watchdog and retry drills.
    "pool.worker.task",
    # Worker-side, before a result ships: unpicklable — the
    # result-serialization hardening drill.
    "pool.worker.result",
    # Parent-side, before a task's wire writes to the worker pipe:
    # oserror — the transient-dispatch-failure retry drill.
    "pool.dispatch",
    # Registry disk cache, before a cached structure loads: corrupt /
    # oserror — the corrupt-cache evict-and-rebuild drill.
    "registry.disk_load",
    # Registry disk cache, before a built structure saves: oserror.
    "registry.disk_save",
    # Structure deserialization itself: error — surfaces as a
    # StructureFormatError to whoever trusted the archive.
    "bvh.serialize.load",
    # Flight-recorder worker spool writes: oserror (transient).
    "flight.spool",
    # Server request path, before cache lookup: slow / error.
    "serve.request",
})

#: Directives :func:`execute` knows how to carry out itself; the rest
#: (``corrupt``, ``unpicklable``) are interpreted by the call site.
_EXECUTABLE = frozenset({"kill", "hang", "slow", "error", "oserror"})


class _Entry:
    """One parsed schedule entry for one point."""

    __slots__ = ("point", "directive", "hits", "every", "probability",
                 "once", "raw")

    def __init__(self, point_name: str, directive: str, hits: frozenset[int],
                 every: bool, probability: float | None, once: bool,
                 raw: str) -> None:
        self.point = point_name
        self.directive = directive
        self.hits = hits
        self.every = every
        self.probability = probability
        self.once = once
        self.raw = raw

    def matches(self, count: int, seed: int) -> bool:
        if self.every:
            return True
        if self.probability is not None:
            return _fraction(seed, self.point, count) < self.probability
        return count in self.hits


def _fraction(seed: int, point_name: str, count: int) -> float:
    """Deterministic [0, 1) value for one (seed, point, invocation)."""
    digest = hashlib.blake2b(
        f"{seed}:{point_name}:{count}".encode("ascii"), digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class ScheduleError(ValueError):
    """The ``REPRO_CHAOS`` schedule string does not parse."""


def _parse_entry(raw: str) -> _Entry:
    head, sep, trigger = raw.partition("@")
    if not sep:
        raise ScheduleError(f"chaos entry {raw!r} has no '@hits' trigger")
    point_name, sep, directive = head.partition("=")
    point_name = point_name.strip()
    directive = directive.strip()
    if not sep or not directive:
        raise ScheduleError(f"chaos entry {raw!r} has no '=directive'")
    if point_name not in POINTS:
        raise ScheduleError(
            f"chaos entry {raw!r} names unregistered point {point_name!r}; "
            f"registered points: {', '.join(sorted(POINTS))}")
    trigger = trigger.strip()
    once = False
    if trigger.endswith(":once"):
        once = True
        trigger = trigger[: -len(":once")].strip()
    every = False
    probability: float | None = None
    hits: frozenset[int] = frozenset()
    if trigger == "*":
        every = True
    elif trigger.startswith("p"):
        try:
            probability = float(trigger[1:])
        except ValueError:
            raise ScheduleError(
                f"chaos entry {raw!r}: bad probability {trigger!r}") from None
        if not 0.0 <= probability <= 1.0:
            raise ScheduleError(
                f"chaos entry {raw!r}: probability must be in [0, 1]")
    else:
        try:
            hits = frozenset(int(h) for h in trigger.split(",") if h.strip())
        except ValueError:
            raise ScheduleError(
                f"chaos entry {raw!r}: bad hit list {trigger!r}") from None
        if not hits or min(hits) < 1:
            raise ScheduleError(
                f"chaos entry {raw!r}: hits are 1-based invocation counts")
    return _Entry(point_name, directive, hits, every, probability, once, raw)


def _parse_schedule(spec: str) -> dict[str, list[_Entry]]:
    schedule: dict[str, list[_Entry]] = {}
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        entry = _parse_entry(raw)
        schedule.setdefault(entry.point, []).append(entry)
    return schedule


# ---------------------------------------------------------------------------
# Process-global state. The hot path (``point`` while disarmed) reads
# one module bool with no lock; everything else serializes on _lock.

_lock = threading.Lock()
_active: bool = False
_schedule: dict[str, list[_Entry]] = {}
_seed: int = 0
_token_dir: str | None = None
_counts: dict[str, int] = {}
_fired: list[dict] = []


def _reinit_after_fork() -> None:
    # Forked pool workers inherit the parent's schedule (that is how a
    # drill reaches them) but must not inherit a lock some parent
    # thread held at fork time.
    global _lock
    _lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _env_configure() -> None:
    spec = os.environ.get("REPRO_CHAOS", "")
    if spec.strip():
        configure(spec=spec,
                  seed=int(os.environ.get("REPRO_CHAOS_SEED", "0") or 0),
                  token_dir=os.environ.get("REPRO_CHAOS_TOKENS"))


def configure(spec: str | None = None, seed: int | None = None,
              token_dir: str | None = None) -> None:
    """Arm (or re-arm) the injector with a schedule string.

    ``spec=None`` leaves the current schedule; an empty string disarms.
    Raises :class:`ScheduleError` on a malformed schedule — a drill
    whose schedule silently failed to parse would "pass" by testing
    nothing.
    """
    global _active, _schedule, _seed, _token_dir
    with _lock:
        if spec is not None:
            _schedule = _parse_schedule(spec)
            _active = bool(_schedule)
        if seed is not None:
            _seed = int(seed)
        if token_dir is not None:
            _token_dir = str(token_dir)


def reset() -> None:
    """Disarm and forget counters, firings, and the token dir (tests)."""
    global _active, _schedule, _seed, _token_dir
    with _lock:
        _active = False
        _schedule = {}
        _seed = 0
        _token_dir = None
        _counts.clear()
        _fired.clear()


def active() -> bool:
    """Whether any schedule is armed in this process."""
    return _active


def fired() -> list[dict]:
    """Every fault fired in this process, in order (plain-data dicts)."""
    with _lock:
        return [dict(entry) for entry in _fired]


def invocation_count(name: str) -> int:
    """How many times ``name`` has been evaluated in this process."""
    with _lock:
        return _counts.get(name, 0)


def point(name: str) -> str | None:
    """Evaluate one registered injection point.

    Returns ``None`` (the overwhelmingly common case — one bool check
    when disarmed) or the directive string the schedule wants this
    invocation to suffer. The call site interprets the directive;
    :func:`execute` implements the generic ones.
    """
    if not _active:
        return None
    return _point_armed(name)


def _point_armed(name: str) -> str | None:
    if name not in POINTS:
        raise ValueError(
            f"chaos.point({name!r}): not a registered injection point; "
            "add it to repro.chaos.POINTS")
    with _lock:
        count = _counts.get(name, 0) + 1
        _counts[name] = count
        entries = _schedule.get(name)
        hit = None
        if entries:
            for entry in entries:
                if entry.matches(count, _seed):
                    hit = entry
                    break
    if hit is None:
        return None
    if hit.once and not _claim_token(hit, count):
        return None
    _record_firing(name, hit, count)
    return hit.directive


def _tokens_dir() -> str:
    if _token_dir is not None:
        return _token_dir
    from repro.obs import flight

    return os.path.join(flight.flight_dir(), "chaos-tokens")


def _claim_token(entry: _Entry, count: int) -> bool:
    """Atomically claim a ``:once`` firing across every process sharing
    the token dir; False means another process already fired it."""
    slug = "".join(c if c.isalnum() else "-" for c in
                   f"{entry.point}-{entry.directive}-{count}")
    try:
        directory = _tokens_dir()
        os.makedirs(directory, exist_ok=True)
        fd = os.open(os.path.join(directory, f"{slug}.token"),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return True
    except FileExistsError:
        return False
    except OSError:
        # An unclaimable token dir must not turn one scheduled fault
        # into a storm of them: skip rather than fire unbounded.
        return False


def _record_firing(name: str, entry: _Entry, count: int) -> None:
    firing = {"point": name, "directive": entry.directive, "hit": count,
              "entry": entry.raw, "pid": os.getpid()}
    with _lock:
        _fired.append(firing)
    # Lazy imports: flight imports this module for its spool point, so
    # the dependency must point the other way at import time.
    from repro.obs import flight
    from repro.obs.metrics import get_registry

    get_registry().add("chaos.injected")
    flight.record(ev.CHAOS, "chaos.inject", point=name,
                  directive=entry.directive, hit=count)


def execute(name: str, directive: str) -> None:
    """Carry out a generic directive at call site ``name``.

    ``kill``/``hang`` never return; ``slow`` sleeps; ``error``/
    ``oserror`` raise. Site-specific directives (``corrupt``,
    ``unpicklable``) are ignored here — the site interprets them.
    """
    head, _, arg = directive.partition("(")
    head = head.strip()
    arg = arg.rstrip(")").strip()
    if head == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif head == "hang":
        os.kill(os.getpid(), signal.SIGSTOP)
    elif head == "slow":
        time.sleep(float(arg) if arg else 0.05)
    elif head == "error":
        raise ChaosInjectedError(
            f"chaos: injected error at {name}")
    elif head == "oserror":
        raise OSError(f"chaos: injected OSError at {name}")


def poison_task() -> None:
    """A picklable task that SIGKILLs whichever worker runs it.

    Drill tooling for the poison-quarantine path: every attempt kills a
    *different* worker process, so a pool with ``poison_threshold`` set
    quarantines it after N distinct victims.
    """
    os.kill(os.getpid(), signal.SIGKILL)


_env_configure()
