"""Small vector helpers shared by the geometry and rendering code.

These are thin wrappers over numpy that fix conventions (last axis is the
spatial axis, zero-length vectors normalize to zero instead of NaN) so the
rest of the codebase never has to repeat the same guards.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dot product along the last axis.

    Works for single vectors ``(3,)`` and batches ``(n, 3)`` alike; the
    result drops the spatial axis.
    """
    return np.sum(np.asarray(a) * np.asarray(b), axis=-1)


def norm(a: np.ndarray) -> np.ndarray:
    """Euclidean length along the last axis."""
    return np.linalg.norm(np.asarray(a), axis=-1)


def normalize(a: np.ndarray) -> np.ndarray:
    """Return unit vectors; zero-length inputs map to zero vectors.

    Mapping zero to zero (rather than NaN) keeps degenerate rays inert
    instead of poisoning whole image tiles with NaNs.
    """
    a = np.asarray(a, dtype=np.float64)
    length = np.linalg.norm(a, axis=-1, keepdims=True)
    safe = np.where(length > _EPS, length, 1.0)
    out = a / safe
    return np.where(length > _EPS, out, np.zeros_like(a))


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product along the last axis."""
    return np.cross(np.asarray(a), np.asarray(b))


def orthonormal_basis(direction: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build a right-handed orthonormal basis ``(u, v, w)`` with ``w`` along
    ``direction``.

    Used by the camera to turn a view direction into an image plane and by
    the secondary-ray generators to sample around a normal.
    """
    w = normalize(np.asarray(direction, dtype=np.float64))
    if w.ndim != 1 or w.shape[0] != 3:
        raise ValueError("orthonormal_basis expects a single 3-vector")
    if abs(w[0]) < 0.9:
        helper = np.array([1.0, 0.0, 0.0])
    else:
        helper = np.array([0.0, 1.0, 0.0])
    u = normalize(np.cross(helper, w))
    v = np.cross(w, u)
    return u, v, w
