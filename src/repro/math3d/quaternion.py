"""Quaternion utilities for Gaussian orientations.

3D Gaussian Splatting stores each Gaussian's rotation as a unit quaternion
``(w, x, y, z)``; the renderer needs the corresponding rotation matrix to
assemble the covariance ``Sigma = R S S^T R^T`` and the instance transform
that maps the ellipsoid onto a unit sphere. All functions are batched: a
quaternion array has shape ``(n, 4)`` (or ``(4,)`` for a single one).
"""

from __future__ import annotations

import numpy as np


def quat_identity(n: int) -> np.ndarray:
    """Return ``n`` identity quaternions, shape ``(n, 4)``."""
    q = np.zeros((n, 4), dtype=np.float64)
    q[:, 0] = 1.0
    return q


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Normalize quaternions to unit length.

    Degenerate all-zero quaternions become the identity rotation, matching
    how 3DGS training code sanitizes its rotation parameters.
    """
    q = np.asarray(q, dtype=np.float64)
    single = q.ndim == 1
    q = np.atleast_2d(q)
    length = np.linalg.norm(q, axis=-1, keepdims=True)
    out = np.where(length > 1e-12, q / np.where(length > 1e-12, length, 1.0), 0.0)
    degenerate = (length <= 1e-12).reshape(-1)
    out[degenerate, 0] = 1.0
    return out[0] if single else out


def quat_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamilton product ``a * b`` (both ``(..., 4)`` in ``wxyz`` order)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    aw, ax, ay, az = a[..., 0], a[..., 1], a[..., 2], a[..., 3]
    bw, bx, by, bz = b[..., 0], b[..., 1], b[..., 2], b[..., 3]
    return np.stack(
        [
            aw * bw - ax * bx - ay * by - az * bz,
            aw * bx + ax * bw + ay * bz - az * by,
            aw * by - ax * bz + ay * bw + az * bx,
            aw * bz + ax * by - ay * bx + az * bw,
        ],
        axis=-1,
    )


def quat_to_rotation_matrix(q: np.ndarray) -> np.ndarray:
    """Convert unit quaternions ``(n, 4)`` to rotation matrices ``(n, 3, 3)``.

    A single quaternion ``(4,)`` yields a single ``(3, 3)`` matrix.
    """
    q = quat_normalize(q)
    single = q.ndim == 1
    q = np.atleast_2d(q)
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    rot = np.empty((q.shape[0], 3, 3), dtype=np.float64)
    rot[:, 0, 0] = 1.0 - 2.0 * (y * y + z * z)
    rot[:, 0, 1] = 2.0 * (x * y - w * z)
    rot[:, 0, 2] = 2.0 * (x * z + w * y)
    rot[:, 1, 0] = 2.0 * (x * y + w * z)
    rot[:, 1, 1] = 1.0 - 2.0 * (x * x + z * z)
    rot[:, 1, 2] = 2.0 * (y * z - w * x)
    rot[:, 2, 0] = 2.0 * (x * z - w * y)
    rot[:, 2, 1] = 2.0 * (y * z + w * x)
    rot[:, 2, 2] = 1.0 - 2.0 * (x * x + y * y)
    return rot[0] if single else rot


def quat_random(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``n`` uniformly distributed unit quaternions (Shoemake)."""
    u1 = rng.random(n)
    u2 = rng.random(n) * 2.0 * np.pi
    u3 = rng.random(n) * 2.0 * np.pi
    a = np.sqrt(1.0 - u1)
    b = np.sqrt(u1)
    return np.stack(
        [a * np.sin(u2), a * np.cos(u2), b * np.sin(u3), b * np.cos(u3)],
        axis=-1,
    )
