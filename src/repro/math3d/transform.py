"""Affine transforms for TLAS instance nodes.

The central trick in GRTX-SW is that an anisotropic Gaussian ellipsoid
becomes a *unit sphere* once rays are mapped into the Gaussian's local
frame. A TLAS leaf therefore stores the world->object transform
``x_obj = S^-1 R^T (x_world - mu)`` derived from the Gaussian's rotation
``R``, scale ``S`` and mean ``mu``. This module provides that transform
(and its inverse) in a batched, explicit form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AffineTransform:
    """An affine map ``y = linear @ x + offset``.

    ``linear`` has shape ``(3, 3)`` (or ``(n, 3, 3)`` batched) and
    ``offset`` shape ``(3,)`` (or ``(n, 3)``). Instances are immutable so
    they can be shared between TLAS leaves and the hardware model.
    """

    linear: np.ndarray
    offset: np.ndarray

    def apply_point(self, points: np.ndarray) -> np.ndarray:
        """Transform points (applies both linear part and offset)."""
        return transform_points(self.linear, self.offset, points)

    def apply_vector(self, vectors: np.ndarray) -> np.ndarray:
        """Transform directions (linear part only; no translation)."""
        return transform_vectors(self.linear, vectors)

    def inverse(self) -> "AffineTransform":
        """Return the inverse affine map."""
        inv = np.linalg.inv(self.linear)
        if self.linear.ndim == 3:
            off = -np.einsum("nij,nj->ni", inv, self.offset)
        else:
            off = -inv @ self.offset
        return AffineTransform(linear=inv, offset=off)

    @property
    def matrix4(self) -> np.ndarray:
        """The 4x4 homogeneous form (single transform only).

        Used by the size accounting: a TLAS instance stores a 3x4 matrix
        (48 bytes), mirroring Vulkan's ``VkTransformMatrixKHR``.
        """
        if self.linear.ndim != 2:
            raise ValueError("matrix4 is only defined for a single transform")
        mat = np.eye(4)
        mat[:3, :3] = self.linear
        mat[:3, 3] = self.offset
        return mat


def transform_points(linear: np.ndarray, offset: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply ``linear @ p + offset`` with broadcasting over batches."""
    linear = np.asarray(linear, dtype=np.float64)
    offset = np.asarray(offset, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if linear.ndim == 2:
        return points @ linear.T + offset
    return np.einsum("nij,nj->ni", linear, points) + offset


def transform_vectors(linear: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Apply the linear part only (directions ignore translation)."""
    linear = np.asarray(linear, dtype=np.float64)
    vectors = np.asarray(vectors, dtype=np.float64)
    if linear.ndim == 2:
        return vectors @ linear.T
    return np.einsum("nij,nj->ni", linear, vectors)


def compose_trs(translation: np.ndarray, rotation: np.ndarray, scale: np.ndarray) -> AffineTransform:
    """Compose object->world transforms from translate/rotate/scale parts.

    ``rotation`` is ``(n, 3, 3)``, ``scale`` ``(n, 3)`` (per-axis), and
    ``translation`` ``(n, 3)``. The resulting map sends the unit sphere to
    the Gaussian's ellipsoid: ``x_world = R S x_obj + mu``.
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    scale = np.asarray(scale, dtype=np.float64)
    translation = np.asarray(translation, dtype=np.float64)
    linear = rotation * scale[..., None, :]
    return AffineTransform(linear=linear, offset=translation)


def invert_rigid_scale(translation: np.ndarray, rotation: np.ndarray, scale: np.ndarray) -> AffineTransform:
    """World->object transform for a rotate+scale+translate instance.

    Exploits ``(R S)^-1 = S^-1 R^T`` instead of a generic matrix inverse,
    matching what RT hardware computes from the stored instance matrix.
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    scale = np.asarray(scale, dtype=np.float64)
    translation = np.asarray(translation, dtype=np.float64)
    inv_scale = 1.0 / scale
    rot_t = np.swapaxes(rotation, -1, -2)
    linear = inv_scale[..., :, None] * rot_t
    if linear.ndim == 3:
        offset = -np.einsum("nij,nj->ni", linear, translation)
    else:
        offset = -linear @ translation
    return AffineTransform(linear=linear, offset=offset)
