"""Batched 3D math primitives used across GRTX.

Everything in this package operates on numpy arrays. Functions accept
either a single item (shape ``(3,)``, ``(4,)``, ...) or a batch (shape
``(n, 3)`` etc.) and broadcast accordingly.
"""

from repro.math3d.quaternion import (
    quat_identity,
    quat_multiply,
    quat_normalize,
    quat_random,
    quat_to_rotation_matrix,
)
from repro.math3d.transform import (
    AffineTransform,
    compose_trs,
    invert_rigid_scale,
    transform_points,
    transform_vectors,
)
from repro.math3d.vec import (
    cross,
    dot,
    norm,
    normalize,
    orthonormal_basis,
)

__all__ = [
    "AffineTransform",
    "compose_trs",
    "cross",
    "dot",
    "invert_rigid_scale",
    "norm",
    "normalize",
    "orthonormal_basis",
    "quat_identity",
    "quat_multiply",
    "quat_normalize",
    "quat_random",
    "quat_to_rotation_matrix",
    "transform_points",
    "transform_vectors",
]
