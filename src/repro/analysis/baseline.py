"""The committed baseline: grandfathered findings that don't gate CI.

The baseline exists so the linter can land with rules stricter than the
tree: pre-existing findings are recorded once (``repro lint
--write-baseline``), committed, and burned down over time, while any
*new* finding fails the gate immediately. Entries match by
:func:`repro.analysis.core.fingerprint` — rule + path + enclosing
symbol + stripped source line — so unrelated edits (line drift,
neighboring churn) cannot silently re-gate or un-gate a finding.

The file is JSON with a schema tag; unknown schemas are rejected loudly
rather than half-parsed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

BASELINE_SCHEMA = "repro.lint-baseline/1"


@dataclass
class Baseline:
    """Fingerprint set plus the readable entries they came from."""

    entries: list[dict]

    @property
    def fingerprints(self) -> set[str]:
        return {e["fingerprint"] for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)


def empty_baseline() -> Baseline:
    return Baseline(entries=[])


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return empty_baseline()
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} has unknown schema {doc.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA!r}")
    entries = doc.get("findings", [])
    for entry in entries:
        if "fingerprint" not in entry:
            raise ValueError(f"baseline {path} entry missing fingerprint: {entry}")
    return Baseline(entries=list(entries))


def write_baseline(path: str | Path, findings) -> Baseline:
    """Write the given findings (the still-active ones) as the new baseline."""
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "symbol": f.symbol,
            "line": f.line,  # informational; matching uses the fingerprint
            "message": f.message,
            "fingerprint": f.fingerprint,
        }
        for f in findings
        if not f.suppressed
    ]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["line"]))
    doc = {"schema": BASELINE_SCHEMA, "findings": entries}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return Baseline(entries=entries)
