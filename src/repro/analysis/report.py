"""Reporters: human-readable text and machine-readable JSON.

The JSON document is schema-tagged (:data:`REPORT_SCHEMA`) and is what
the CI ``lint`` job uploads as a build artifact; the text reporter is
what a developer reads in the terminal. Both show suppressed and
baselined findings (dimmed into their own sections) so waivers stay
auditable rather than invisible.
"""

from __future__ import annotations

import json

from repro.analysis.core import ERROR, WARNING, Finding

REPORT_SCHEMA = "repro.lint-report/1"


def _sort_key(f: Finding):
    return (f.path, f.line, f.rule)


def summarize(findings: list[Finding]) -> dict:
    active = [f for f in findings if f.active]
    return {
        "files_with_findings": len({f.path for f in active}),
        "active": len(active),
        "errors": sum(1 for f in active if f.severity == ERROR),
        "warnings": sum(1 for f in active if f.severity == WARNING),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings if f.baselined),
    }


def render_text(findings: list[Finding], files_scanned: int,
                verbose: bool = False) -> str:
    """The terminal report: active findings, then the waived sections."""
    lines: list[str] = []
    active = sorted((f for f in findings if f.active), key=_sort_key)
    for f in active:
        lines.append(f"{f.path}:{f.line}: {f.severity}[{f.rule}] "
                     f"{f.message} ({f.symbol})")
    suppressed = sorted((f for f in findings if f.suppressed), key=_sort_key)
    if suppressed and (verbose or not active):
        lines.append("")
        lines.append(f"suppressed ({len(suppressed)}):")
        for f in suppressed:
            lines.append(f"  {f.path}:{f.line}: [{f.rule}] "
                         f"ok: {f.suppress_reason}")
    baselined = [f for f in findings if f.baselined]
    counts = summarize(findings)
    lines.append("")
    lines.append(
        f"{files_scanned} files scanned: {counts['errors']} errors, "
        f"{counts['warnings']} warnings "
        f"({counts['suppressed']} suppressed, {len(baselined)} baselined)")
    return "\n".join(lines)


def render_json(findings: list[Finding], files_scanned: int,
                strict: bool, parity_modules: list[str]) -> str:
    doc = {
        "schema": REPORT_SCHEMA,
        "strict": strict,
        "files_scanned": files_scanned,
        "counts": summarize(findings),
        "findings": [f.to_json() for f in sorted(
            (f for f in findings if f.active), key=_sort_key)],
        "suppressed": [f.to_json() for f in sorted(
            (f for f in findings if f.suppressed), key=_sort_key)],
        "baselined": [f.to_json() for f in sorted(
            (f for f in findings if f.baselined), key=_sort_key)],
        "parity_modules": sorted(parity_modules),
    }
    return json.dumps(doc, indent=2, sort_keys=True)
