"""The lint driver: collect files, run rules, resolve waivers.

``run_lint`` is the one entry point both the CLI and the test suite
use. The pipeline per run:

1. collect ``.py`` files from the given paths (default: the installed
   ``repro`` package source tree);
2. parse everything once, compute the parity surface from the import
   graph (package files only; loose files join the surface only under
   ``assume_parity``);
3. run every enabled rule over every file, resolving severity from the
   per-subsystem config;
4. apply inline suppressions (line- or scope-level), then the committed
   baseline by fingerprint;
5. add the meta-findings: malformed ``lint-ok`` markers and suppressions
   that matched nothing.

Unparseable files are findings (rule ``parse-error``), not crashes: a
linter that dies on the file it should flag gates nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, empty_baseline
from repro.analysis.core import (
    ERROR,
    WARNING,
    FileContext,
    Finding,
    LintConfig,
    all_rules,
    fingerprint,
)
from repro.analysis.importgraph import _module_name, parity_surface
from repro.analysis.suppress import parse_suppressions

#: Meta-rule ids (not in the registry; they come from the runner).
RULE_PARSE_ERROR = "parse-error"
RULE_BAD_SUPPRESSION = "bad-suppression"
RULE_UNUSED_SUPPRESSION = "unused-suppression"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parity_modules: set[str] = field(default_factory=set)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.active if f.severity == ERROR]

    def gate_failed(self, strict: bool) -> bool:
        """Whether this run fails the gate (errors always; any active
        finding under ``--strict``)."""
        return bool(self.active) if strict else bool(self.errors)


def default_source_root() -> Path:
    """Directory that contains the ``repro`` package (``src/``)."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def collect_files(paths: list[Path]) -> list[Path]:
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts))
        elif path.suffix == ".py":
            out.append(path)
    # De-duplicate while keeping order.
    seen: set[Path] = set()
    unique = []
    for p in out:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            unique.append(p)
    return unique


def _display_path(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def run_lint(
    paths: list[Path] | None = None,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint the given paths (default: the repro package source tree)."""
    config = config or LintConfig()
    baseline = baseline or empty_baseline()
    src_root = default_source_root()
    files = collect_files([Path(p) for p in paths] if paths else [src_root / "repro"])

    result = LintResult()
    parsed: list[tuple[Path, str, str | None, ast.Module, str]] = []
    package_trees: dict[str, ast.Module] = {}
    for path in files:
        display = _display_path(path)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            result.findings.append(Finding(
                rule=RULE_PARSE_ERROR, severity=ERROR, path=display,
                line=line, symbol="<module>",
                message=f"cannot lint: {exc}",
                fingerprint=fingerprint(RULE_PARSE_ERROR, display,
                                        "<module>", str(exc)),
            ))
            continue
        module = _module_name(path, src_root)
        parsed.append((path, display, module, tree, source))
        if module:
            package_trees[module] = tree

    result.parity_modules = parity_surface(package_trees, config.parity_roots)
    rules = [r for r in all_rules() if config.rule_enabled(r.id)]

    for path, display, module, tree, source in parsed:
        in_surface = (module in result.parity_modules if module
                      else config.assume_parity)
        ctx = FileContext(path=path, source=source, tree=tree, module=module,
                          in_parity_surface=in_surface, config=config)
        suppressions = parse_suppressions(source)

        for line, message in suppressions.malformed:
            result.findings.append(Finding(
                rule=RULE_BAD_SUPPRESSION, severity=ERROR, path=display,
                line=line, symbol=ctx.symbol_at(line), message=message,
                fingerprint=fingerprint(RULE_BAD_SUPPRESSION, display,
                                        ctx.symbol_at(line),
                                        ctx.line_text(line)),
            ))

        for rule in rules:
            severity = config.severity_for(rule, ctx.subsystem)
            for raw in rule.check(ctx):
                symbol = ctx.symbol_at(raw.line)
                finding = Finding(
                    rule=rule.id, severity=severity, path=display,
                    line=raw.line, symbol=symbol, message=raw.message,
                    fingerprint=fingerprint(rule.id, display, symbol,
                                            ctx.line_text(raw.line)),
                )
                sup = suppressions.match(rule.id, raw.line,
                                         ctx.scope_start(raw.line))
                if sup is not None:
                    finding.suppressed = True
                    finding.suppress_reason = sup.reason
                elif finding.fingerprint in baseline.fingerprints:
                    finding.baselined = True
                result.findings.append(finding)

        for sup in suppressions.unused():
            result.findings.append(Finding(
                rule=RULE_UNUSED_SUPPRESSION, severity=WARNING, path=display,
                line=sup.line, symbol=ctx.symbol_at(sup.line),
                message=(f"lint-ok[{', '.join(sup.rules)}] matched no "
                         "finding; stale waiver — remove it"),
                fingerprint=fingerprint(RULE_UNUSED_SUPPRESSION, display,
                                        ctx.symbol_at(sup.line),
                                        ctx.line_text(sup.line)),
            ))

    result.files_scanned = len(files)
    return result
