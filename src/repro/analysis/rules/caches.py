"""Cache-invariant rules: identity keys, key completeness, engine order.

All three descend from shipped bugs:

* PR 2: ``RenderServer._render_now`` reused tracers from a cache keyed
  by recycled ``id()``s and served engines built over dead scenes.
* PR 4: frame/tracer/worker cache keys were built before ``auto`` was
  resolved to a concrete engine, so ``auto`` and the engine it resolved
  to aliased to different cache entries.
* The eval campaign's module-level memo dicts must key on everything
  that varies the result, which statically means: on the function's
  declared parameters (or constants), never on ambient mutable state.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ERROR,
    FileContext,
    RawFinding,
    Rule,
    call_name,
    dotted_name,
    function_params,
    is_container_ctor,
    iter_functions,
    module_level_assigns,
    register,
)


def _id_derived_names(fn: ast.AST) -> set[str]:
    """Local names assigned (directly) from an ``id(...)`` call."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if call_name(node.value) == "id":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def _is_id_key(expr: ast.expr, id_names: set[str]) -> bool:
    if isinstance(expr, ast.Call) and call_name(expr) == "id":
        return True
    if isinstance(expr, ast.Name) and expr.id in id_names:
        return True
    if isinstance(expr, ast.Tuple):
        return any(_is_id_key(e, id_names) for e in expr.elts)
    return False


@register
class IdKeyedCacheRule(Rule):
    """``id()``-keyed mappings must pair with a weakref liveness guard."""

    id = "id-keyed-cache"
    severity = ERROR
    description = ("a dict keyed by id(x) must verify liveness with a "
                   "weakref guard (use repro.util.IdentityMemo)")
    history = ("PR 2: the tracer-reuse cache keyed by recyclable id() "
               "served engines built over dead scenes")

    def check(self, ctx: FileContext):
        for fn in iter_functions(ctx.tree):
            id_names = _id_derived_names(fn)
            # Two liveness-guard shapes are accepted: constructing a
            # weakref alongside the entry, or verifying an entry with an
            # identity test against a call result (``entry[0]() is obj``,
            # the IdentityMemo pattern).
            has_guard = any(
                (isinstance(n, ast.Call)
                 and call_name(n) in {"weakref.ref",
                                      "weakref.WeakValueDictionary",
                                      "weakref.WeakKeyDictionary", "ref"})
                or (isinstance(n, ast.Compare)
                    and any(isinstance(op, (ast.Is, ast.IsNot))
                            for op in n.ops)
                    and any(isinstance(o, ast.Call)
                            for o in [n.left, *n.comparators]))
                for n in ast.walk(fn))
            if has_guard:
                continue
            for node in ast.walk(fn):
                key_expr = None
                if isinstance(node, ast.Subscript):
                    key_expr = node.slice
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr in {"get", "setdefault", "pop"}
                      and node.args):
                    key_expr = node.args[0]
                if key_expr is None or not _is_id_key(key_expr, id_names):
                    continue
                yield RawFinding(
                    node.lineno,
                    "cache access keyed by id() with no weakref liveness "
                    "guard in scope; a recycled id can serve a stale "
                    "entry — use repro.util.IdentityMemo",
                )


def _uppercase(name: str) -> bool:
    return name == name.upper() and any(c.isalpha() for c in name)


def _value_names(expr: ast.expr) -> set[str]:
    """Name loads in ``expr``, excluding call callees (calling a module
    function is derivation, not a data dependency on ambient state)."""
    callees: set[ast.AST] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            func = node.func
            callees.add(func)
            while isinstance(func, ast.Attribute):
                func = func.value
                callees.add(func)
    return {n.id for n in ast.walk(expr)
            if isinstance(n, ast.Name) and n not in callees}


@register
class CacheKeyParamsRule(Rule):
    """Module-level memo keys must derive from declared parameters."""

    id = "cache-key-params"
    severity = ERROR
    description = ("keys stored into module-level memo dicts must be "
                   "derived from the function's parameters (or UPPERCASE "
                   "constants), never from ambient mutable state")
    history = ("the eval campaign's _run_cache/_structure_cache contract: "
               "every axis that varies a result is a declared parameter "
               "and appears in the key")

    def check(self, ctx: FileContext):
        memos = {
            name for name, value in module_level_assigns(ctx.tree)
            if is_container_ctor(value) and not _uppercase(name)
        }
        if not memos:
            return
        for fn in iter_functions(ctx.tree):
            if isinstance(fn, ast.Lambda):
                continue
            params = function_params(fn)
            # Names derived from parameters via simple assignment chains
            # (key = (scene, scale); scale = BENCH_SCALE is allowed via
            # the UPPERCASE-constant escape below).
            derived = set(params)
            assigns = [n for n in ast.walk(fn) if isinstance(n, ast.Assign)]
            fors = [n for n in ast.walk(fn)
                    if isinstance(n, (ast.For, ast.AsyncFor))]

            def _clean(names: set[str]) -> bool:
                return all(n in derived or _uppercase(n) or n in memos
                           for n in names)

            changed = True
            while changed:  # fixed point; chains may appear out of order
                changed = False
                for node in assigns:
                    if _clean(_value_names(node.value)):
                        for target in node.targets:
                            if (isinstance(target, ast.Name)
                                    and target.id not in derived):
                                derived.add(target.id)
                                changed = True
                for node in fors:
                    # Loop targets over a derived iterable are derived
                    # (e.g. ``for key, fut in futures.items():``).
                    if _clean(_value_names(node.iter)):
                        for t in ast.walk(node.target):
                            if isinstance(t, ast.Name) and t.id not in derived:
                                derived.add(t.id)
                                changed = True
            for node in ast.walk(fn):
                key_expr = None
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (isinstance(target, ast.Subscript)
                                and isinstance(target.value, ast.Name)
                                and target.value.id in memos):
                            key_expr = target.slice
                if key_expr is None:
                    continue
                bad = sorted(
                    n for n in _value_names(key_expr)
                    if n not in derived and not _uppercase(n))
                if bad:
                    yield RawFinding(
                        node.lineno,
                        "memo key uses state not derived from the "
                        f"function's parameters: {', '.join(bad)}; an "
                        "axis missing from the key serves stale results",
                    )


@register
class EngineBeforeKeyRule(Rule):
    """``resolve_engine()`` must precede any cache-key construction."""

    id = "engine-before-key"
    severity = ERROR
    description = ("in functions that resolve the tracing engine and build "
                   "a cache key, resolution must happen first and the key "
                   "must carry the resolved value, not the raw request")
    history = ("PR 4: frame/tracer/worker keys built before 'auto' was "
               "resolved aliased one render to two cache entries")

    def check(self, ctx: FileContext):
        for fn in iter_functions(ctx.tree):
            if isinstance(fn, ast.Lambda):
                continue
            resolve_line = None
            raw_arg: str | None = None
            resolved_name: str | None = None
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name and name.split(".")[-1] == "resolve_engine":
                        if resolve_line is None or node.lineno < resolve_line:
                            resolve_line = node.lineno
                            raw_arg = (dotted_name(node.args[0])
                                       if node.args else None)
            if resolve_line is not None:
                # Which name holds the resolved engine?
                for node in ast.walk(fn):
                    if (isinstance(node, ast.Assign)
                            and isinstance(node.value, ast.Call)):
                        name = call_name(node.value)
                        if name and name.split(".")[-1] == "resolve_engine":
                            for target in node.targets:
                                if isinstance(target, ast.Name):
                                    resolved_name = target.id
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                is_key = any(
                    isinstance(t, ast.Name) and "key" in t.id.lower()
                    for t in node.targets)
                if not is_key:
                    continue
                key_names = {dotted_name(n) for n in ast.walk(node.value)
                             if isinstance(n, (ast.Name, ast.Attribute))}
                key_names.discard(None)
                mentions_engine = any(
                    n and ("engine" in n.lower()) for n in key_names)
                if resolve_line is None:
                    continue
                if node.lineno < resolve_line and mentions_engine:
                    yield RawFinding(
                        node.lineno,
                        "cache key constructed before resolve_engine(); "
                        "'auto' and its resolution alias to different "
                        "entries — resolve first, key on the result",
                    )
                elif (raw_arg and raw_arg in key_names
                        and resolved_name is not None
                        and raw_arg != resolved_name):
                    yield RawFinding(
                        node.lineno,
                        f"cache key uses the unresolved engine {raw_arg!r}; "
                        f"key on the resolved value {resolved_name!r} "
                        "instead",
                    )
