"""Hygiene rules: small Python traps with outsized blast radius here.

* ``mutable-default`` — a mutable default argument is shared across
  calls *and across serving requests*; in a long-lived server that is
  cross-request state leakage, not a style nit.
* ``broad-except`` — an ``except Exception`` that swallows silently
  also swallows :class:`repro.pool.WorkerCrashError`, turning a worker
  massacre into quiet wrong answers. Handlers that re-raise, log, or
  use the bound exception are fine.
* ``shadowed-dict-key`` — writing the same literal key twice into one
  dict silently drops the first value. This is the shape of PR 6's
  gauge bug: ``ServerMetrics.snapshot()`` merged gauge providers over
  counter keys and the gauge shadowed the counter until gauges were
  namespaced ``gauge.*``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    FileContext,
    RawFinding,
    Rule,
    WARNING,
    dotted_name,
    is_container_ctor,
    iter_functions,
    register,
)


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments."""

    id = "mutable-default"
    severity = WARNING
    description = ("mutable default argument (list/dict/set) is shared "
                   "across calls — and across requests in a long-lived "
                   "server process")
    history = ("forward risk for the async serving front end (ROADMAP 1): "
               "per-request accumulation into a shared default leaks "
               "state between clients")

    def check(self, ctx: FileContext):
        for fn in iter_functions(ctx.tree):
            args = fn.args
            for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None]:
                if is_container_ctor(default):
                    yield RawFinding(
                        default.lineno,
                        "mutable default argument; use None and create "
                        "the container in the body",
                    )


def _assigns_with_branch(node: ast.AST, path: tuple = ()):
    """Yield ``(Assign, branch_path)`` under ``node``, staying in scope.

    ``branch_path`` records which arm of each enclosing ``if``/``try``
    the assignment sits in. Writes in mutually exclusive arms can never
    execute in the same run, so they must not count as shadowing.
    """
    if isinstance(node, ast.Assign):
        yield node, path
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return  # nested scope: scanned on its own
    if isinstance(node, ast.If):
        for stmt in node.body:
            yield from _assigns_with_branch(stmt, path + ((id(node), 0),))
        for stmt in node.orelse:
            yield from _assigns_with_branch(stmt, path + ((id(node), 1),))
        return
    if isinstance(node, ast.Try):
        arms = [node.body, *[h.body for h in node.handlers], node.orelse]
        for arm_idx, arm in enumerate(arms):
            for stmt in arm:
                yield from _assigns_with_branch(stmt,
                                                path + ((id(node), arm_idx),))
        for stmt in node.finalbody:  # finally always runs: same path
            yield from _assigns_with_branch(stmt, path)
        return
    for child in ast.iter_child_nodes(node):
        yield from _assigns_with_branch(child, path)


def _paths_overlap(a: tuple, b: tuple) -> bool:
    """Whether two branch paths can both execute in one run (one is a
    prefix of the other)."""
    short, long = (a, b) if len(a) <= len(b) else (b, a)
    return long[:len(short)] == short


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler neither re-raises nor uses the exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if (handler.name and isinstance(node, ast.Name)
                and node.id == handler.name and isinstance(node.ctx, ast.Load)):
            return False
    return True


@register
class BroadExceptRule(Rule):
    """``except Exception`` must not swallow silently."""

    id = "broad-except"
    severity = WARNING
    description = ("bare/broad except that neither re-raises nor uses the "
                   "exception; it swallows WorkerCrashError and every "
                   "other signal with it")
    history = ("the pool's crash recovery depends on WorkerCrashError "
               "propagating; a silent broad except upstream turns a "
               "worker massacre into quiet wrong answers")

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            typ = node.type
            names: list[str] = []
            if typ is None:
                names = ["<bare>"]
            elif isinstance(typ, (ast.Name, ast.Attribute)):
                names = [dotted_name(typ) or ""]
            elif isinstance(typ, ast.Tuple):
                names = [dotted_name(e) or "" for e in typ.elts]
            broad = any(n in {"<bare>", "Exception", "BaseException"}
                        for n in names)
            if broad and _handler_swallows(node):
                yield RawFinding(
                    node.lineno,
                    "broad except swallows silently (no raise, exception "
                    "unused); narrow the type or handle it visibly",
                )


@register
class ShadowedDictKeyRule(Rule):
    """One dict, one literal key, one write."""

    id = "shadowed-dict-key"
    severity = WARNING
    description = ("the same literal key is written twice into one dict "
                   "in one scope; the second write silently shadows the "
                   "first — namespace the keys instead")
    history = ("PR 6: ServerMetrics gauge providers shadowed same-named "
               "counters in snapshot() until gauges moved to gauge.*")

    def check(self, ctx: FileContext):
        # Duplicate keys inside one dict literal.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Dict):
                seen: dict[object, int] = {}
                for key in node.keys:
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, (str, int))):
                        if key.value in seen:
                            yield RawFinding(
                                key.lineno,
                                f"duplicate key {key.value!r} in dict "
                                "literal shadows the earlier entry",
                            )
                        seen[key.value] = key.lineno

        # Repeated literal-key stores into the same target, per scope
        # (nested functions are their own scope and scanned separately;
        # writes in mutually exclusive if/elif/except arms don't count).
        scopes: list[ast.AST] = [ctx.tree, *iter_functions(ctx.tree)]
        for scope in scopes:
            writes: dict[tuple[str, object], list[tuple[int, tuple]]] = {}
            assigns = []
            for child in ast.iter_child_nodes(scope):
                assigns.extend(_assigns_with_branch(child))
            for node, path in assigns:
                for target in node.targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    base = dotted_name(target.value)
                    key = target.slice
                    if (base is None or not isinstance(key, ast.Constant)
                            or not isinstance(key.value, (str, int))):
                        continue
                    ident = (base, key.value)
                    prior = writes.setdefault(ident, [])
                    clash = next(
                        (ln for ln, p in prior
                         if ln != node.lineno and _paths_overlap(p, path)),
                        None)
                    if clash is not None:
                        yield RawFinding(
                            node.lineno,
                            f"{base}[{key.value!r}] written again in the "
                            f"same scope (first at line {clash}); "
                            "the earlier value is silently shadowed",
                        )
                    prior.append((node.lineno, path))
