"""Parity-surface rules: nothing nondeterministic may touch image bits.

These rules apply only to modules on the *parity surface* — the set of
modules transitively imported from the render path, computed from the
import graph by :mod:`repro.analysis.importgraph` (never hand-listed).
The standing ROADMAP contract is that every optimization produces
bit-identical images; wall-clock reads, unseeded RNG and set-iteration
ordering are the three ways Python code silently breaks that without
failing a single functional test on the machine it was written on.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ERROR,
    FileContext,
    RawFinding,
    Rule,
    call_name,
    register,
)

#: Wall-clock reads (monotonic/perf counters are fine: the engines use
#: them for *profiling*, which never feeds the image).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

#: RNG constructors/calls that are nondeterministic unless seeded.
_GLOBAL_RNG = frozenset({
    "np.random.rand", "np.random.randn", "np.random.random",
    "np.random.randint", "np.random.choice", "np.random.shuffle",
    "np.random.permutation", "np.random.normal", "np.random.uniform",
    "numpy.random.rand", "numpy.random.randn", "numpy.random.random",
    "random.random", "random.randint", "random.choice", "random.shuffle",
    "random.uniform", "random.sample", "random.randrange",
})


def _set_bound_names(fn: ast.AST) -> set[str]:
    """Local names bound to set-typed values in this scope."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            value = node.value
            is_set = (isinstance(value, (ast.Set, ast.SetComp))
                      or (isinstance(value, ast.Call)
                          and call_name(value) in {"set", "frozenset"}))
            if is_set:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


@register
class ParityNondeterminismRule(Rule):
    """No wall clocks, unseeded RNG or set-order iteration on the surface."""

    id = "parity-nondeterminism"
    severity = ERROR
    description = ("modules reachable from the render path must not read "
                   "wall clocks, draw from unseeded RNGs, or iterate sets "
                   "in hash order")
    history = ("the standing contract: bit-identical images behind every "
               "optimization — enforced so far only by runtime smoke "
               "gates, which cannot see a nondeterminism that happens to "
               "agree on one machine")

    def check(self, ctx: FileContext):
        if not ctx.in_parity_surface:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in _WALL_CLOCK:
                    yield RawFinding(
                        node.lineno,
                        f"{name}() on the parity surface; wall-clock values "
                        "differ across runs — use a seeded/injected value",
                    )
                elif name in _GLOBAL_RNG:
                    yield RawFinding(
                        node.lineno,
                        f"{name}() draws from the unseeded global RNG on "
                        "the parity surface; thread a seeded Generator in",
                    )
                elif (name is not None
                        and name.split(".")[-1] == "default_rng"
                        and not node.args and not node.keywords):
                    yield RawFinding(
                        node.lineno,
                        "default_rng() without a seed on the parity "
                        "surface; renders would differ run to run",
                    )

        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            set_names = _set_bound_names(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.For):
                    continue
                it = node.iter
                is_set_iter = (
                    isinstance(it, (ast.Set, ast.SetComp))
                    or (isinstance(it, ast.Call)
                        and call_name(it) in {"set", "frozenset"})
                    or (isinstance(it, ast.Name) and it.id in set_names))
                if is_set_iter:
                    yield RawFinding(
                        node.lineno,
                        "iteration over a set on the parity surface; hash "
                        "order varies across processes — wrap in sorted()",
                    )


@register
class FloatEqRule(Rule):
    """No ``==``/``!=`` against float literals on parity-path code."""

    id = "float-eq"
    severity = ERROR
    description = ("equality comparison against a float literal; on the "
                   "parity surface an epsilon-or-exact decision must be "
                   "explicit (suppress with a reason when exact-zero is "
                   "the contract)")
    history = ("parity gates compare images at <=1e-9/channel; a float == "
               "that happens to hold under one engine's rounding and not "
               "the other's is how engines drift")

    def check(self, ctx: FileContext):
        if not ctx.in_parity_surface:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            if not has_eq:
                continue
            if any(isinstance(o, ast.Constant) and isinstance(o.value, float)
                   for o in operands):
                yield RawFinding(
                    node.lineno,
                    "float-literal equality comparison; use an explicit "
                    "tolerance, or suppress with the reason the exact "
                    "comparison is intended",
                )
