"""Rule catalog: importing this package registers every rule.

Each module groups the rules mechanizing one family of project
invariants; see the module docstrings for the shipped bug each rule
descends from.
"""

from repro.analysis.rules import boundary, caches, chaos, hygiene, locks, parity

__all__ = ["boundary", "caches", "chaos", "hygiene", "locks", "parity"]
