"""Fault-injection rules: chaos stays schedulable, named, and auditable.

The chaos layer's whole value is that every injectable fault is a
*named* point in :data:`repro.chaos.POINTS`: the schedule grammar can
target it, the flight ring records it firing, and ``repro doctor``
attributes the failure back to the schedule. Both properties die
quietly the moment someone probes a point name the registry does not
know (the schedule entry validates, then never fires) or gates behavior
on a raw ``REPRO_CHAOS`` environment read (invisible to counters,
tokens, and the doctor alike).
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ERROR,
    FileContext,
    RawFinding,
    Rule,
    call_name,
    dotted_name,
    register,
)
from repro.chaos import POINTS

#: Environment reads that would bypass the chaos layer's bookkeeping.
_ENV_READERS = frozenset({
    "os.environ.get", "os.getenv", "environ.get", "getenv",
})


def _is_chaos_env_literal(node: ast.expr) -> bool:
    return (isinstance(node, ast.Constant) and isinstance(node.value, str)
            and node.value.startswith("REPRO_CHAOS"))


@register
class ChaosPointRegisteredRule(Rule):
    """Chaos points come from the registry; chaos gating from chaos.point."""

    id = "chaos-point-registered"
    severity = ERROR
    description = ("chaos.point() must be called with a string literal "
                   "from repro.chaos.POINTS, and code must not read "
                   "REPRO_CHAOS* environment variables directly — all "
                   "fault gating flows through the chaos layer")
    history = ("the schedule parser rejects unregistered target names, "
               "but a *call site* probing a misspelled point only "
               "raises while a schedule is armed — disarmed (the "
               "default everywhere outside drills) it silently returns "
               "None forever, so the seam looks instrumented while no "
               "schedule can ever reach it")

    def check(self, ctx: FileContext):
        if ctx.module in ("repro.chaos", "repro.chaosdrill"):
            # The chaos layer itself owns the env contract and the
            # registry; the drill arms schedules by writing the env.
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and name.split(".")[-1] == "point" \
                        and "chaos" in name.split("."):
                    yield from self._check_point_call(node)
                elif name in _ENV_READERS and node.args \
                        and _is_chaos_env_literal(node.args[0]):
                    yield RawFinding(
                        node.lineno,
                        f"{name}({node.args[0].value!r}) bypasses the "
                        "chaos layer; gate faults through "
                        "chaos.point(<registered name>) so firings are "
                        "counted, tokened, and doctor-attributable",
                    )
            elif (isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, ast.Load)
                    and dotted_name(node.value) in ("os.environ", "environ")
                    and _is_chaos_env_literal(node.slice)):
                yield RawFinding(
                    node.lineno,
                    "direct os.environ[...] read of a REPRO_CHAOS* "
                    "variable; fault gating must flow through "
                    "chaos.point(), never ad-hoc env checks",
                )

    def _check_point_call(self, node: ast.Call):
        if not node.args:
            return
        arg = node.args[0]
        if not isinstance(arg, ast.Constant) or not isinstance(arg.value, str):
            yield RawFinding(
                node.lineno,
                "chaos.point() called with a non-literal name; the "
                "registry cannot vouch for a computed point, and the "
                "schedule grammar cannot target it reliably",
            )
        elif arg.value not in POINTS:
            yield RawFinding(
                node.lineno,
                f"chaos.point({arg.value!r}) names an unregistered "
                "point; add it to repro.chaos.POINTS (disarmed, the "
                "probe silently returns None forever; no schedule can "
                "legally target it)",
            )
