"""Process-boundary safety for work shipped to the worker pool.

Everything submitted to :mod:`repro.pool` crosses a pickle boundary
into a long-lived worker process. The safe currency is plain data —
normalized config dicts, flattened structure arrays, content hashes —
because those are what the worker-side caches key and rebuild from.
Closures, lambdas and open OS handles either fail to pickle (at best)
or smuggle parent-process state that silently diverges from the
worker's (at worst: PR 6 found worker-side metrics vanishing at this
boundary). As the ROADMAP's multi-host fan-out replaces the pipe with a
network, the payload discipline only gets stricter.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ERROR,
    FileContext,
    RawFinding,
    Rule,
    call_name,
    dotted_name,
    iter_functions,
    register,
)

#: Methods that ship their arguments across the process boundary.
_SHIP_METHODS = frozenset({"submit", "map", "submit_tile", "imap",
                           "imap_unordered", "apply_async"})


def _is_pool_receiver(expr: ast.expr) -> bool:
    """Whether a call receiver looks like a worker pool."""
    name = dotted_name(expr)
    if name is not None:
        return "pool" in name.lower()
    if isinstance(expr, ast.Call):
        callee = call_name(expr)
        return callee is not None and "pool" in callee.lower()
    return False


@register
class ProcessBoundaryRule(Rule):
    """No closures, lambdas or open handles across the pool boundary."""

    id = "process-boundary"
    severity = ERROR
    description = ("arguments to pool submit/map must be plain picklable "
                   "data or module-level functions — no lambdas, closures, "
                   "generators or open file handles")
    history = ("PR 6: worker-side state silently diverged at the process "
               "boundary (metrics dropped); the pool contract is "
               "normalized configs + flattened tables only")

    def check(self, ctx: FileContext):
        for fn in iter_functions(ctx.tree):
            if isinstance(fn, ast.Lambda):
                continue
            nested = {
                n.name for n in ast.walk(fn)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n is not fn
            }
            lambda_names = {
                t.id
                for n in ast.walk(fn) if isinstance(n, ast.Assign)
                and isinstance(n.value, ast.Lambda)
                for t in n.targets if isinstance(t, ast.Name)
            }
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _SHIP_METHODS
                        and _is_pool_receiver(node.func.value)):
                    continue
                args = list(node.args) + [kw.value for kw in node.keywords]
                for arg in args:
                    if isinstance(arg, ast.Starred):
                        arg = arg.value
                    if isinstance(arg, ast.Lambda):
                        yield RawFinding(
                            node.lineno,
                            "lambda shipped across the process boundary; "
                            "workers need a module-level function",
                        )
                    elif isinstance(arg, ast.GeneratorExp):
                        yield RawFinding(
                            node.lineno,
                            "generator expression shipped to the pool; "
                            "generators are unpicklable — materialize a "
                            "list of plain items",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in nested:
                        yield RawFinding(
                            node.lineno,
                            f"closure {arg.id!r} (defined in the enclosing "
                            "function) shipped to the pool; move it to "
                            "module level so it pickles by reference",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in lambda_names:
                        yield RawFinding(
                            node.lineno,
                            f"{arg.id!r} is bound to a lambda and shipped "
                            "to the pool; workers need a module-level "
                            "function",
                        )
                    elif isinstance(arg, ast.Call) and call_name(arg) == "open":
                        yield RawFinding(
                            node.lineno,
                            "open file handle shipped to the pool; pass "
                            "the path and open in the worker",
                        )
