"""Process-boundary safety for work shipped to the worker pool.

Everything submitted to :mod:`repro.pool` crosses a pickle boundary
into a long-lived worker process. The safe currency is plain data —
normalized config dicts, flattened structure arrays, content hashes —
because those are what the worker-side caches key and rebuild from.
Closures, lambdas and open OS handles either fail to pickle (at best)
or smuggle parent-process state that silently diverges from the
worker's (at worst: PR 6 found worker-side metrics vanishing at this
boundary). As the ROADMAP's multi-host fan-out replaces the pipe with a
network, the payload discipline only gets stricter.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ERROR,
    FileContext,
    RawFinding,
    Rule,
    call_name,
    dotted_name,
    iter_functions,
    register,
)

#: Methods that ship their arguments across the process boundary.
_SHIP_METHODS = frozenset({"submit", "map", "submit_tile", "imap",
                           "imap_unordered", "apply_async"})

#: Flight-recorder emission entry points: everything passed here lands
#: verbatim inside JSON checkpoint/bundle documents.
_FLIGHT_METHODS = frozenset({"record", "record_span", "dump_incident"})

#: Constructors whose values json.dumps cannot encode (the bundle
#: writer falls back to repr(), which destroys the data for doctor).
_NON_JSON_CTORS = frozenset({"set", "frozenset", "bytes", "bytearray",
                             "complex", "object"})


def _is_pool_receiver(expr: ast.expr) -> bool:
    """Whether a call receiver looks like a worker pool."""
    name = dotted_name(expr)
    if name is not None:
        return "pool" in name.lower()
    if isinstance(expr, ast.Call):
        callee = call_name(expr)
        return callee is not None and "pool" in callee.lower()
    return False


@register
class ProcessBoundaryRule(Rule):
    """No closures, lambdas or open handles across the pool boundary."""

    id = "process-boundary"
    severity = ERROR
    description = ("arguments to pool submit/map must be plain picklable "
                   "data or module-level functions — no lambdas, closures, "
                   "generators or open file handles")
    history = ("PR 6: worker-side state silently diverged at the process "
               "boundary (metrics dropped); the pool contract is "
               "normalized configs + flattened tables only")

    def check(self, ctx: FileContext):
        for fn in iter_functions(ctx.tree):
            if isinstance(fn, ast.Lambda):
                continue
            nested = {
                n.name for n in ast.walk(fn)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n is not fn
            }
            lambda_names = {
                t.id
                for n in ast.walk(fn) if isinstance(n, ast.Assign)
                and isinstance(n.value, ast.Lambda)
                for t in n.targets if isinstance(t, ast.Name)
            }
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _SHIP_METHODS
                        and _is_pool_receiver(node.func.value)):
                    continue
                args = list(node.args) + [kw.value for kw in node.keywords]
                for arg in args:
                    if isinstance(arg, ast.Starred):
                        arg = arg.value
                    if isinstance(arg, ast.Lambda):
                        yield RawFinding(
                            node.lineno,
                            "lambda shipped across the process boundary; "
                            "workers need a module-level function",
                        )
                    elif isinstance(arg, ast.GeneratorExp):
                        yield RawFinding(
                            node.lineno,
                            "generator expression shipped to the pool; "
                            "generators are unpicklable — materialize a "
                            "list of plain items",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in nested:
                        yield RawFinding(
                            node.lineno,
                            f"closure {arg.id!r} (defined in the enclosing "
                            "function) shipped to the pool; move it to "
                            "module level so it pickles by reference",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in lambda_names:
                        yield RawFinding(
                            node.lineno,
                            f"{arg.id!r} is bound to a lambda and shipped "
                            "to the pool; workers need a module-level "
                            "function",
                        )
                    elif isinstance(arg, ast.Call) and call_name(arg) == "open":
                        yield RawFinding(
                            node.lineno,
                            "open file handle shipped to the pool; pass "
                            "the path and open in the worker",
                        )


def _is_flight_receiver(expr: ast.expr) -> bool:
    """Whether a call receiver is the flight recorder (module or
    instance — ``flight.record``, ``self._flight.dump_incident``)."""
    name = dotted_name(expr)
    return name is not None and "flight" in name.lower()


@register
class FlightSerializableRule(Rule):
    """Flight-event payloads must be JSON-serializable plain data."""

    id = "flight-serializable"
    severity = ERROR
    description = ("payloads passed to flight.record/record_span/"
                   "dump_incident must be JSON-serializable scalars and "
                   "containers — no lambdas, generators, sets, bytes or "
                   "open handles; they land verbatim in incident bundles")
    history = ("the bundle writer's repr() fallback quietly turns a "
               "non-JSON payload into an opaque string, so the doctor's "
               "heuristics (which read data fields like 'task' and "
               "'worker') stop matching exactly when forensics matter")

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FLIGHT_METHODS
                    and _is_flight_receiver(node.func.value)):
                continue
            payload = list(node.args) + [kw.value for kw in node.keywords]
            for arg in payload:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                if isinstance(arg, ast.Lambda):
                    yield RawFinding(
                        node.lineno,
                        "lambda in a flight-event payload; bundles are "
                        "JSON — record plain data (a name, a repr)",
                    )
                elif isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
                    yield RawFinding(
                        node.lineno,
                        "generator/set comprehension in a flight-event "
                        "payload; JSON has no such value — materialize "
                        "a list",
                    )
                elif isinstance(arg, ast.Set):
                    yield RawFinding(
                        node.lineno,
                        "set literal in a flight-event payload; JSON has "
                        "no sets — use a sorted list",
                    )
                elif isinstance(arg, ast.Constant) \
                        and isinstance(arg.value, bytes):
                    yield RawFinding(
                        node.lineno,
                        "bytes in a flight-event payload; JSON is text — "
                        "decode or hex-encode it",
                    )
                elif isinstance(arg, ast.Call) \
                        and call_name(arg) in _NON_JSON_CTORS:
                    yield RawFinding(
                        node.lineno,
                        f"{call_name(arg)}() value in a flight-event "
                        "payload is not JSON-serializable; convert to a "
                        "list/str first",
                    )
                elif isinstance(arg, ast.Call) and call_name(arg) == "open":
                    yield RawFinding(
                        node.lineno,
                        "open file handle in a flight-event payload; "
                        "record the path instead",
                    )
