"""Lock discipline: shared mutable state is mutated under its lock.

Two shapes, one rule id (``lock-discipline``):

* **module-level**: a module-global mutable container mutated inside a
  function must be mutated under a ``with <module lock>:`` — and a
  module that mutates such a global without defining any lock at all is
  flagged on every mutation. This is exactly the shape of
  ``rt/tracer.py``'s pre-PR-7 ``_TABLES_CACHE`` (unlocked) next to
  ``bvh/flatten.py``'s ``_FLAT_CACHE`` (locked): same pattern, one
  guarded, one not.
* **class-level lockset**: for classes that own a lock attribute, any
  ``self.<attr>`` the class ever mutates under ``with self._lock:`` is
  *protected*; mutating a protected attribute outside a lock block in
  any other method is a finding. ``__init__`` is exempt (construction
  happens-before publication). A method whose docstring documents the
  contract "lock held" (this codebase's existing convention, e.g.
  ``WorkerPool._ship_failed``) counts as locked throughout; docstrings
  saying "no lock held" do not.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ERROR,
    FileContext,
    RawFinding,
    Rule,
    container_mutations,
    dotted_name,
    is_container_ctor,
    is_lock_ctor,
    module_level_assigns,
    register,
)


def _with_lock_spans(scope: ast.AST, lock_names: set[str]) -> list[tuple[int, int]]:
    """(start, end) line spans of ``with <lock>:`` bodies in ``scope``."""
    spans = []
    for node in ast.walk(scope):
        if isinstance(node, ast.With):
            for item in node.items:
                name = dotted_name(item.context_expr)
                if name in lock_names:
                    spans.append((node.lineno, node.end_lineno or node.lineno))
                    break
    return spans


def _inside(line: int, spans: list[tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in spans)


def _docstring_declares_lock_held(fn: ast.AST) -> bool:
    doc = ast.get_docstring(fn, clean=True) if isinstance(
        fn, (ast.FunctionDef, ast.AsyncFunctionDef)) else None
    if not doc:
        return False
    lowered = doc.lower()
    return "lock held" in lowered and "no lock" not in lowered


@register
class LockDisciplineRule(Rule):
    """Shared mutable state must be mutated under its lock."""

    id = "lock-discipline"
    severity = ERROR
    description = ("module globals and lock-protected attributes must only "
                   "be mutated under their lock (or in a method documented "
                   "'lock held')")
    history = ("rt/tracer.py's _TABLES_CACHE was mutated with no lock while "
               "the serving layer called it from dispatcher threads and "
               "tile workers; bvh/flatten.py's twin cache took _FLAT_LOCK")

    def check(self, ctx: FileContext):
        yield from self._check_module_globals(ctx)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node)

    # -- module-level ---------------------------------------------------

    def _check_module_globals(self, ctx: FileContext):
        containers: set[str] = set()
        locks: set[str] = set()
        for name, value in module_level_assigns(ctx.tree):
            if is_container_ctor(value):
                containers.add(name)
            elif is_lock_ctor(value):
                locks.add(name)
        if not containers:
            return
        for top in ctx.tree.body:
            if not isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                continue
            spans = _with_lock_spans(top, locks)
            for node, target in container_mutations(top):
                if target not in containers:
                    continue
                if _inside(node.lineno, spans):
                    continue
                if not locks:
                    yield RawFinding(
                        node.lineno,
                        f"module-global {target!r} is mutated but the module "
                        "defines no lock; shared caches race across serving "
                        "threads — guard it or use repro.util.IdentityMemo",
                    )
                else:
                    lock_list = ", ".join(sorted(locks))
                    yield RawFinding(
                        node.lineno,
                        f"module-global {target!r} mutated outside "
                        f"'with {lock_list}:'",
                    )

    # -- class-level lockset --------------------------------------------

    def _check_class(self, cls: ast.ClassDef):
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        lock_attrs: set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and is_lock_ctor(node.value):
                    for target in node.targets:
                        name = dotted_name(target) if isinstance(
                            target, (ast.Attribute, ast.Name)) else None
                        if name and name.startswith("self."):
                            lock_attrs.add(name)
                # A Condition wrapping an existing lock shares it:
                # with self._cond: protects the same set.
                if (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)):
                    callee = dotted_name(node.value.func)
                    if callee in {"threading.Condition", "Condition"}:
                        for target in node.targets:
                            name = dotted_name(target) if isinstance(
                                target, (ast.Attribute, ast.Name)) else None
                            if name and name.startswith("self."):
                                lock_attrs.add(name)
        if not lock_attrs:
            return

        # Pass 1: attributes mutated under a lock anywhere in the class.
        protected: set[str] = set()
        for method in methods:
            spans = _with_lock_spans(method, lock_attrs)
            if not spans and not _docstring_declares_lock_held(method):
                continue
            whole = _docstring_declares_lock_held(method)
            for node, target in container_mutations(method):
                if not target.startswith("self."):
                    continue
                if whole or _inside(node.lineno, spans):
                    protected.add(target)
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        name = dotted_name(tgt) if isinstance(
                            tgt, ast.Attribute) else None
                        if (name and name.startswith("self.")
                                and name not in lock_attrs
                                and (whole or _inside(node.lineno, spans))):
                            protected.add(name)
        if not protected:
            return

        # Pass 2: mutations of protected attrs outside any lock context.
        for method in methods:
            if method.name == "__init__":
                continue  # construction happens-before publication
            if _docstring_declares_lock_held(method):
                continue
            spans = _with_lock_spans(method, lock_attrs)
            seen_lines: set[tuple[int, str]] = set()
            for node, target in container_mutations(method):
                if target in protected and not _inside(node.lineno, spans):
                    key = (node.lineno, target)
                    if key not in seen_lines:
                        seen_lines.add(key)
                        yield RawFinding(
                            node.lineno,
                            f"{target!r} is lock-protected elsewhere in "
                            f"{cls.name} but mutated here outside the lock",
                        )
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        name = dotted_name(tgt) if isinstance(
                            tgt, ast.Attribute) else None
                        if (name and name in protected
                                and not _inside(node.lineno, spans)):
                            key = (node.lineno, name)
                            if key not in seen_lines:
                                seen_lines.add(key)
                                yield RawFinding(
                                    node.lineno,
                                    f"{name!r} is lock-protected elsewhere "
                                    f"in {cls.name} but assigned here "
                                    "outside the lock",
                                )
