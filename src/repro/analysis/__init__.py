"""Static analysis that mechanizes the repo's parity contract.

Every real bug this reproduction has shipped and fixed was an
*invariant* violation, not a math error: an ``id()``-keyed cache
serving stale engines, gauge providers shadowing counters, worker-side
metrics dropped at the process boundary, engine resolution happening
after cache-key construction. ``repro.analysis`` turns those
invariants into AST-checked rules so the next violation fails CI
instead of shipping:

* ``repro lint`` runs the rule catalog over the source tree
  (see ``repro lint --list-rules`` for each rule and the shipped bug
  it descends from);
* inline waivers use ``# repro: lint-ok[rule-id] reason`` — the reason
  is mandatory and audited by the reporters;
* pre-existing findings can be grandfathered into a committed baseline
  (``repro lint --write-baseline``) and burned down over time;
* the parity-surface rules scope themselves from the *import graph*
  (everything the render path transitively imports), never from a
  hand-maintained module list.
"""

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    empty_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    ADVICE,
    ERROR,
    WARNING,
    FileContext,
    Finding,
    LintConfig,
    RawFinding,
    Rule,
    all_rules,
    get_rule,
)
from repro.analysis.report import (
    REPORT_SCHEMA,
    render_json,
    render_text,
    summarize,
)
from repro.analysis.runner import (
    LintResult,
    collect_files,
    default_source_root,
    run_lint,
)

__all__ = [
    "ADVICE",
    "BASELINE_SCHEMA",
    "Baseline",
    "ERROR",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "RawFinding",
    "REPORT_SCHEMA",
    "Rule",
    "WARNING",
    "all_rules",
    "collect_files",
    "default_source_root",
    "empty_baseline",
    "get_rule",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "summarize",
    "write_baseline",
]
