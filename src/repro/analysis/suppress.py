"""Inline suppressions: ``# repro: lint-ok[rule-id] reason``.

A suppression is a contract, not an escape hatch: it must name the rule
(or a comma list of rules) *and* give a non-empty reason, which the
reporters echo so reviewers can audit every waived invariant. Placement
decides scope:

* on the offending line -> suppresses that line only;
* on the ``def``/``class`` line of a scope -> suppresses the rule(s)
  anywhere inside that scope (for contracts a line can't express, e.g.
  "caller holds the lock");
* malformed markers (missing rule id or reason) are themselves findings
  (rule ``bad-suppression``), so a typo cannot silently disable a rule.

Suppressions that match no finding are reported by the runner as
``unused-suppression`` findings — stale waivers rot into falsehoods
otherwise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_MARKER = re.compile(
    r"#\s*repro:\s*lint-ok"          # the marker
    r"(?:\[(?P<rules>[^\]]*)\])?"    # [rule-id, ...]
    r"[ \t]*(?P<reason>[^#\n]*)"     # the mandatory reason
)


@dataclass
class Suppression:
    """One parsed ``lint-ok`` marker."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class SuppressionSet:
    """All markers of one file, plus the malformed ones."""

    by_line: dict[int, list[Suppression]] = field(default_factory=dict)
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def match(self, rule_id: str, line: int, scope_start: int) -> Suppression | None:
        """The suppression covering ``rule_id`` at ``line`` (same line
        first, then the enclosing scope's header line), if any."""
        for candidate_line in (line, scope_start):
            for sup in self.by_line.get(candidate_line, ()):
                if rule_id in sup.rules:
                    sup.used = True
                    return sup
        return None

    def unused(self) -> list[Suppression]:
        return [s for sups in self.by_line.values() for s in sups if not s.used]


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """``(line, text)`` for every real comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps markers
    *mentioned in docstrings* — like the ones documenting this very
    syntax — from registering as live suppressions.
    """
    import io
    import tokenize

    out = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except tokenize.TokenError:
        pass  # the AST parse will have reported the real problem
    return out


def parse_suppressions(source: str) -> SuppressionSet:
    """Scan a file's comments for ``lint-ok`` markers.

    The scan is forgiving about *finding* markers and strict about
    their shape — ``repro: lint-ok`` without a bracketed rule list or
    without a reason is recorded as malformed.
    """
    out = SuppressionSet()
    for lineno, text in _comment_tokens(source):
        if "lint-ok" not in text:
            continue
        match = _MARKER.search(text)
        if match is None:
            continue
        rules_raw = match.group("rules")
        reason = (match.group("reason") or "").strip()
        if not rules_raw or not rules_raw.strip():
            out.malformed.append(
                (lineno, "lint-ok marker is missing its [rule-id] list"))
            continue
        rules = tuple(r.strip() for r in rules_raw.split(",") if r.strip())
        if not rules:
            out.malformed.append(
                (lineno, "lint-ok marker has an empty [rule-id] list"))
            continue
        if not reason:
            out.malformed.append(
                (lineno, f"lint-ok[{', '.join(rules)}] has no reason; "
                         "every waiver must say why"))
            continue
        out.by_line.setdefault(lineno, []).append(
            Suppression(line=lineno, rules=rules, reason=reason))
    return out
