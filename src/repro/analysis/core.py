"""Rule framework for :mod:`repro.analysis`.

A *rule* is a small AST pass that mechanizes one project invariant —
each one distilled from a bug this repo actually shipped and fixed, or
from a forward risk the ROADMAP names (async serving, multi-host
fan-out). Rules yield :class:`RawFinding`s against a per-file
:class:`FileContext`; the runner resolves severities from the
per-subsystem :class:`LintConfig`, applies inline suppressions and the
committed baseline, and hands :class:`Finding`s to the reporters.

Severity is configured **per subsystem** (the first package level under
``repro``): the parity-critical layers (``rt``, ``bvh``, ``render``,
``geometry``, ``math3d``, ``gaussians``) run every rule at full
severity, while the serving/eval layers (``serve``, ``eval``, ``pool``,
``obs``, ``hwsim``) relax the rules whose failure modes cannot corrupt
an image (see :data:`RELAXED_RULES`). Files outside the package (the
test fixture corpus, seeded CI violations) get the strict defaults.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Severity levels, in increasing order of badness.
ADVICE = "advice"
WARNING = "warning"
ERROR = "error"
_SEVERITY_ORDER = {ADVICE: 0, WARNING: 1, ERROR: 2}

#: Subsystems (first package level under ``repro``) where every rule
#: runs at its declared severity.
STRICT_SUBSYSTEMS = frozenset(
    {"rt", "bvh", "render", "geometry", "math3d", "gaussians"})

#: Subsystems where :data:`RELAXED_RULES` downgrade error -> warning:
#: they sit above the parity surface, so these bug classes cost
#: throughput or duplicate work there, never image bits.
RELAXED_SUBSYSTEMS = frozenset({"serve", "eval", "pool", "obs", "hwsim"})

#: Rules that relax outside the parity-critical subsystems.
RELAXED_RULES = frozenset({"cache-key-params", "float-eq", "mutable-default"})


@dataclass(frozen=True)
class RawFinding:
    """What a rule emits: a line plus a message (severity comes later)."""

    line: int
    message: str


@dataclass
class Finding:
    """One resolved finding, ready for reporting and baselining."""

    rule: str
    severity: str
    path: str
    line: int
    symbol: str
    message: str
    fingerprint: str
    suppressed: bool = False
    suppress_reason: str | None = None
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Counts against the gate (not suppressed, not grandfathered)."""
        return not self.suppressed and not self.baselined

    def to_json(self) -> dict:
        doc = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.suppressed:
            doc["suppressed"] = True
            doc["suppress_reason"] = self.suppress_reason
        if self.baselined:
            doc["baselined"] = True
        return doc


@dataclass
class LintConfig:
    """How one lint run resolves severities and scopes.

    ``parity_roots`` seed the import-graph walk that computes the
    parity surface (every module the render path transitively imports);
    ``assume_parity`` forces files that are not package modules — the
    fixture corpus, seeded CI violations — onto the surface so the
    parity rules apply to them.
    """

    parity_roots: tuple[str, ...] = ("repro.render.renderer",)
    assume_parity: bool = False
    enabled_rules: frozenset[str] | None = None
    strict_subsystems: frozenset[str] = STRICT_SUBSYSTEMS
    relaxed_subsystems: frozenset[str] = RELAXED_SUBSYSTEMS

    def rule_enabled(self, rule_id: str) -> bool:
        return self.enabled_rules is None or rule_id in self.enabled_rules

    def severity_for(self, rule: "Rule", subsystem: str | None) -> str:
        severity = rule.severity
        if (severity == ERROR and rule.id in RELAXED_RULES
                and subsystem in self.relaxed_subsystems):
            return WARNING
        return severity


class FileContext:
    """Everything a rule may inspect about one file."""

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        module: str | None,
        in_parity_surface: bool,
        config: LintConfig,
    ) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: Dotted module name when the file belongs to the ``repro``
        #: package (``None`` for loose files such as test fixtures).
        self.module = module
        self.in_parity_surface = in_parity_surface
        self.config = config
        self._scopes: list[tuple[int, int, str]] | None = None

    @property
    def subsystem(self) -> str | None:
        """First package level under ``repro`` (``rt``, ``serve``, ...)."""
        if not self.module or not self.module.startswith("repro."):
            return None
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else None

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def _scope_spans(self) -> list[tuple[int, int, str]]:
        if self._scopes is None:
            spans: list[tuple[int, int, str]] = []

            def walk(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                        name = f"{prefix}.{child.name}" if prefix else child.name
                        spans.append((child.lineno,
                                      child.end_lineno or child.lineno, name))
                        walk(child, name)
                    else:
                        walk(child, prefix)

            walk(self.tree, "")
            # Innermost scope last, so reversed lookup finds it first.
            spans.sort(key=lambda s: (s[0], -s[1]))
            self._scopes = spans
        return self._scopes

    def symbol_at(self, line: int) -> str:
        """Dotted name of the innermost def/class enclosing ``line``
        (``"<module>"`` at top level)."""
        best = "<module>"
        for start, end, name in self._scope_spans():
            if start <= line <= end:
                best = name
        return best

    def scope_start(self, line: int) -> int:
        """First line of the innermost enclosing def/class (the line a
        scope-wide suppression comment lives on), or ``line`` itself."""
        best = line
        for start, end, _name in self._scope_spans():
            if start <= line <= end:
                best = start
        return best


class Rule:
    """Base class; subclasses define ``id``/``severity``/``check``.

    ``history`` names the shipped bug (or forward risk) the rule
    descends from — it is what the README's rule catalog renders.
    """

    id: str = ""
    severity: str = ERROR
    description: str = ""
    history: str = ""

    def check(self, ctx: FileContext) -> Iterable[RawFinding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``id``) to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.severity not in _SEVERITY_ORDER:
        raise ValueError(f"unknown severity {rule.severity!r} on {rule.id}")
    _REGISTRY[rule.id] = rule  # repro: lint-ok[lock-discipline] registration runs at import time, serialized by the interpreter's import lock
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (importing the rule package
    on first use so registration is a side effect of import)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401

    return _REGISTRY[rule_id]


def fingerprint(rule_id: str, path: str, symbol: str, line_text: str) -> str:
    """Stable identity of one finding for the baseline file.

    Deliberately excludes the line *number* (edits above a grandfathered
    finding must not un-baseline it): the enclosing symbol plus the
    stripped source line pin it tightly enough in practice.
    """
    digest = hashlib.sha256(
        "\x1f".join([rule_id, path, symbol, line_text.strip()]).encode("utf-8")
    ).hexdigest()
    return digest[:16]


# ---------------------------------------------------------------------------
# Small AST helpers shared by the rule modules.
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else ``None``."""
    return dotted_name(node.func)


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda]:
    """Every function-ish scope in the file, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def function_params(fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def module_level_assigns(tree: ast.Module) -> Iterator[tuple[str, ast.expr]]:
    """``(name, value)`` for every simple module-level assignment."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield target.id, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                yield node.target.id, node.value


def is_container_ctor(node: ast.expr) -> bool:
    """Whether an expression constructs a mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in {"dict", "list", "set", "collections.defaultdict",
                        "defaultdict", "collections.OrderedDict",
                        "OrderedDict", "collections.deque", "deque"}
    return False


def is_lock_ctor(node: ast.expr) -> bool:
    """Whether an expression constructs a lock-ish synchronizer."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    return name in {"threading.Lock", "threading.RLock", "threading.Condition",
                    "Lock", "RLock", "Condition"}


#: Container methods that mutate in place (reads are deliberately not
#: policed: a GIL-atomic get on a shared dict is safe, and the lockset
#: rule would drown in noise if it flagged them).
MUTATING_METHODS = frozenset({
    "pop", "popitem", "clear", "update", "setdefault", "append", "extend",
    "insert", "remove", "discard", "add", "appendleft", "extendleft",
})


def container_mutations(scope: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, container_dotted_name)`` for each in-place mutation
    of a named container inside ``scope`` (subscript stores/deletes,
    augmented subscript assigns, and mutating method calls)."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = dotted_name(target.value)
                    if name:
                        yield node, name
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                name = dotted_name(node.target.value)
                if name:
                    yield node, name
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = dotted_name(target.value)
                    if name:
                        yield node, name
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATING_METHODS):
                name = dotted_name(node.func.value)
                if name:
                    yield node, name
