"""The parity surface, computed from the import graph — never hand-listed.

The standing contract says every optimization produces bit-identical
images. The modules that can break that contract are exactly the ones
the render path *executes*, i.e. everything transitively imported from
the parity roots (by default :mod:`repro.render.renderer`, the
end-to-end tracer). Hand-maintained module lists rot the moment someone
adds an import; deriving the surface from the AST import graph means a
new dependency is strict the instant it is reachable.

The walk is purely static: every ``import``/``from ... import`` in a
module body — including function-local imports, which this codebase
uses for laziness, not optionality — contributes an edge. ``from x
import y`` counts both ``x.y`` (it may be a submodule) and ``x``.
"""

from __future__ import annotations

import ast
from pathlib import Path


def _module_name(path: Path, package_root: Path) -> str | None:
    """Dotted module name of ``path`` relative to the directory that
    *contains* the ``repro`` package, else ``None``."""
    try:
        rel = path.resolve().relative_to(package_root.resolve())
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def module_imports(tree: ast.Module, module: str,
                   is_package: bool = False) -> set[str]:
    """Every absolute module name this module imports (repro.* only)."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against the enclosing package
                # (level 1 = that package; one more level per extra dot).
                parts = module.split(".")
                drop = node.level - 1 if is_package else node.level
                base = ".".join(parts[:len(parts) - drop]) if drop < len(parts) else ""
                stem = f"{base}.{node.module}" if node.module and base else (
                    node.module or base)
            else:
                stem = node.module or ""
            if stem:
                out.add(stem)
                for alias in node.names:
                    out.add(f"{stem}.{alias.name}")
    return {name for name in out if name == "repro" or name.startswith("repro.")}


def build_import_graph(files: dict[str, ast.Module]) -> dict[str, set[str]]:
    """``module -> imported repro modules`` over parsed package files."""
    known = set(files)
    packages = {m for m in known if any(k.startswith(m + ".") for k in known)}
    graph: dict[str, set[str]] = {}
    for module, tree in files.items():
        edges = set()
        for target in module_imports(tree, module, is_package=module in packages):
            # ``from repro.rt import tracer`` produces both ``repro.rt``
            # and ``repro.rt.tracer``; keep whichever are real modules.
            if target in known:
                edges.add(target)
            # Importing a package executes its __init__, which imports
            # its public submodules — the package node carries those
            # edges itself, so nothing more to do here.
        graph[module] = edges
    return graph


def parity_surface(files: dict[str, ast.Module],
                   roots: tuple[str, ...]) -> set[str]:
    """Modules transitively imported from the parity roots (inclusive)."""
    graph = build_import_graph(files)
    seen: set[str] = set()
    frontier = [r for r in roots if r in graph]
    while frontier:
        module = frontier.pop()
        if module in seen:
            continue
        seen.add(module)
        for target in graph.get(module, ()):
            if target not in seen:
                frontier.append(target)
    return seen
