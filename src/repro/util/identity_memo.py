"""The one blessed identity-keyed memo.

Caching per *object* (not per value) keeps hot paths allocation-free,
but a plain ``dict`` keyed by ``id(obj)`` has two failure modes this
repo has already shipped and fixed once each:

* **recycled ids** — once the object dies, its id can be reused by a
  different object, and the cache serves a stale value built over
  different data (the tracer-reuse bug fixed in PR 2);
* **unlocked mutation** — the memo is shared process-wide, and the
  serving layer mutates it from dispatcher threads and tile workers
  concurrently (the ``_TABLES_CACHE`` race the lint rule ``lock-
  discipline`` was written to catch).

:class:`IdentityMemo` packages the fix for both: entries pair the value
with a ``weakref.ref`` that is verified against the live object on every
hit (a dead or recycled key can never satisfy a lookup), a death
callback evicts the entry, and every mutation happens under one lock.
``repro.analysis`` blesses exactly this pattern — new identity-keyed
caches should use this class instead of hand-rolling a dict.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, TypeVar

T = TypeVar("T")
V = TypeVar("V")


class IdentityMemo:
    """A locked, weakref-guarded memo keyed by object identity.

    Values are computed once per *live* object: lookups verify the
    stored weak reference against the argument, so a recycled ``id``
    can never serve a value built for a dead object. Unweakrefable
    objects are simply never cached (``get`` misses, ``put`` is a
    no-op) — correct, just unmemoized.
    """

    def __init__(self) -> None:
        self._entries: dict[int, tuple[weakref.ref, object]] = {}
        self._lock = threading.Lock()

    def get(self, obj: object) -> object | None:
        """The memoized value for ``obj``, or ``None`` on a miss."""
        key = id(obj)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is obj:
                return entry[1]
        return None

    def put(self, obj: T, value: V) -> V:
        """Memoize ``value`` for ``obj``; returns ``value`` either way."""
        key = id(obj)
        try:
            ref = weakref.ref(obj, lambda _r, k=key: self._evict(k))
        except TypeError:
            return value  # unweakrefable: never cached
        with self._lock:
            self._entries[key] = (ref, value)
        return value

    def get_or_build(self, obj: T, build: Callable[[T], V]) -> V:
        """Return the memoized value, building (outside the lock) on a miss.

        ``build`` runs without the lock held, so two threads racing on
        the same new object may both build; the duplicate is benign
        (both values are equal by construction) and the lock is never
        held across potentially-heavy work.
        """
        hit = self.get(obj)
        if hit is not None:
            return hit
        return self.put(obj, build(obj))

    def _evict(self, key: int) -> None:
        # Weakref death callbacks can fire at arbitrary allocation
        # points — including while this thread already holds the lock —
        # so the eviction must not re-acquire it. A bare dict.pop is
        # GIL-atomic, which is all the callback needs.
        self._entries.pop(key, None)  # repro: lint-ok[lock-discipline] GIL-atomic pop in a weakref death callback; taking the non-reentrant lock here could deadlock mid-gc

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
