"""Small shared utilities with no dependencies on the rest of the stack."""

from repro.util.identity_memo import IdentityMemo

__all__ = ["IdentityMemo"]
