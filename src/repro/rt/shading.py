"""Per-ray Gaussian shading: the canonical alpha kernel and SH colors.

All acceleration structures funnel their candidate hits through one
*canonical* any-hit evaluation so that every configuration renders the
bit-identical image (the paper's premise that "rendering quality remains
the same regardless of bounding primitives"). The kernel works in the
Gaussian's unit-sphere object space:

* ``x_obj = (kappa S)^-1 R^T (x - mu)`` maps the kappa-sigma ellipsoid to
  the unit sphere, so the exact participation test is a unit-sphere
  quadratic;
* the Mahalanobis distance is ``kappa^2 |x_obj|^2``, so the paper's
  ``alpha = o * G(r_o + t_alpha r_d)`` becomes
  ``o * exp(-0.5 kappa^2 d_min^2)`` with ``d_min`` the closest approach
  of the object-space ray to the origin;
* affine maps preserve the ray parameter, so object-space t values are
  world-space t values.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gaussians import GaussianCloud, canonical_transforms
from repro.gaussians.sh import sh_basis

#: Hits with alpha below this threshold are discarded, as in 3DGS/3DGRT
#: (1/255 — they cannot change an 8-bit pixel).
ALPHA_MIN = 1.0 / 255.0

#: Alpha is clamped below 1 so transmittance never reaches exactly zero.
ALPHA_MAX = 0.999


class SceneShading:
    """Precomputed per-Gaussian shading state for one scene."""

    def __init__(self, cloud: GaussianCloud) -> None:
        self.cloud = cloud
        _, world_to_obj = canonical_transforms(cloud)
        self.w2o_linear = np.ascontiguousarray(world_to_obj.linear)
        self.w2o_offset = np.ascontiguousarray(world_to_obj.offset)
        self.opacities = cloud.opacities
        self.kappa_sq = cloud.kappa * cloud.kappa
        self.sh = cloud.sh
        self._sh_degree = cloud.sh_degree

    def evaluate_hit(
        self,
        gaussian_id: int,
        origin: np.ndarray,
        direction: np.ndarray,
    ) -> tuple[float, float] | None:
        """Canonical any-hit evaluation for one candidate Gaussian.

        Returns ``(t_entry, alpha)`` when the ray enters the Gaussian's
        kappa-sigma ellipsoid in front of the origin with
        ``alpha >= ALPHA_MIN``; ``None`` otherwise (false positives from
        proxy geometry land here).

        ``t_entry`` — where the ray crosses into the bounding ellipsoid —
        is the exact-primitive analogue of 3DGRT's sort key (the
        bounding-proxy entry hit reported by backface-culled traversal);
        ``alpha`` is evaluated at the point of maximum response
        (``t_alpha`` in the paper), matching Section II-B.
        """
        linear = self.w2o_linear[gaussian_id]
        o = linear @ origin + self.w2o_offset[gaussian_id]
        d = linear @ direction
        dd = d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
        if dd < 1e-30:
            return None
        od = o[0] * d[0] + o[1] * d[1] + o[2] * d[2]
        oo = o[0] * o[0] + o[1] * o[1] + o[2] * o[2]
        t_peak = -od / dd
        min_sq = oo - od * od / dd
        if min_sq > 1.0:
            # Closest approach misses the bounding ellipsoid: the ray does
            # not cross the kappa-sigma surface. Proxy hit was a false
            # positive.
            return None
        t_entry = t_peak - math.sqrt(max((1.0 - min_sq) / dd, 0.0))
        if t_entry <= 0.0:
            # Entry behind the origin (or origin inside the ellipsoid):
            # backface-culled proxy traversal reports no hit either.
            return None
        alpha = self.opacities[gaussian_id] * math.exp(-0.5 * self.kappa_sq * min_sq)
        if alpha < ALPHA_MIN:
            return None
        return t_entry, min(alpha, ALPHA_MAX)

    def colors(self, gaussian_ids: np.ndarray, direction: np.ndarray) -> np.ndarray:
        """View-dependent RGB colors for a batch of Gaussians on one ray.

        3DGRT evaluates SH per ray at blend time (unlike 3DGS, which bakes
        colors per frame); the ray direction is shared by the whole batch.
        """
        gaussian_ids = np.asarray(gaussian_ids, dtype=np.int64)
        basis = sh_basis(direction[None, :], self._sh_degree)[0]
        coeffs = self.sh[gaussian_ids]
        color = np.einsum("c,ncd->nd", basis, coeffs) + 0.5
        return np.clip(color, 0.0, None)
