"""Multi-round Gaussian ray tracing with optional checkpoint & replay.

This module is the heart of the reproduction. It implements:

* interval-constrained BVH traversal over both structure families
  (monolithic proxy BVH and GRTX-SW's TLAS + shared BLAS);
* the any-hit k-buffer algorithm of Listing 1, including the
  ``ignoreIntersectionEXT`` / hit-report ``t_max`` semantics;
* multi-round tracing with early ray termination (the 3DGRT baseline);
* single-round tracing (Figure 6a's comparison point);
* GRTX-HW traversal checkpointing: nodes and instances whose entry
  distance fails the ``t_max`` validation are checkpointed (node address +
  TLAS leaf address + t, Figure 11), rejected k-buffer entries go to the
  eviction buffer, and subsequent rounds resume from the checkpointed
  frontier instead of the root.

Every node fetch is recorded with its byte address so the hardware model
can replay the exact memory behaviour.

Implementation note: the traversal inner loops deliberately use plain
Python floats and pre-converted lists for per-slot scalar work, and numpy
only for the vectorized slab and triangle tests. Pure-Python BVH traversal
over hundreds of thousands of nodes is the throughput bottleneck of the
whole reproduction and this hybrid is ~10x faster than idiomatic
numpy-everywhere code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bvh.flatten import PRIMS_TRIANGLES, flatten
from repro.bvh.layout import INSTANCE_BYTES, LEAF_HEADER_BYTES, SPHERE_PRIM_BYTES, internal_node_bytes
from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.node import KIND_INTERNAL, KIND_LEAF
from repro.bvh.two_level import TwoLevelBVH

from repro.rt.kbuffer import EvictionBuffer, KBuffer, KBufferEntry
from repro.rt.recorder import (
    FETCH_INTERNAL,
    FETCH_LEAF,
    PRIM_CUSTOM,
    PRIM_SPHERE,
    PRIM_TRANSFORM,
    PRIM_TRI,
    RayTrace,
)
from repro.rt.shading import SceneShading
from repro.util import IdentityMemo

# Checkpoint entry kinds (what the 20-byte checkpoint record refers to).
CKPT_NODE = 0
CKPT_LEAF = 1
CKPT_INSTANCE = 2
CKPT_BLAS_NODE = 3
CKPT_BLAS_LEAF = 4

# Any-hit outcome codes.
_HIT_ACCEPTED = 0
_HIT_REJECTED = 1
_HIT_BEYOND = 2

_INF = float("inf")


@dataclass(frozen=True)
class TraceConfig:
    """Rendering algorithm configuration.

    Attributes
    ----------
    k:
        k-buffer capacity per tracing round (paper default: 16 for the
        motivation study, 8 for GRTX).
    mode:
        ``"multiround"`` (3DGRT's k-buffer rounds) or ``"singleround"``
        (collect every intersection in one traversal, sort, then blend).
    checkpointing:
        Enable GRTX-HW checkpoint & replay across rounds.
    transmittance_min:
        Early-ray-termination threshold: blending stops once accumulated
        transmittance drops below this.
    max_rounds:
        Safety bound on tracing rounds per ray.
    kbuffer_layout:
        ``"soa"`` (k-buffer in global memory, our Vulkan-style layout) or
        ``"payload"`` (OptiX-style ray payload registers). Only affects
        the timing model (Figure 21), never the image.
    """

    k: int = 16
    mode: str = "multiround"
    checkpointing: bool = False
    transmittance_min: float = 0.01
    max_rounds: int = 64
    kbuffer_layout: str = "soa"
    record_blended: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.mode not in ("multiround", "singleround"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.kbuffer_layout not in ("soa", "payload"):
            raise ValueError(f"unknown kbuffer layout {self.kbuffer_layout!r}")
        if not 0.0 < self.transmittance_min < 1.0:
            raise ValueError("transmittance_min must be in (0, 1)")
        if self.mode == "singleround" and self.checkpointing:
            raise ValueError("checkpointing only applies to multiround tracing")


@dataclass
class RayOutcome:
    """Result of tracing one ray to completion."""

    color: np.ndarray
    transmittance: float
    rounds: int
    blended: int
    terminated_early: bool
    #: (gaussian_id, alpha, t) triples in blend order, populated when
    #: TraceConfig.record_blended is set (the training substrate needs
    #: the exact blend lists for its backward pass).
    blend_records: list[tuple[int, float, float]] | None = None


class _RoundState:
    """Mutable per-round traversal state (one traceRayEXT invocation)."""

    __slots__ = (
        "t_min",
        "t_max",
        "t_clip",
        "kbuffer",
        "evict_out",
        "ckpt_out",
        "round_trace",
        "collect_all",
        "hits",
        "hits_seen",
        "ckpt_enabled",
        "frontier",
    )

    def __init__(
        self,
        t_min: float,
        kbuffer: KBuffer | None,
        round_trace,
        collect_all: bool,
        ckpt_enabled: bool,
        t_clip: float = _INF,
        frontier: frozenset[int] = frozenset(),
    ):
        self.t_min = t_min
        self.t_max = _INF
        self.t_clip = t_clip
        self.kbuffer = kbuffer
        self.evict_out = EvictionBuffer()
        self.ckpt_out: list[tuple[float, int, int, int, int]] = []
        self.round_trace = round_trace
        self.collect_all = collect_all
        self.hits: list[KBufferEntry] = []
        self.hits_seen: set[int] = set()
        self.ckpt_enabled = ckpt_enabled
        #: Gaussians already blended at exactly ``t_min``: the interval
        #: bound is exclusive only of these, so a hit whose t ties the
        #: previous round's boundary is not dropped (equal-t survival).
        self.frontier = frontier

    def checkpoint(self, kind: int, ref: int, gid: int, inst_addr: int, t: float) -> None:
        """Record a checkpoint entry (no-op when GRTX-HW is disabled: the
        baseline drops the node and re-finds it from the root next round)."""
        if not self.ckpt_enabled:
            return
        self.ckpt_out.append((t, kind, ref, gid, inst_addr))
        self.round_trace.checkpoints_written += 1


class FlatTables:
    """Plain-list views of one flattened structure for per-ray loops.

    The scalar tracer's hot loops index Python lists (faster than numpy
    scalars at this granularity), and the packet trace recorder's
    control-flow reconstruction reads the *same* tables — one builder,
    so the two consumers cannot disagree on addresses, child layouts or
    leaf contents. Built once per :class:`~repro.bvh.flatten.FlatStructure`
    (see :func:`flat_tables`); treat every attribute as immutable.
    """

    __slots__ = (
        "child_lo", "child_hi", "child_kind", "child_ref",
        "node_addr", "leaf_addr", "leaf_bytes", "leaf_start", "leaf_count",
        "child_addr", "child_bytes", "child_is_leaf", "node_bytes",
        "ordered_gids", "v0", "e1", "e2", "owner", "blas_tables",
        "gid_blas",
    )

    def __init__(self, flat) -> None:
        bvh = flat.root
        self.child_lo = bvh.child_lo.tolist()
        self.child_hi = bvh.child_hi.tolist()
        self.child_kind = bvh.child_kind.tolist()
        self.child_ref = bvh.child_ref.tolist()
        self.node_addr = bvh.node_addr.tolist()
        self.leaf_addr = bvh.leaf_addr.tolist()
        self.leaf_bytes = bvh.leaf_bytes.tolist()
        self.leaf_start = bvh.leaf_start.tolist()
        self.leaf_count = bvh.leaf_count.tolist()
        self.node_bytes = internal_node_bytes(bvh.width)
        # Child (address, size) for prefetch lists, any slot kind.
        addr, sizes, leaf_mask = [], [], []
        for n in range(bvh.n_nodes):
            row_a, row_s, row_l = [], [], []
            for slot in range(bvh.width):
                kind = self.child_kind[n][slot]
                ref = self.child_ref[n][slot]
                if kind == KIND_INTERNAL:
                    row_a.append(self.node_addr[ref])
                    row_s.append(self.node_bytes)
                    row_l.append(False)
                elif kind == KIND_LEAF:
                    row_a.append(self.leaf_addr[ref])
                    row_s.append(self.leaf_bytes[ref])
                    row_l.append(True)
                else:
                    row_a.append(0)
                    row_s.append(0)
                    row_l.append(False)
            addr.append(row_a)
            sizes.append(row_s)
            leaf_mask.append(row_l)
        self.child_addr = addr
        self.child_bytes = sizes
        self.child_is_leaf = leaf_mask

        self.ordered_gids = None
        self.v0 = self.e1 = self.e2 = self.owner = None
        self.blas_tables = None
        self.gid_blas = None
        if flat.two_level:
            self.ordered_gids = flat.prim_gid.tolist()
            # One entry per shared-BLAS slot (None for sphere slots, which
            # need no tree tables). Homogeneous structures have one slot.
            self.blas_tables = tuple(
                _BlasTables(b) if b.kind == "mesh" else None
                for b in flat.blas
            )
            if len(flat.blas) > 1:
                # Per-Gaussian slot lookup for heterogeneous scenes: the
                # instance table is leaf-ordered, the hot loop indexes by
                # Gaussian id.
                gid_blas = np.zeros(flat.n_gaussians, dtype=np.int64)
                gid_blas[flat.prim_gid] = flat.inst_blas
                self.gid_blas = gid_blas.tolist()
        elif flat.is_triangle_proxy:
            # Plain-list copies of the flattened (already leaf-ordered)
            # triangle soup: leaves hold <= a handful of triangles, and
            # a scalar Moller-Trumbore over Python floats beats numpy's
            # per-call overhead by ~6x at that size.
            mesh = flat.mesh
            self.v0 = mesh.v0.tolist()
            self.e1 = mesh.e1.tolist()
            self.e2 = mesh.e2.tolist()
            self.owner = mesh.owner.tolist()
        else:
            self.ordered_gids = flat.prim_gid.tolist()


# Identity-checked memo mirroring repro.bvh.flatten's registry: keyed by
# object identity (FlatStructure defines __eq__, so it is unhashable),
# weakref-verified against the live object, locked (serving dispatchers
# and tile threads build tables concurrently), and evicted when the
# structure dies. Keeping the tables out of the object itself also keeps
# them out of the pickle stream when pooled tiles ship flattened
# structures to workers.
_TABLES_MEMO = IdentityMemo()


def flat_tables(flat) -> FlatTables:
    """The (memoized) :class:`FlatTables` of one flattened structure."""
    return _TABLES_MEMO.get_or_build(flat, FlatTables)


class Tracer:
    """Traces rays through one scene + acceleration structure.

    The tracer is built once per (scene, structure, config) and reused for
    every ray; construction precomputes leaf-contiguous primitive arrays
    and plain-list views of the BVH tables for the hot loops.
    """

    def __init__(
        self,
        structure: MonolithicBVH | TwoLevelBVH,
        shading: SceneShading,
        config: TraceConfig | None = None,
    ) -> None:
        # Both engines consume the same flattened layout (leaf-ordered
        # primitive tables, instance table, shared-BLAS slots), so the
        # scalar and packet tracers cannot drift apart on what a
        # structure is.  A pre-flattened structure (what pool workers
        # receive) is accepted directly.
        flat = flatten(structure)
        self.structure = structure
        self.flat = flat
        self.shading = shading
        self.config = config or TraceConfig()
        self.two_level = flat.two_level
        self._bvh = flat.root
        self._blas = flat.blas[0] if flat.two_level else None
        self._blas_list = flat.blas if flat.two_level else ()
        self._node_bytes = internal_node_bytes(self._bvh.width)
        self._sphere_blas_bytes = LEAF_HEADER_BYTES + 24 + SPHERE_PRIM_BYTES
        self._prepare_tables()
        # Per-ray scratch, set by trace_ray.
        self._o = np.zeros(3)
        self._d = np.zeros(3)
        self._inv_d = np.zeros(3)
        self._blend_log: list[tuple[int, float, float]] | None = None
        #: Optional :class:`repro.obs.PhaseAccumulator`; when set, the
        #: round drivers accumulate traversal/blend seconds into it
        #: (the renderer attaches one per bundle and flushes it into
        #: the ``rt.phase.*`` histograms). None keeps the hot loop
        #: branch-cheap.
        self.profile = None

    def _prepare_tables(self) -> None:
        """Bind the shared plain-list tables to hot-loop attributes."""
        tables = flat_tables(self.flat)
        self._child_lo_l = tables.child_lo
        self._child_hi_l = tables.child_hi
        self._child_kind = tables.child_kind
        self._child_ref = tables.child_ref
        self._node_addr = tables.node_addr
        self._leaf_addr = tables.leaf_addr
        self._leaf_bytes = tables.leaf_bytes
        self._leaf_start = tables.leaf_start
        self._leaf_count = tables.leaf_count
        self._child_addr = tables.child_addr
        self._child_bytes = tables.child_bytes
        self._child_is_leaf = tables.child_is_leaf

        if self.two_level:
            self._ordered_gids = tables.ordered_gids
            self._blas_tables_all = tables.blas_tables
            self._gid_blas = tables.gid_blas
            if self._blas.kind == "mesh":
                self._blas_tables = tables.blas_tables[0]
        elif self.flat.is_triangle_proxy:
            self._v0l = tables.v0
            self._e1l = tables.e1
            self._e2l = tables.e2
            self._ownero = tables.owner
        else:
            self._ordered_gids = tables.ordered_gids

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def trace_ray(
        self,
        origin: np.ndarray,
        direction: np.ndarray,
        ray_trace: RayTrace | None = None,
        t_clip: float = _INF,
    ) -> RayOutcome:
        """Trace one ray to completion and return its blended color.

        ``t_clip`` bounds the traced segment: Gaussians beyond it are
        ignored entirely (used when an analytic scene object — mirror or
        glass — truncates the primary segment before a secondary ray is
        spawned).
        """
        ray_trace = ray_trace if ray_trace is not None else RayTrace()
        self._o = np.asarray(origin, dtype=np.float64)
        d = np.asarray(direction, dtype=np.float64)
        self._d = d
        safe = np.where(np.abs(d) < 1e-12, 1e-12, d)
        self._inv_d = 1.0 / safe

        if self.config.mode == "singleround":
            return self._trace_single_round(ray_trace, t_clip)
        return self._trace_multi_round(ray_trace, t_clip)

    # ------------------------------------------------------------------
    # Round drivers
    # ------------------------------------------------------------------

    def _trace_single_round(self, ray_trace: RayTrace, t_clip: float) -> RayOutcome:
        """One exhaustive traversal, then a global sort + blend.

        Figure 6(a)'s single-round configuration: no t_max shrinking
        during traversal and no per-hit sorting in the any-hit shader;
        all intersections are collected and sorted afterwards.
        """
        profile = self.profile
        round_trace = ray_trace.begin_round()
        state = _RoundState(0.0, None, round_trace, collect_all=True,
                            ckpt_enabled=False, t_clip=t_clip)
        if profile is not None:
            t0 = time.perf_counter()
        self._drain([(KIND_INTERNAL, 0, 0.0)], state, ray_trace)
        hits = sorted(state.hits, key=lambda e: (e.t, e.gaussian_id))
        round_trace.kbuffer_ops += len(hits)
        self._blend_log = [] if self.config.record_blended else None
        if profile is not None:
            t1 = time.perf_counter()
            profile.add("traversal", t1 - t0)
        color, transmittance, blended, terminated = self._blend(hits, 1.0, np.zeros(3))
        if profile is not None:
            profile.add("blend", time.perf_counter() - t1)
        round_trace.blended = blended
        return RayOutcome(
            color=color,
            transmittance=transmittance,
            rounds=1,
            blended=blended,
            terminated_early=terminated,
            blend_records=self._blend_log,
        )

    def _trace_multi_round(self, ray_trace: RayTrace, t_clip: float) -> RayOutcome:
        config = self.config
        hw = config.checkpointing
        t_min = 0.0
        #: Gaussians blended at exactly ``t_min`` so far. Carrying this
        #: (t, gid) frontier between rounds keeps the next-round bound
        #: exclusive only of already-blended Gaussians: a hit whose t
        #: exactly ties the last blended entry but overflowed this
        #: round's k-buffer survives into the next round instead of
        #: being dropped forever (which made multiround diverge from
        #: singleround on tied depths).
        frontier: frozenset[int] = frozenset()
        transmittance = 1.0
        color = np.zeros(3)
        blended_total = 0
        terminated = False
        self._blend_log = [] if config.record_blended else None
        ckpt_src: list[tuple[float, int, int, int, int]] = []
        evict_src: list[KBufferEntry] = []
        rounds = 0

        profile = self.profile
        for round_index in range(config.max_rounds):
            round_trace = ray_trace.begin_round()
            rounds += 1
            kbuffer = KBuffer(config.k)
            state = _RoundState(t_min, kbuffer, round_trace, collect_all=False,
                                ckpt_enabled=hw, t_clip=t_clip, frontier=frontier)

            if profile is not None:
                t0 = time.perf_counter()
            if hw and round_index > 0:
                self._prefill_from_evictions(evict_src, state)
                self._replay_checkpoints(ckpt_src, state, ray_trace)
            else:
                self._drain([(KIND_INTERNAL, 0, 0.0)], state, ray_trace)
            if profile is not None:
                profile.add("traversal", time.perf_counter() - t0)

            entries = sorted(kbuffer.drain(), key=lambda e: (e.t, e.gaussian_id))
            round_trace.kbuffer_ops += kbuffer.insertions
            round_trace.evictions_written += len(state.evict_out)
            if state.evict_out.high_water > ray_trace.evict_high_water:
                ray_trace.evict_high_water = state.evict_out.high_water
            if len(state.ckpt_out) > ray_trace.ckpt_high_water:
                ray_trace.ckpt_high_water = len(state.ckpt_out)

            if not entries:
                break

            if profile is not None:
                t1 = time.perf_counter()
            color, transmittance, blended, terminated = self._blend(
                entries, transmittance, color
            )
            if profile is not None:
                profile.add("blend", time.perf_counter() - t1)
            round_trace.blended = blended
            blended_total += blended
            if terminated:
                break
            last_t = entries[-1].t
            tied = frozenset(e.gaussian_id for e in entries if e.t == last_t)
            # When the boundary does not advance (a run of equal-t hits
            # wider than k), the frontier accumulates; otherwise it
            # resets to the Gaussians blended at the new boundary.
            frontier = (frontier | tied) if last_t == t_min else tied
            t_min = last_t
            if len(entries) < config.k:
                # Traversal exhausted the scene beyond t_min.
                break
            if hw:
                ckpt_src = state.ckpt_out
                evict_src = state.evict_out.drain_sorted(t_min, frontier)
                if not ckpt_src and not evict_src:
                    break

        return RayOutcome(
            color=color,
            transmittance=transmittance,
            rounds=rounds,
            blended=blended_total,
            terminated_early=terminated,
            blend_records=self._blend_log,
        )

    def _blend(
        self,
        entries: list[KBufferEntry],
        transmittance: float,
        color: np.ndarray,
    ) -> tuple[np.ndarray, float, int, bool]:
        """Front-to-back alpha blending with early ray termination."""
        if not entries:
            return color, transmittance, 0, False
        gids = np.fromiter((e.gaussian_id for e in entries), dtype=np.int64, count=len(entries))
        colors = self.shading.colors(gids, self._d)
        blended = 0
        terminated = False
        threshold = self.config.transmittance_min
        log = self._blend_log
        for i, entry in enumerate(entries):
            color = color + transmittance * entry.alpha * colors[i]
            transmittance *= 1.0 - entry.alpha
            blended += 1
            if log is not None:
                log.append((entry.gaussian_id, entry.alpha, entry.t))
            if transmittance < threshold:
                terminated = True
                break
        return color, transmittance, blended, terminated

    # ------------------------------------------------------------------
    # GRTX-HW: eviction prefill and checkpoint replay
    # ------------------------------------------------------------------

    def _prefill_from_evictions(self, evict_src: list[KBufferEntry], state: _RoundState) -> None:
        """Move evicted Gaussians into the new round's k-buffer.

        The first k entries (closest first) seed the k-buffer; the
        remainder is immediately beyond the buffer, so the first of them
        reports a hit (shrinking ``t_max``) and all of them carry over to
        the next eviction buffer — Listing 1 semantics applied to the
        replayed entries.
        """
        kbuffer = state.kbuffer
        k = kbuffer.k
        for i, entry in enumerate(evict_src):
            if i < k:
                kbuffer.insert(entry)
                continue
            if i == k:
                state.t_max = entry.t
            state.evict_out.push(entry)

    def _replay_checkpoints(
        self,
        ckpt_src: list[tuple[float, int, int, int, int]],
        state: _RoundState,
        ray_trace: RayTrace,
    ) -> None:
        """Resume traversal from checkpointed nodes, nearest first.

        Each checkpointed subtree is traversed to completion before the
        next checkpoint is taken up (the paper traverses the checkpointed
        subtrees sequentially).
        """
        for t, kind, ref, gid, inst_addr in sorted(ckpt_src, key=lambda c: c[0]):
            if t > state.t_max:
                # Still beyond the committed hit; defer again.
                state.checkpoint(kind, ref, gid, inst_addr, t)
                continue
            if kind == CKPT_NODE:
                self._drain([(KIND_INTERNAL, ref, t)], state, ray_trace)
            elif kind == CKPT_LEAF:
                self._drain([(KIND_LEAF, ref, t)], state, ray_trace)
            elif kind == CKPT_INSTANCE:
                # Re-fetch the instance record to recover the transform.
                state.round_trace.fetch(
                    inst_addr, INSTANCE_BYTES, FETCH_LEAF, prim_tests=1,
                    prim_kind=PRIM_TRANSFORM,
                )
                ray_trace.note_fetch(inst_addr, FETCH_LEAF)
                self._process_instance(ref, inst_addr, state, ray_trace)
            else:
                # BLAS node/leaf checkpoint: recover the instance transform
                # from the stored TLAS leaf address, then resume inside the
                # shared BLAS.
                state.round_trace.fetch(
                    inst_addr, INSTANCE_BYTES, FETCH_LEAF, prim_tests=1,
                    prim_kind=PRIM_TRANSFORM,
                )
                ray_trace.note_fetch(inst_addr, FETCH_LEAF)
                linear = self.shading.w2o_linear[gid]
                o2 = linear @ self._o + self.shading.w2o_offset[gid]
                d2 = linear @ self._d
                start_kind = KIND_INTERNAL if kind == CKPT_BLAS_NODE else KIND_LEAF
                tables = (self._blas_tables_all[self._gid_blas[gid]]
                          if self._gid_blas is not None else None)
                hit_t = self._traverse_blas(o2, d2, gid, inst_addr, state, ray_trace,
                                            start=(start_kind, ref, t), tables=tables)
                if hit_t is not None:
                    code, t_hit = self._anyhit(gid, state, hit_t)
                    if code == _HIT_BEYOND:
                        state.checkpoint(CKPT_INSTANCE, gid, gid, inst_addr, t_hit)

    # ------------------------------------------------------------------
    # Core traversal
    # ------------------------------------------------------------------

    def _drain(
        self,
        seeds: list[tuple[int, int, float]],
        state: _RoundState,
        ray_trace: RayTrace,
    ) -> None:
        """Depth-first traversal of the main BVH from the seed entries.

        Stack entries are ``(child_kind, ref, t_entry)``; entries whose
        recorded entry distance has fallen beyond the current ``t_max``
        are checkpointed without being fetched (the RT unit's t-value
        validation rejects them at pop time).
        """
        kind_rows = self._child_kind
        ref_rows = self._child_ref
        addr_rows = self._child_addr
        bytes_rows = self._child_bytes
        leaf_rows = self._child_is_leaf
        lo_rows = self._child_lo_l
        hi_rows = self._child_hi_l
        node_addr = self._node_addr
        node_bytes = self._node_bytes
        o = self._o
        inv_d = self._inv_d
        ox, oy, oz = o[0], o[1], o[2]
        ix, iy, iz = inv_d[0], inv_d[1], inv_d[2]
        rt = state.round_trace

        stack = list(seeds)
        while stack:
            kind, ref, t_entry = stack.pop()
            if t_entry > state.t_max:
                ckpt_kind = CKPT_NODE if kind == KIND_INTERNAL else CKPT_LEAF
                state.checkpoint(ckpt_kind, ref, -1, -1, t_entry)
                continue
            if kind == KIND_LEAF:
                self._process_leaf(ref, state, ray_trace)
                continue

            # Internal node: fetch, then slab-test each child (scalar slab
            # over list-backed boxes: faster than numpy at width 6).
            kinds = kind_rows[ref]
            refs = ref_rows[ref]
            lo_row = lo_rows[ref]
            hi_row = hi_rows[ref]
            t_min = state.t_min
            t_max = state.t_max
            t_clip = state.t_clip

            occupied = 0
            visit: list[tuple[float, int, int]] = []
            prefetch: list[tuple[int, int]] | None = None
            addr_row = addr_rows[ref]
            bytes_row = bytes_rows[ref]
            leaf_row = leaf_rows[ref]
            for slot in range(len(kinds)):
                ckind = kinds[slot]
                if ckind == 0:
                    break
                occupied += 1
                lo = lo_row[slot]
                hi = hi_row[slot]
                a = (lo[0] - ox) * ix
                b = (hi[0] - ox) * ix
                if a > b:
                    tn, tf = b, a
                else:
                    tn, tf = a, b
                a = (lo[1] - oy) * iy
                b = (hi[1] - oy) * iy
                if a > b:
                    a, b = b, a
                if a > tn:
                    tn = a
                if b < tf:
                    tf = b
                a = (lo[2] - oz) * iz
                b = (hi[2] - oz) * iz
                if a > b:
                    a, b = b, a
                if a > tn:
                    tn = a
                if b < tf:
                    tf = b
                if tn > tf or tf < t_min or tf < 0.0 or tn > t_clip:
                    continue
                if tn > t_max:
                    ckpt_kind = CKPT_NODE if ckind == KIND_INTERNAL else CKPT_LEAF
                    state.checkpoint(ckpt_kind, refs[slot], -1, -1, tn)
                    continue
                visit.append((tn, ckind, refs[slot]))
                if leaf_row[slot]:
                    # Sibling-leaf prefetch (Section V-A): intersected leaf
                    # children are staged into the L1 when the first of
                    # them is demand-fetched.
                    if prefetch is None:
                        prefetch = []
                    prefetch.append((addr_row[slot], bytes_row[slot]))

            addr = node_addr[ref]
            rt.fetch(addr, node_bytes, FETCH_INTERNAL, box_tests=occupied,
                     prefetch=prefetch)
            ray_trace.note_fetch(addr, FETCH_INTERNAL)

            if visit:
                # Push far-to-near so the nearest child is popped first.
                visit.sort(key=lambda item: -item[0])
                for tn, ckind, cref in visit:
                    stack.append((ckind, cref, tn))

    def _process_leaf(self, leaf_ref: int, state: _RoundState, ray_trace: RayTrace) -> None:
        if self.two_level:
            self._process_tlas_leaf(leaf_ref, state, ray_trace)
        elif self.flat.root_prims == PRIMS_TRIANGLES:
            self._process_triangle_leaf(leaf_ref, state, ray_trace)
        else:
            self._process_custom_leaf(leaf_ref, state, ray_trace)

    # -- monolithic leaves ---------------------------------------------

    def _process_triangle_leaf(self, leaf_ref: int, state: _RoundState, ray_trace: RayTrace) -> None:
        start = self._leaf_start[leaf_ref]
        count = self._leaf_count[leaf_ref]
        end = start + count
        addr = self._leaf_addr[leaf_ref]
        rt = state.round_trace
        rt.fetch(addr, self._leaf_bytes[leaf_ref], FETCH_LEAF,
                 prim_tests=count, prim_kind=PRIM_TRI)
        ray_trace.note_fetch(addr, FETCH_LEAF)

        o = self._o
        d = self._d
        ox, oy, oz = o[0], o[1], o[2]
        dx, dy, dz = d[0], d[1], d[2]
        v0l, e1l, e2l = self._v0l, self._e1l, self._e2l
        owners = self._ownero
        hits: list[tuple[float, int]] = []
        for i in range(start, end):
            e2 = e2l[i]
            pvx = dy * e2[2] - dz * e2[1]
            pvy = dz * e2[0] - dx * e2[2]
            pvz = dx * e2[1] - dy * e2[0]
            e1 = e1l[i]
            det = e1[0] * pvx + e1[1] * pvy + e1[2] * pvz
            if det > -1e-12:
                continue  # backface or parallel: not an entering hit
            inv_det = 1.0 / det
            v0 = v0l[i]
            tvx = ox - v0[0]
            tvy = oy - v0[1]
            tvz = oz - v0[2]
            u = (tvx * pvx + tvy * pvy + tvz * pvz) * inv_det
            if u < 0.0 or u > 1.0:
                continue
            qvx = tvy * e1[2] - tvz * e1[1]
            qvy = tvz * e1[0] - tvx * e1[2]
            qvz = tvx * e1[1] - tvy * e1[0]
            v = (dx * qvx + dy * qvy + dz * qvz) * inv_det
            if v < 0.0 or u + v > 1.0:
                continue
            t = (e2[0] * qvx + e2[1] * qvy + e2[2] * qvz) * inv_det
            if t > 0.0:
                hits.append((t, owners[i]))
        if not hits:
            return
        hits.sort()
        seen: set[int] = set()
        beyond_t = _INF
        for t_proxy, gid in hits:
            if gid in seen:
                continue
            seen.add(gid)
            code, t_hit = self._anyhit(gid, state, t_proxy)
            if code == _HIT_BEYOND and t_hit < beyond_t:
                beyond_t = t_hit
        if beyond_t < _INF:
            state.checkpoint(CKPT_LEAF, leaf_ref, -1, -1, beyond_t)

    def _process_custom_leaf(self, leaf_ref: int, state: _RoundState, ray_trace: RayTrace) -> None:
        start = self._leaf_start[leaf_ref]
        count = self._leaf_count[leaf_ref]
        addr = self._leaf_addr[leaf_ref]
        rt = state.round_trace
        rt.fetch(addr, self._leaf_bytes[leaf_ref], FETCH_LEAF,
                 prim_tests=count, prim_kind=PRIM_CUSTOM)
        ray_trace.note_fetch(addr, FETCH_LEAF)
        gids = self._ordered_gids
        beyond_t = _INF
        for i in range(start, start + count):
            code, t_hit = self._anyhit(gids[i], state)
            if code == _HIT_BEYOND and t_hit < beyond_t:
                beyond_t = t_hit
        if beyond_t < _INF:
            state.checkpoint(CKPT_LEAF, leaf_ref, -1, -1, beyond_t)

    # -- two-level leaves ------------------------------------------------

    def _process_tlas_leaf(self, leaf_ref: int, state: _RoundState, ray_trace: RayTrace) -> None:
        start = self._leaf_start[leaf_ref]
        count = self._leaf_count[leaf_ref]
        addr = self._leaf_addr[leaf_ref]
        rt = state.round_trace
        rt.fetch(addr, self._leaf_bytes[leaf_ref], FETCH_LEAF,
                 prim_tests=count, prim_kind=PRIM_TRANSFORM)
        ray_trace.note_fetch(addr, FETCH_LEAF)
        gids = self._ordered_gids
        base = addr + LEAF_HEADER_BYTES
        for slot in range(count):
            self._process_instance(gids[start + slot], base + slot * INSTANCE_BYTES,
                                   state, ray_trace)

    def _process_instance(
        self,
        gid: int,
        inst_addr: int,
        state: _RoundState,
        ray_trace: RayTrace,
    ) -> None:
        """Transform the ray into the instance's object space and test the
        shared BLAS (one box + one sphere test for the sphere BLAS)."""
        shading = self.shading
        if self._gid_blas is None:
            blas = self._blas
            blas_tables = None
        else:
            # Heterogeneous scene: each Gaussian selects its template.
            slot = self._gid_blas[gid]
            blas = self._blas_list[slot]
            blas_tables = self._blas_tables_all[slot]
        rt = state.round_trace
        linear = shading.w2o_linear[gid]
        o2 = linear @ self._o + shading.w2o_offset[gid]
        d2 = linear @ self._d

        if blas.kind == "sphere":
            # One root-box test + one sphere test, both against the shared
            # BLAS record that stays hot in the L1.
            ox, oy, oz = o2[0], o2[1], o2[2]
            dx, dy, dz = d2[0], d2[1], d2[2]
            t_near = -_INF
            t_far = _INF
            for oc, dc in ((ox, dx), (oy, dy), (oz, dz)):
                if dc == 0.0:  # repro: lint-ok[float-eq] exact-zero slab-divide guard; the batched engines mirror it bit-for-bit
                    dc = 1e-12
                a = (-1.0 - oc) / dc
                b = (1.0 - oc) / dc
                if a > b:
                    a, b = b, a
                if a > t_near:
                    t_near = a
                if b < t_far:
                    t_far = b
            rt.fetch(blas.root_address, self._sphere_blas_bytes, FETCH_LEAF,
                     box_tests=1, prim_tests=1, prim_kind=PRIM_SPHERE)
            ray_trace.note_fetch(blas.root_address, FETCH_LEAF)
            if t_near > t_far or t_far < state.t_min or t_far < 0.0 or t_near > state.t_clip:
                return
            if t_near > state.t_max:
                state.checkpoint(CKPT_INSTANCE, gid, gid, inst_addr, t_near)
                return
            code, t_hit = self._anyhit(gid, state)
            if code == _HIT_BEYOND:
                state.checkpoint(CKPT_INSTANCE, gid, gid, inst_addr, t_hit)
            return

        # Icosphere BLAS: traverse the small template triangle BVH.
        tables = blas_tables if blas_tables is not None else self._blas_tables
        root_lo, root_hi = tables.root_lo, tables.root_hi
        safe = np.where(np.abs(d2) < 1e-12, 1e-12, d2)
        inv_d2 = 1.0 / safe
        t0 = (root_lo - o2) * inv_d2
        t1 = (root_hi - o2) * inv_d2
        t_near = float(np.minimum(t0, t1).max())
        t_far = float(np.maximum(t0, t1).min())
        if t_near > t_far or t_far < state.t_min or t_far < 0.0 or t_near > state.t_clip:
            return
        if t_near > state.t_max:
            state.checkpoint(CKPT_INSTANCE, gid, gid, inst_addr, t_near)
            return
        hit_t = self._traverse_blas(o2, d2, gid, inst_addr, state, ray_trace,
                                    start=(KIND_INTERNAL, 0, t_near), inv_d2=inv_d2,
                                    tables=tables)
        if hit_t is not None:
            code, t_hit = self._anyhit(gid, state, hit_t)
            if code == _HIT_BEYOND:
                state.checkpoint(CKPT_INSTANCE, gid, gid, inst_addr, t_hit)

    def _traverse_blas(
        self,
        o2: np.ndarray,
        d2: np.ndarray,
        gid: int,
        inst_addr: int,
        state: _RoundState,
        ray_trace: RayTrace,
        start: tuple[int, int, float],
        inv_d2: np.ndarray | None = None,
        tables=None,
    ) -> float | None:
        """Traverse the shared template BLAS in object space.

        Returns the nearest proxy-triangle hit distance, or ``None``.
        BLAS children failing the t_max validation are checkpointed with
        the TLAS leaf (instance) address so replay can re-transform.
        """
        if tables is None:
            tables = self._blas_tables
        bbvh = tables.bvh
        if inv_d2 is None:
            safe = np.where(np.abs(d2) < 1e-12, 1e-12, d2)
            inv_d2 = 1.0 / safe
        rt = state.round_trace
        best: float | None = None

        stack = [start]
        while stack:
            kind, ref, t_entry = stack.pop()
            if t_entry > state.t_max:
                ckpt_kind = CKPT_BLAS_NODE if kind == KIND_INTERNAL else CKPT_BLAS_LEAF
                state.checkpoint(ckpt_kind, ref, gid, inst_addr, t_entry)
                continue
            if kind == KIND_LEAF:
                start_p = tables.leaf_start[ref]
                count = tables.leaf_count[ref]
                end = start_p + count
                addr = tables.leaf_addr[ref]
                rt.fetch(addr, tables.leaf_bytes[ref], FETCH_LEAF,
                         prim_tests=count, prim_kind=PRIM_TRI)
                ray_trace.note_fetch(addr, FETCH_LEAF)
                ox, oy, oz = o2[0], o2[1], o2[2]
                dx, dy, dz = d2[0], d2[1], d2[2]
                v0l, e1l, e2l = tables.v0, tables.e1, tables.e2
                for i in range(start_p, end):
                    e2t = e2l[i]
                    pvx = dy * e2t[2] - dz * e2t[1]
                    pvy = dz * e2t[0] - dx * e2t[2]
                    pvz = dx * e2t[1] - dy * e2t[0]
                    e1t = e1l[i]
                    det = e1t[0] * pvx + e1t[1] * pvy + e1t[2] * pvz
                    if det > -1e-12:
                        continue
                    inv_det = 1.0 / det
                    v0t = v0l[i]
                    tvx = ox - v0t[0]
                    tvy = oy - v0t[1]
                    tvz = oz - v0t[2]
                    u = (tvx * pvx + tvy * pvy + tvz * pvz) * inv_det
                    if u < 0.0 or u > 1.0:
                        continue
                    qvx = tvy * e1t[2] - tvz * e1t[1]
                    qvy = tvz * e1t[0] - tvx * e1t[2]
                    qvz = tvx * e1t[1] - tvy * e1t[0]
                    v = (dx * qvx + dy * qvy + dz * qvz) * inv_det
                    if v < 0.0 or u + v > 1.0:
                        continue
                    t = (e2t[0] * qvx + e2t[1] * qvy + e2t[2] * qvz) * inv_det
                    if t > 0.0 and (best is None or t < best):
                        best = t
                continue

            t0 = (bbvh.child_lo[ref] - o2) * inv_d2
            t1 = (bbvh.child_hi[ref] - o2) * inv_d2
            t_near = np.minimum(t0, t1).max(axis=1).tolist()
            t_far = np.maximum(t0, t1).min(axis=1).tolist()
            kinds = tables.child_kind[ref]
            refs = tables.child_ref[ref]
            occupied = 0
            visit: list[tuple[float, int, int]] = []
            for slot in range(len(kinds)):
                ckind = kinds[slot]
                if ckind == 0:
                    break
                occupied += 1
                tn = t_near[slot]
                tf = t_far[slot]
                if tn > tf or tf < state.t_min or tf < 0.0 or tn > state.t_clip:
                    continue
                if tn > state.t_max:
                    ckpt_kind = CKPT_BLAS_NODE if ckind == KIND_INTERNAL else CKPT_BLAS_LEAF
                    state.checkpoint(ckpt_kind, refs[slot], gid, inst_addr, tn)
                    continue
                visit.append((tn, ckind, refs[slot]))
            addr = tables.node_addr[ref]
            rt.fetch(addr, tables.node_bytes, FETCH_INTERNAL, box_tests=occupied)
            ray_trace.note_fetch(addr, FETCH_INTERNAL)
            if visit:
                visit.sort(key=lambda item: -item[0])
                for tn, ckind, cref in visit:
                    stack.append((ckind, cref, tn))
        return best

    # ------------------------------------------------------------------
    # Canonical any-hit shader
    # ------------------------------------------------------------------

    def _anyhit(self, gid: int, state: _RoundState,
                t_depth: float | None = None) -> tuple[int, float]:
        """Canonical any-hit evaluation + Listing 1 k-buffer update.

        ``t_depth`` is the proxy hit distance reported by the traversal
        (the entering triangle's t). Exact-primitive paths (unit sphere,
        custom ellipsoid) pass ``None`` and use the exact ellipsoid entry
        distance. The depth is what the k-buffer sorts by and what the
        interval (t_min, t_max] validates — matching 3DGRT, where the
        reported hit t of the bounding primitive drives the k-buffer.

        Returns ``(code, t)``: ``_HIT_ACCEPTED`` (inserted or reported),
        ``_HIT_REJECTED`` (false positive / negligible alpha / already
        handled), or ``_HIT_BEYOND`` (fails the ``t_max`` validation — the
        caller checkpoints the enclosing node so the hit is recoverable
        next round).
        """
        result = self.shading.evaluate_hit(gid, self._o, self._d)
        if result is None:
            state.round_trace.false_positives += 1
            return _HIT_REJECTED, 0.0
        t_exact, alpha = result
        t_hit = t_exact if t_depth is None else t_depth

        if t_hit > state.t_clip:
            return _HIT_REJECTED, t_hit

        if state.collect_all:
            if t_hit > state.t_min and gid not in state.hits_seen:
                state.hits_seen.add(gid)
                state.round_trace.anyhit_calls += 1
                state.hits.append(KBufferEntry(t_hit, gid, alpha))
            return _HIT_ACCEPTED, t_hit

        if t_hit < state.t_min or (t_hit == state.t_min and gid in state.frontier):
            # Strictly-before hits were all blended in earlier rounds
            # (the k-buffer keeps the k closest, so nothing nearer than
            # the boundary is ever lost); hits exactly at the boundary
            # are re-admitted unless this Gaussian was already blended.
            return _HIT_REJECTED, t_hit
        if t_hit > state.t_max:
            return _HIT_BEYOND, t_hit
        kbuffer = state.kbuffer
        if gid in kbuffer:
            return _HIT_REJECTED, t_hit
        state.round_trace.anyhit_calls += 1
        rejected = kbuffer.insert(KBufferEntry(t_hit, gid, alpha))
        if rejected is not None:
            if self.config.checkpointing:
                state.evict_out.push(rejected)
            if rejected.gaussian_id == gid:
                # The new hit itself was beyond the k closest: report it so
                # the RT unit shrinks t_max (Listing 1, lines 18-20).
                state.t_max = t_hit
        return _HIT_ACCEPTED, t_hit


class _BlasTables:
    """Precomputed fast-path tables for a shared mesh BLAS, built from
    the flattened layout (the triangle soup is already leaf-ordered)."""

    __slots__ = (
        "bvh", "child_kind", "child_ref", "node_addr", "leaf_addr",
        "leaf_bytes", "leaf_start", "leaf_count", "node_bytes",
        "v0", "e1", "e2", "root_lo", "root_hi",
    )

    def __init__(self, blas) -> None:
        bbvh = blas.bvh
        self.bvh = bbvh
        self.child_kind = bbvh.child_kind.tolist()
        self.child_ref = bbvh.child_ref.tolist()
        self.node_addr = bbvh.node_addr.tolist()
        self.leaf_addr = bbvh.leaf_addr.tolist()
        self.leaf_bytes = bbvh.leaf_bytes.tolist()
        self.leaf_start = bbvh.leaf_start.tolist()
        self.leaf_count = bbvh.leaf_count.tolist()
        self.node_bytes = internal_node_bytes(bbvh.width)
        self.v0 = blas.mesh.v0.tolist()
        self.e1 = blas.mesh.e1.tolist()
        self.e2 = blas.mesh.e2.tolist()
        self.root_lo, self.root_hi = bbvh.root_box()
