"""Packet-order fetch-trace recording.

The scalar :class:`~repro.rt.tracer.Tracer` records per-ray fetch traces
as a side effect of walking the BVH one ray at a time — which pinned
every timing-model figure to the slowest engine.  This module teaches
the packet engine to produce the *same* traces from its batched
traversal, in two phases:

**Phase A — batched geometry.**  One recording traversal per packet
(:meth:`~repro.rt.packet.PacketTracer._traverse_log`) visits every node
reachable with ``t_min = 0`` and no ``t_max`` — a superset of what any
tracing round visits — and logs each visiting ray's child slab results.
Leaf visits feed one masked Möller–Trumbore over all candidate pairs
(kept per-leaf), batched instance transforms, one shared-BLAS traversal
per instance group, and one vectorized canonical any-hit evaluation per
candidate ``(ray, gaussian)`` pair.  The shade/blend stage then runs on
exactly the candidate sets a plain ``trace_packet`` would build, so the
recorded render's :class:`~repro.rt.packet.PacketResult` matches the
plain packet path.

**Phase B — per-ray control-flow reconstruction.**  Per ray, the
Phase-A logs are folded into a *round template*: the ray's DFS visit
sequence (node ordering depends only on per-ray entry distances, which
are round-invariant) with all static accept tests and the fixed-width
fetch records pre-baked.  Each tracing round is then one linear walk of
the template — two comparisons per entry (``tf < t_min`` /
``tn > t_max``) with subtree skipping — that replays the scalar
tracer's exact algorithm: interval bounds, k-buffer semantics,
shrinking ``t_max``, frontier carry-over and blend termination.  The
emitted :class:`~repro.rt.recorder.RayTrace` streams are
event-for-event what the scalar recorder produces — same addresses,
sizes, kinds, test counts, prefetch lists, per-round counters and round
structure — so :func:`repro.hwsim.replay` accepts either engine's
traces interchangeably.

Equivalence argument: a round's DFS visits a node iff every ancestor
accepted it under the round's ``(t_min, t_max, t_clip)`` interval, and
each such accept implies the template's weaker ``(0, inf, t_clip)``
accept — so the template contains every node any round can visit, in
the round's visit order (pruning removes contiguous subtree blocks
without reordering survivors, and ``t_max`` at an entry's walk position
is exactly the scalar's value at that node's pop).  The static per-node
tables come from the same :class:`~repro.rt.tracer.FlatTables` the
scalar tracer binds, so the two recorders cannot drift on what a
structure looks like.

Checkpointing (GRTX-HW) restructures the traversal itself and stays on
the scalar engine (``resolve_engine`` routes it there).
"""

from __future__ import annotations

from operator import itemgetter

import numpy as np

from repro.bvh.flatten import BLAS_SPHERE, PRIMS_GAUSSIANS, PRIMS_TRIANGLES
from repro.bvh.layout import INSTANCE_BYTES, LEAF_HEADER_BYTES, SPHERE_PRIM_BYTES
from repro.bvh.node import KIND_INTERNAL, KIND_LEAF
from repro.rt.kbuffer import KBuffer, KBufferEntry
from repro.rt.recorder import (
    FETCH_INTERNAL,
    FETCH_LEAF,
    PRIM_CUSTOM,
    PRIM_SPHERE,
    PRIM_TRANSFORM,
    PRIM_TRI,
    RayTrace,
)
from repro.rt.shading import ALPHA_MAX, ALPHA_MIN
from repro.rt.tracer import flat_tables

_INF = float("inf")

_get0 = itemgetter(0)


def _visit_tables(n, visits):
    """Per-ray ``node -> (tn row, tf row, child order, child count)``
    lookup tables from a recording traversal's visit log.

    The child order is the scalar DFS push order — accepted slots by
    descending entry distance, slot order on ties (``argsort`` is
    stable, matching the scalar sort) — precomputed vectorized so the
    per-ray template build does no slot arithmetic at all.
    """
    out: list[dict] = [dict() for _ in range(n)]
    for node, rays, tn, tf, hit in visits:
        key = np.where(hit, -tn, np.inf)
        order_l = np.argsort(key, axis=1, kind="stable").tolist()
        cnt_l = hit.sum(axis=1).tolist()
        tn_l = tn.tolist()
        tf_l = tf.tolist()
        for j, r in enumerate(rays.tolist()):
            out[r][node] = (tn_l[j], tf_l[j], order_l[j], cnt_l[j])
    return out


#: Rays per recording chunk.  Recording keeps per-(ray, node) slab rows
#: alive until the chunk's traces are built, so it chunks finer than the
#: plain packet path to bound peak memory.
_MAX_RECORD_PACKET = 1024

# Template entry kinds.  Every entry is the tuple ``(kind, tn, tf,
# ref)`` — ``tn``/``tf`` are the ray's slab result at the entry's parent
# (the per-round residual tests), ``ref`` indexes the structure's static
# tables (pre-baked fetch records, leaf slots, primitive slices).
_T_NODE = 0         # internal node without leaf children
_T_NODE_PF = 1      # internal node with (prefetchable) leaf children
_T_TRI_LEAF = 2     # monolithic triangle-proxy leaf
_T_CUSTOM_LEAF = 3  # monolithic custom-primitive leaf
_T_TLAS_LEAF = 4    # TLAS instance leaf
_T_BLAS_LEAF = 5    # shared mesh-BLAS leaf


class PacketTraceRecorder:
    """Produces scalar-identical fetch traces from packet traversal.

    Built once per :class:`~repro.rt.packet.PacketTracer` (the tracer
    memoizes it); carries only static tables, so one instance records
    any number of packets.
    """

    def __init__(self, tracer) -> None:
        config = tracer.config
        if config.checkpointing:
            raise ValueError("checkpointing traces are scalar-engine-only")
        if tracer.flat.two_level and len(tracer.flat.blas) != 1:
            raise NotImplementedError(
                "trace recording supports a single shared BLAS")
        self.tracer = tracer
        self.config = config
        self.flat = tracer.flat
        self.shading = tracer.shading
        self.tables = flat_tables(tracer.flat)
        self.two_level = tracer.flat.two_level
        self.prims = tracer.flat.root_prims
        if self.two_level:
            self._blas = tracer.flat.blas[0]
            self._sphere_blas = self._blas.kind == BLAS_SPHERE
            if self._sphere_blas:
                sphere_bytes = LEAF_HEADER_BYTES + 24 + SPHERE_PRIM_BYTES
                self._sphere_rec = (self._blas.root_address, sphere_bytes,
                                    FETCH_LEAF, 1, 1, PRIM_SPHERE, 0)
        else:
            self._blas = None
            self._sphere_blas = False
        self._static = None

    def static_recs(self) -> "_StaticRecs":
        """The (lazily built) per-structure walk constants."""
        if self._static is None:
            self._static = _StaticRecs(self)
        return self._static

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def record(self, origins, directions, t_clip=None, label="primary"):
        """Trace a bundle with recording; ``(PacketResult, traces)``.

        The :class:`~repro.rt.packet.PacketResult` matches a plain
        ``trace_packet`` of the same bundle (the shade/blend stage runs
        on the same candidate sets), with ``rounds`` replaced by the
        reconstruction's exact per-ray round counts.  ``traces`` is one
        :class:`~repro.rt.recorder.RayTrace` per ray, in ray order.
        """
        from repro.rt.packet import PacketResult

        o = np.ascontiguousarray(origins, dtype=np.float64)
        d = np.ascontiguousarray(directions, dtype=np.float64)
        n = o.shape[0]
        if t_clip is None:
            t_clip = np.full(n, _INF)
        else:
            t_clip = np.asarray(t_clip, dtype=np.float64)
        if n == 0:
            return self.tracer._empty_result(0), []
        if n <= _MAX_RECORD_PACKET:
            return self._record_chunk(o, d, t_clip, label)
        parts = []
        traces: list[RayTrace] = []
        for i in range(0, n, _MAX_RECORD_PACKET):
            part, part_traces = self._record_chunk(
                o[i:i + _MAX_RECORD_PACKET], d[i:i + _MAX_RECORD_PACKET],
                t_clip[i:i + _MAX_RECORD_PACKET], label)
            parts.append(part)
            traces.extend(part_traces)
        return (PacketResult.concatenate(parts, self.config.record_blended),
                traces)

    # ------------------------------------------------------------------
    # Phase A — batched geometry
    # ------------------------------------------------------------------

    def _record_chunk(self, o, d, t_clip, label):
        tracer = self.tracer
        n = o.shape[0]
        safe = np.where(np.abs(d) < 1e-12, 1e-12, d)
        inv_d = 1.0 / safe

        visits, leaf_rays, leaf_refs = tracer._traverse_log(
            tracer._root, o, inv_d, t_clip)

        node_rows = _visit_tables(n, visits)

        tri_hits = sph_box = mesh_root = mesh_nodes = mesh_leaf_best = None
        o2c = d2c = None
        if self.prims == PRIMS_TRIANGLES:
            tri_hits, ray_c, gid_c, t_proxy = self._tri_leaf_hits(
                n, o, d, leaf_rays, leaf_refs)
        elif self.prims == PRIMS_GAUSSIANS:
            ray_c, gid_c = tracer._leaf_customs(leaf_rays, leaf_refs)
            t_proxy = None
        elif self._sphere_blas:
            sph_box, ray_c, gid_c, o2c, d2c = self._sphere_box_tables(
                n, o, d, t_clip, leaf_rays, leaf_refs)
            t_proxy = None
        else:
            (mesh_root, mesh_nodes, mesh_leaf_best,
             ray_c, gid_c, t_proxy, o2c, d2c) = self._mesh_tables(
                n, o, d, t_clip, leaf_rays, leaf_refs)

        result = tracer._shade_and_blend(o, d, t_clip, ray_c, gid_c, t_proxy,
                                         o2=o2c, d2=d2c)

        eval_map = self._eval_tables(n, o, d, ray_c, gid_c, o2c, d2c)

        # Phase B — one template + round walks per ray.
        traces: list[RayTrace] = []
        rounds_out = np.empty(n, dtype=np.int64)
        empty: dict = {}
        t_clip_l = t_clip.tolist()
        for r in range(n):
            trace = RayTrace(label=label)
            sim = _RaySim(
                self, trace, t_clip_l[r],
                node_rows[r],
                tri_hits[r] if tri_hits is not None else empty,
                eval_map[r],
                sph_box[r] if sph_box is not None else empty,
                mesh_root[r] if mesh_root is not None else empty,
                mesh_nodes[r] if mesh_nodes is not None else empty,
                mesh_leaf_best[r] if mesh_leaf_best is not None else empty,
            )
            rounds_out[r] = sim.run()
            traces.append(trace)
        result.rounds = rounds_out
        return result, traces

    def _leaf_pair_tables(self, level_start, level_count, leaf_rays,
                          leaf_refs):
        """(ray, primitive, leaf) pair arrays over a leaf visit list."""
        ray_parts, prim_parts, leaf_parts = [], [], []
        for rays, ref in zip(leaf_rays, leaf_refs):
            count = int(level_count[ref])
            start = int(level_start[ref])
            prims = np.arange(start, start + count, dtype=np.int64)
            ray_parts.append(np.repeat(rays, count))
            prim_parts.append(np.tile(prims, rays.size))
            leaf_parts.append(np.full(rays.size * count, ref, dtype=np.int64))
        if not ray_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        return (np.concatenate(ray_parts), np.concatenate(prim_parts),
                np.concatenate(leaf_parts))

    def _tri_leaf_hits(self, n, o, d, leaf_rays, leaf_refs):
        """Per (ray, leaf) entering proxy hits as the scalar leaf loop
        sees them — sorted by ``(t, gid)``, deduplicated per Gaussian
        keeping the nearest — plus the global per-(ray, gid) candidates
        (nearest entering triangle over all leaves, the values the plain
        packet path's reduction produces)."""
        tables = self.tables
        tracer = self.tracer
        rp, tp, lf = self._leaf_pair_tables(
            tables.leaf_start, tables.leaf_count, leaf_rays, leaf_refs)
        out: list[dict] = [dict() for _ in range(n)]
        empty = np.empty(0, dtype=np.int64)
        if rp.size == 0:
            return out, empty, empty, np.empty(0)
        mesh = self.flat.mesh
        sel, t = tracer._entering_hits(o[rp], d[rp], tp,
                                       mesh.v0, mesh.e1, mesh.e2)
        if sel.size == 0:
            return out, empty, empty, np.empty(0)
        hr, hl = rp[sel], lf[sel]
        hg = mesh.owner[tp[sel]]
        # Nearest entering triangle per (ray, leaf, gid)...
        order = np.lexsort((t, hg, hl, hr))
        hr, hl, hg, t = hr[order], hl[order], hg[order], t[order]
        first = np.ones(hr.size, dtype=bool)
        first[1:] = ((hr[1:] != hr[:-1]) | (hl[1:] != hl[:-1])
                     | (hg[1:] != hg[:-1]))
        hr, hl, hg, t = hr[first], hl[first], hg[first], t[first]
        # ...then the scalar's (t, gid) iteration order within the leaf.
        order = np.lexsort((hg, t, hl, hr))
        hr, hl, hg, t = hr[order], hl[order], hg[order], t[order]
        for r, leaf, gid, tt in zip(hr.tolist(), hl.tolist(), hg.tolist(),
                                    t.tolist()):
            per_leaf = out[r]
            lst = per_leaf.get(leaf)
            if lst is None:
                per_leaf[leaf] = lst = []
            lst.append((tt, gid))
        # Global candidates: nearest entering triangle per (ray, gid) —
        # the min over per-leaf minima equals the plain path's min over
        # all entering hits, bit for bit.
        order = np.lexsort((t, hg, hr))
        cr, cg, ct = hr[order], hg[order], t[order]
        first = np.ones(cr.size, dtype=bool)
        first[1:] = (cr[1:] != cr[:-1]) | (cg[1:] != cg[:-1])
        return out, cr[first], cg[first], ct[first]

    def _instance_pairs(self, o, d, leaf_rays, leaf_refs):
        """The TLAS (ray, instance) pair bundle with object-space rays —
        the recording twin of the head of ``_leaf_instances``."""
        tracer = self.tracer
        rp, pp = tracer._leaf_pairs(tracer._root, leaf_rays, leaf_refs)
        if rp.size == 0:
            return rp, pp, None, None, None
        gid = self.flat.prim_gid[pp]
        o2, d2 = tracer._to_object_space(
            self.flat.inst_w2o_linear[pp], self.flat.inst_w2o_offset[pp],
            o[rp], d[rp])
        return rp, pp, gid, o2, d2

    def _sphere_box_tables(self, n, o, d, t_clip, leaf_rays, leaf_refs):
        """Per (ray, instance): the sphere-BLAS unit-box slab result the
        scalar instance path computes (same exact-zero guard), plus the
        surviving candidate pairs (the plain path's keep mask)."""
        rp, pp, gid, o2, d2 = self._instance_pairs(o, d, leaf_rays,
                                                   leaf_refs)
        out: list[dict] = [dict() for _ in range(n)]
        empty = np.empty(0, dtype=np.int64)
        if rp.size == 0:
            return out, empty, empty, None, None
        safe = np.where(d2 == 0.0, 1e-12, d2)  # repro: lint-ok[float-eq] exact-zero guard mirrors the scalar engine's slab divide bit-for-bit
        t0 = (-1.0 - o2) / safe
        t1 = (1.0 - o2) / safe
        tn = np.minimum(t0, t1).max(axis=1)
        tf = np.maximum(t0, t1).min(axis=1)
        for r, g, a, b in zip(rp.tolist(), gid.tolist(), tn.tolist(),
                              tf.tolist()):
            out[r][g] = (a, b)
        keep = (tn <= tf) & (tf >= 0.0) & (tn <= t_clip[rp])
        return out, rp[keep], gid[keep], o2[keep], d2[keep]

    def _mesh_tables(self, n, o, d, t_clip, leaf_rays, leaf_refs):
        """Per (ray, instance): root-box slab result, per-BLAS-node slab
        rows and per-BLAS-leaf nearest entering template-triangle depth,
        plus the surviving candidate pairs with their proxy depths (the
        plain path's nearest-entering-template-triangle reduction)."""
        tracer = self.tracer
        rp, pp, gid, o2, d2 = self._instance_pairs(o, d, leaf_rays,
                                                   leaf_refs)
        mesh_root: list[dict] = [dict() for _ in range(n)]
        mesh_nodes: list[dict] = [dict() for _ in range(n)]
        mesh_best: list[dict] = [dict() for _ in range(n)]
        empty = np.empty(0, dtype=np.int64)
        none = (mesh_root, mesh_nodes, mesh_best, empty, empty,
                np.empty(0), None, None)
        if rp.size == 0:
            return none
        safe = np.where(np.abs(d2) < 1e-12, 1e-12, d2)
        inv_d2 = 1.0 / safe
        root_lo, root_hi = tracer._blas_roots[0]
        t0 = (root_lo[None, :] - o2) * inv_d2
        t1 = (root_hi[None, :] - o2) * inv_d2
        rtn = np.minimum(t0, t1).max(axis=1)
        rtf = np.maximum(t0, t1).min(axis=1)
        rp_l, gid_l = rp.tolist(), gid.tolist()
        for i, (a, b) in enumerate(zip(rtn.tolist(), rtf.tolist())):
            mesh_root[rp_l[i]][gid_l[i]] = (a, b)

        clip = t_clip[rp]
        live = np.nonzero((rtn <= rtf) & (rtf >= 0.0) & (rtn <= clip))[0]
        if live.size == 0:
            return none
        level = tracer._blas_levels[0]
        o_l, d_l = o2[live], d2[live]
        bvisits, bleaf_rays, bleaf_refs = tracer._traverse_log(
            level, o_l, inv_d2[live], clip[live])
        # Each live pair is one (ray, instance): decode its BLAS visit
        # rows through the same helper as the root level (one home for
        # the DFS child-order rule), then key them by (ray, gid).
        live_l = live.tolist()
        pair_tables = _visit_tables(live.size, bvisits)
        for p, rows in enumerate(pair_tables):
            if rows:
                i = live_l[p]
                mesh_nodes[rp_l[i]][gid_l[i]] = rows

        # Per (pair, BLAS leaf): nearest entering template triangle.
        blas = self._blas
        pr, tp, lf = self._leaf_pair_tables(
            level.leaf_start, level.leaf_count, bleaf_rays, bleaf_refs)
        if pr.size == 0:
            return none
        sel, t = tracer._entering_hits(o_l[pr], d_l[pr], tp,
                                       blas.mesh.v0, blas.mesh.e1,
                                       blas.mesh.e2)
        if sel.size == 0:
            return none
        pr, lf = pr[sel], lf[sel]
        order = np.lexsort((t, lf, pr))
        pr, lf, t = pr[order], lf[order], t[order]
        first = np.ones(pr.size, dtype=bool)
        first[1:] = (pr[1:] != pr[:-1]) | (lf[1:] != lf[:-1])
        pr, lf, t = pr[first], lf[first], t[first]
        for p, leaf, tt in zip(pr.tolist(), lf.tolist(), t.tolist()):
            i = live_l[p]
            per_pair = mesh_best[rp_l[i]]
            per_leaf = per_pair.get(gid_l[i])
            if per_leaf is None:
                per_pair[gid_l[i]] = per_leaf = {}
            per_leaf[leaf] = tt

        # Candidates: nearest entering template triangle per pair (min
        # over per-leaf minima == the plain path's global min).
        order = np.lexsort((t, pr))
        pr2, t2 = pr[order], t[order]
        first = np.ones(pr2.size, dtype=bool)
        first[1:] = pr2[1:] != pr2[:-1]
        sub = live[pr2[first]]
        return (mesh_root, mesh_nodes, mesh_best,
                rp[sub], gid[sub], t2[first], o2[sub], d2[sub])

    def _eval_tables(self, n, o, d, ray_c, gid_c, o2, d2):
        """Per (ray, gaussian) canonical any-hit results for every
        candidate pair: ``(t_entry, alpha)`` or ``False`` (rejected) —
        the vectorized mirror of ``SceneShading.evaluate_hit``, sharing
        the shade stage's expressions."""
        from repro.rt.packet import PacketTracer

        shading = self.shading
        out: list[dict] = [dict() for _ in range(n)]
        if ray_c.size == 0:
            return out
        if o2 is None:
            o2, d2 = PacketTracer._to_object_space(
                shading.w2o_linear[gid_c], shading.w2o_offset[gid_c],
                o[ray_c], d[ray_c])
        dd = d2[:, 0] * d2[:, 0] + d2[:, 1] * d2[:, 1] + d2[:, 2] * d2[:, 2]
        od = o2[:, 0] * d2[:, 0] + o2[:, 1] * d2[:, 1] + o2[:, 2] * d2[:, 2]
        oo = o2[:, 0] * o2[:, 0] + o2[:, 1] * o2[:, 1] + o2[:, 2] * o2[:, 2]
        valid = dd >= 1e-30
        dd_safe = np.where(valid, dd, 1.0)
        min_sq = oo - od * od / dd_safe
        valid &= min_sq <= 1.0
        t_entry = (-od / dd_safe) - np.sqrt(
            np.maximum((1.0 - min_sq) / dd_safe, 0.0))
        valid &= t_entry > 0.0
        alpha = shading.opacities[gid_c] * np.exp(
            (-0.5 * shading.kappa_sq) * min_sq)
        valid &= alpha >= ALPHA_MIN
        alpha = np.minimum(alpha, ALPHA_MAX)
        for r, g, ok, t, a in zip(ray_c.tolist(), gid_c.tolist(),
                                  valid.tolist(), t_entry.tolist(),
                                  alpha.tolist()):
            out[r][g] = (t, a) if ok else False
        return out


class _StaticRecs:
    """Per-structure constants for template walks: pre-baked fixed-width
    fetch records and child-slot metadata, shared by every ray."""

    __slots__ = (
        "node_rec6", "node_rec7", "node_kind", "node_leaf_slots",
        "leaf_rec7", "node_addr", "leaf_addr", "leaf_start", "leaf_count",
        "bnode_rec7", "bnode_addr", "bleaf_rec7", "bleaf_addr",
    )

    def __init__(self, rec: PacketTraceRecorder) -> None:
        tables = rec.tables
        node_bytes = tables.node_bytes
        self.node_addr = tables.node_addr
        self.leaf_addr = tables.leaf_addr
        self.leaf_start = tables.leaf_start
        self.leaf_count = tables.leaf_count
        rec6, rec7, kind_codes, leaf_slots = [], [], [], []
        for n, kinds in enumerate(tables.child_kind):
            occupied = 0
            slots = []
            for slot, ckind in enumerate(kinds):
                if ckind == 0:
                    break
                occupied += 1
                if tables.child_is_leaf[n][slot]:
                    slots.append((slot, (tables.child_addr[n][slot],
                                         tables.child_bytes[n][slot])))
            addr = tables.node_addr[n]
            head = (addr, node_bytes, FETCH_INTERNAL, occupied, 0, 0)
            rec6.append(head)
            rec7.append(head + (0,))
            kind_codes.append(_T_NODE_PF if slots else _T_NODE)
            leaf_slots.append(tuple(slots))
        self.node_rec6 = rec6
        self.node_rec7 = rec7
        self.node_kind = kind_codes
        self.node_leaf_slots = leaf_slots

        if rec.two_level:
            prim_kind = PRIM_TRANSFORM
        elif rec.prims == PRIMS_TRIANGLES:
            prim_kind = PRIM_TRI
        else:
            prim_kind = PRIM_CUSTOM
        self.leaf_rec7 = [
            (tables.leaf_addr[i], tables.leaf_bytes[i], FETCH_LEAF, 0,
             tables.leaf_count[i], prim_kind, 0)
            for i in range(len(tables.leaf_addr))
        ]

        # Recording is guarded to single-BLAS structures, so slot 0 is
        # the only entry of the per-slot table tuple.
        bt = tables.blas_tables[0] if tables.blas_tables else None
        if rec.two_level and not rec._sphere_blas and bt is not None:
            self.bnode_addr = bt.node_addr
            self.bleaf_addr = bt.leaf_addr
            self.bnode_rec7 = [
                (bt.node_addr[i], bt.node_bytes, FETCH_INTERNAL,
                 _occupied(bt.child_kind[i]), 0, 0, 0)
                for i in range(len(bt.node_addr))
            ]
            self.bleaf_rec7 = [
                (bt.leaf_addr[i], bt.leaf_bytes[i], FETCH_LEAF, 0,
                 bt.leaf_count[i], PRIM_TRI, 0)
                for i in range(len(bt.leaf_addr))
            ]
        else:
            self.bnode_addr = self.bleaf_addr = None
            self.bnode_rec7 = self.bleaf_rec7 = None


def _occupied(kinds) -> int:
    occupied = 0
    for ckind in kinds:
        if ckind == 0:
            break
        occupied += 1
    return occupied


def _skip_table(depths: list[int]) -> list[int]:
    """``skips[i]`` = first index past entry ``i``'s subtree (pre-order:
    the next entry at depth <= depths[i], or the template end)."""
    n = len(depths)
    skips = [n] * n
    stack: list[int] = []
    for i, d in enumerate(depths):
        while stack and depths[stack[-1]] >= d:
            skips[stack.pop()] = i
        stack.append(i)
    return skips


class _RaySim:
    """Replays the scalar tracer's control flow for one ray over a
    pre-baked round template, emitting the ray's fetch trace.

    The template bakes everything round-invariant — the DFS visit order
    (child ordering depends only on per-ray entry distances), the static
    accept tests (``tn <= tf``, ``tf >= 0``, ``tn <= t_clip``) and
    subtree-skip jumps; a round walk applies only the interval residuals
    (``tf >= t_min``, ``tn <= t_max``), mirroring
    :class:`repro.rt.tracer.Tracer` decision for decision (minus color
    math and the GRTX-HW branches, which are no-ops without
    checkpointing).  The trace-equivalence test matrix pins the two
    implementations together.
    """

    __slots__ = (
        "rec", "recs", "config", "trace", "t_clip",
        "entries", "skips", "node_rows", "tri_hits", "eval_map",
        "sph_box", "mesh_root", "mesh_nodes", "mesh_leaf_best",
        "blas_cache",
        # per-round state (the scalar _RoundState)
        "t_min", "t_max", "kbuffer", "round_trace",
        "collect_all", "hits", "hits_seen", "frontier",
    )

    def __init__(self, rec: PacketTraceRecorder, trace: RayTrace,
                 t_clip: float, node_rows, tri_hits, eval_map, sph_box,
                 mesh_root, mesh_nodes, mesh_leaf_best) -> None:
        self.rec = rec
        self.recs = rec.static_recs()
        self.config = rec.config
        self.trace = trace
        self.t_clip = t_clip
        self.node_rows = node_rows
        self.tri_hits = tri_hits
        self.eval_map = eval_map
        self.sph_box = sph_box
        self.mesh_root = mesh_root
        self.mesh_nodes = mesh_nodes
        self.mesh_leaf_best = mesh_leaf_best
        self.blas_cache = {}
        self.entries, self.skips = self._build_template()

    # -- template construction -----------------------------------------

    def _build_template(self):
        """One stack walk in the scalar DFS order (children sorted
        nearest first with the same tie behavior), applying only the
        static accept tests; per-round residuals stay in ``(tn, tf)``."""
        tables = self.rec.tables
        kind_rows = tables.child_kind
        ref_rows = tables.child_ref
        node_rows = self.node_rows
        node_kind = self.recs.node_kind
        two_level = self.rec.two_level
        triangles = self.rec.prims == PRIMS_TRIANGLES
        if two_level:
            leaf_code = _T_TLAS_LEAF
        elif triangles:
            leaf_code = _T_TRI_LEAF
        else:
            leaf_code = _T_CUSTOM_LEAF

        entries: list = []
        depths: list[int] = []
        append = entries.append
        dappend = depths.append
        # The root bypasses the slab accept: tn = 0, tf = inf make its
        # residual checks vacuous, exactly like the scalar's seed entry.
        stack = [(KIND_INTERNAL, 0, 0, 0.0, _INF)]
        while stack:
            kind, ref, depth, tn, tf = stack.pop()
            if kind == KIND_LEAF:
                append((leaf_code, tn, tf, ref))
                dappend(depth)
                continue
            append((node_kind[ref], tn, tf, ref))
            dappend(depth)
            row = node_rows[ref]
            cnt = row[3]
            if cnt:
                # Phase A pre-sorted the accepted slots by descending
                # entry distance (slot order on ties): push order ==
                # the scalar's, so pops come nearest first.
                tn_row = row[0]
                tf_row = row[1]
                order = row[2]
                kinds = kind_rows[ref]
                refs = ref_rows[ref]
                child_depth = depth + 1
                for pos in range(cnt):
                    slot = order[pos]
                    stack.append((kinds[slot], refs[slot], child_depth,
                                  tn_row[slot], tf_row[slot]))
        return entries, _skip_table(depths)

    def _build_blas_template(self, gid: int, root_tn: float):
        """One instance pair's shared-BLAS round template (same DFS
        rules over the BLAS tables), cached per Gaussian."""
        bt = self.rec.tables.blas_tables[0]
        kind_rows = bt.child_kind
        ref_rows = bt.child_ref
        node_rows = self.mesh_nodes[gid]
        entries: list = []
        depths: list[int] = []
        append = entries.append
        dappend = depths.append
        stack = [(KIND_INTERNAL, 0, 0, root_tn, _INF)]
        while stack:
            kind, ref, depth, tn, tf = stack.pop()
            if kind == KIND_LEAF:
                append((_T_BLAS_LEAF, tn, tf, ref))
                dappend(depth)
                continue
            append((_T_NODE, tn, tf, ref))
            dappend(depth)
            row = node_rows[ref]
            cnt = row[3]
            if cnt:
                tn_row = row[0]
                tf_row = row[1]
                order = row[2]
                kinds = kind_rows[ref]
                refs = ref_rows[ref]
                child_depth = depth + 1
                for pos in range(cnt):
                    slot = order[pos]
                    stack.append((kinds[slot], refs[slot], child_depth,
                                  tn_row[slot], tf_row[slot]))
        return entries, _skip_table(depths)

    # -- round drivers (Tracer.trace_ray / _trace_*_round) -------------

    def run(self) -> int:
        """Trace the ray to completion; returns the exact round count."""
        if self.config.mode == "singleround":
            return self._run_single_round()
        return self._run_multi_round()

    def _run_single_round(self) -> int:
        round_trace = self.trace.begin_round()
        self._begin_state(0.0, None, round_trace, collect_all=True)
        self._walk()
        hits = sorted(self.hits, key=lambda e: (e.t, e.gaussian_id))
        round_trace.kbuffer_ops += len(hits)
        _, blended, _ = self._blend(hits, 1.0)
        round_trace.blended = blended
        return 1

    def _run_multi_round(self) -> int:
        config = self.config
        t_min = 0.0
        frontier: frozenset[int] = frozenset()
        transmittance = 1.0
        rounds = 0
        for _round_index in range(config.max_rounds):
            round_trace = self.trace.begin_round()
            rounds += 1
            kbuffer = KBuffer(config.k)
            self._begin_state(t_min, kbuffer, round_trace,
                              collect_all=False, frontier=frontier)
            self._walk()
            entries = sorted(kbuffer.drain(),
                             key=lambda e: (e.t, e.gaussian_id))
            round_trace.kbuffer_ops += kbuffer.insertions
            if not entries:
                break
            transmittance, blended, terminated = self._blend(
                entries, transmittance)
            round_trace.blended = blended
            if terminated:
                break
            last_t = entries[-1].t
            tied = frozenset(
                e.gaussian_id for e in entries if e.t == last_t)
            frontier = (frontier | tied) if last_t == t_min else tied
            t_min = last_t
            if len(entries) < config.k:
                break
        return rounds

    def _begin_state(self, t_min, kbuffer, round_trace, collect_all,
                     frontier: frozenset = frozenset()) -> None:
        self.t_min = t_min
        self.t_max = _INF
        self.kbuffer = kbuffer
        self.round_trace = round_trace
        self.collect_all = collect_all
        self.hits = []
        self.hits_seen = set()
        self.frontier = frontier

    def _blend(self, entries, transmittance):
        """The scalar blend loop minus color math: same transmittance
        sequence, so the same blended count and termination decision."""
        blended = 0
        terminated = False
        threshold = self.config.transmittance_min
        for entry in entries:
            transmittance *= 1.0 - entry.alpha
            blended += 1
            if transmittance < threshold:
                terminated = True
                break
        return transmittance, blended, terminated

    # -- the round walk -------------------------------------------------

    def _walk(self) -> None:
        """One tracing round: walk the template with subtree jumps."""
        recs = self.recs
        trace = self.trace
        rt = self.round_trace
        stream = rt.stream
        emit = stream.extend
        pf_emit = rt.pf.extend
        s_append = stream.append
        add_int = trace.unique_internal.add
        add_leaf = trace.unique_leaf.add
        t_min = self.t_min
        t_clip = self.t_clip
        em = self.eval_map
        node_rec7 = recs.node_rec7
        node_rec6 = recs.node_rec6
        node_addr = recs.node_addr
        node_leaf_slots = recs.node_leaf_slots
        node_rows = self.node_rows
        leaf_rec7 = recs.leaf_rec7
        leaf_addr = recs.leaf_addr
        leaf_start = recs.leaf_start
        leaf_count = recs.leaf_count
        sphere = self.rec._sphere_blas
        gids = self.rec.tables.ordered_gids
        if sphere:
            sphere_rec = self.rec._sphere_rec
            sphere_addr = sphere_rec[0]
            sph = self.sph_box
        elif self.rec.two_level:
            mesh_root = self.mesh_root
            bcache = self.blas_cache
        anyhit = self._anyhit
        entries = self.entries
        skips = self.skips
        n = len(entries)
        n_int = n_leaf = 0

        i = 0
        while i < n:
            entry = entries[i]
            if entry[2] < t_min or entry[1] > self.t_max:
                i = skips[i]
                continue
            kind = entry[0]
            ref = entry[3]
            if kind == _T_NODE:
                emit(node_rec7[ref])
                add_int(node_addr[ref])
                n_int += 1
            elif kind == _T_NODE_PF:
                row = node_rows[ref]
                tn_row = row[0]
                tf_row = row[1]
                t_max = self.t_max
                npf = 0
                for slot, pair in node_leaf_slots[ref]:
                    ctn = tn_row[slot]
                    ctf = tf_row[slot]
                    if (ctn > ctf or ctf < t_min or ctf < 0.0
                            or ctn > t_clip or ctn > t_max):
                        continue
                    pf_emit(pair)
                    npf += 1
                emit(node_rec6[ref])
                s_append(npf)
                add_int(node_addr[ref])
                n_int += 1
            elif kind == _T_TRI_LEAF:
                emit(leaf_rec7[ref])
                add_leaf(leaf_addr[ref])
                n_leaf += 1
                hits = self.tri_hits.get(ref)
                if hits:
                    for t_proxy, gid in hits:
                        anyhit(gid, em[gid], t_proxy)
            elif kind == _T_TLAS_LEAF:
                emit(leaf_rec7[ref])
                add_leaf(leaf_addr[ref])
                n_leaf += 1
                start = leaf_start[ref]
                if sphere:
                    for slot in range(start, start + leaf_count[ref]):
                        gid = gids[slot]
                        emit(sphere_rec)
                        add_leaf(sphere_addr)
                        n_leaf += 1
                        box = sph[gid]
                        itn = box[0]
                        itf = box[1]
                        if (itn > itf or itf < t_min or itf < 0.0
                                or itn > t_clip):
                            continue
                        if itn > self.t_max:
                            continue
                        anyhit(gid, em[gid], None)
                else:
                    for slot in range(start, start + leaf_count[ref]):
                        gid = gids[slot]
                        root = mesh_root[gid]
                        rtn = root[0]
                        rtf = root[1]
                        if (rtn > rtf or rtf < t_min or rtf < 0.0
                                or rtn > t_clip):
                            continue
                        if rtn > self.t_max:
                            continue
                        bt = bcache.get(gid)
                        if bt is None:
                            bt = self._build_blas_template(gid, rtn)
                            bcache[gid] = bt
                        bi, bl, best = self._walk_blas(
                            bt, self.mesh_leaf_best.get(gid),
                            emit, add_int, add_leaf)
                        n_int += bi
                        n_leaf += bl
                        if best is not None:
                            anyhit(gid, em[gid], best)
            else:  # _T_CUSTOM_LEAF
                emit(leaf_rec7[ref])
                add_leaf(leaf_addr[ref])
                n_leaf += 1
                start = leaf_start[ref]
                for slot in range(start, start + leaf_count[ref]):
                    gid = gids[slot]
                    anyhit(gid, em[gid], None)
            i += 1

        trace.total_internal += n_int
        trace.total_leaf += n_leaf

    def _walk_blas(self, template, leaf_best, emit, add_int, add_leaf):
        """One shared-BLAS sub-traversal (``t_max`` is frozen inside:
        the any-hit runs after the walk).  Returns ``(internal fetches,
        leaf fetches, nearest entering template-triangle t or None)``."""
        recs = self.recs
        bnode_rec7 = recs.bnode_rec7
        bnode_addr = recs.bnode_addr
        bleaf_rec7 = recs.bleaf_rec7
        bleaf_addr = recs.bleaf_addr
        t_min = self.t_min
        t_max = self.t_max
        entries, skips = template
        n = len(entries)
        n_int = n_leaf = 0
        best = None
        i = 0
        while i < n:
            entry = entries[i]
            if entry[2] < t_min or entry[1] > t_max:
                i = skips[i]
                continue
            ref = entry[3]
            if entry[0] == _T_NODE:
                emit(bnode_rec7[ref])
                add_int(bnode_addr[ref])
                n_int += 1
            else:  # _T_BLAS_LEAF
                emit(bleaf_rec7[ref])
                add_leaf(bleaf_addr[ref])
                n_leaf += 1
                if leaf_best is not None:
                    t = leaf_best.get(ref)
                    if t is not None and (best is None or t < best):
                        best = t
            i += 1
        return n_int, n_leaf, best

    # -- canonical any-hit (Tracer._anyhit) ----------------------------

    def _anyhit(self, gid: int, result, t_depth: float | None) -> None:
        if result is False:
            self.round_trace.false_positives += 1
            return
        t_exact, alpha = result
        t_hit = t_exact if t_depth is None else t_depth

        if t_hit > self.t_clip:
            return

        if self.collect_all:
            if t_hit > self.t_min and gid not in self.hits_seen:
                self.hits_seen.add(gid)
                self.round_trace.anyhit_calls += 1
                self.hits.append(KBufferEntry(t_hit, gid, alpha))
            return

        if t_hit < self.t_min or (t_hit == self.t_min
                                  and gid in self.frontier):
            return
        if t_hit > self.t_max:
            return
        kbuffer = self.kbuffer
        if gid in kbuffer:
            return
        self.round_trace.anyhit_calls += 1
        rejected = kbuffer.insert(KBufferEntry(t_hit, gid, alpha))
        if rejected is not None and rejected.gaussian_id == gid:
            # The new hit itself was beyond the k closest: the shader
            # reports it, shrinking t_max (Listing 1, lines 18-20).
            self.t_max = t_hit


