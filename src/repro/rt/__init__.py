"""Gaussian ray-tracing runtime.

Implements the paper's rendering algorithm (Section III-A / Listing 1):
multi-round k-buffer tracing with any-hit sorting, early ray termination,
and — for GRTX-HW — traversal checkpointing and replay. The tracer records
byte-accurate node-fetch traces that :mod:`repro.hwsim` replays for timing.
"""

from repro.rt.kbuffer import EvictionBuffer, KBuffer, KBufferEntry
from repro.rt.recorder import (
    FETCH_INTERNAL,
    FETCH_LEAF,
    PRIM_CUSTOM,
    PRIM_NONE,
    PRIM_SPHERE,
    PRIM_TRANSFORM,
    PRIM_TRI,
    RayTrace,
    RoundTrace,
)
from repro.rt.pipeline import (
    ACCEPT,
    IGNORE,
    TERMINATE,
    DepthPayload,
    Hit,
    RayTracingPipeline,
    ShadowPayload,
    depth_pipeline,
    shadow_pipeline,
)
from repro.rt.packet import (
    MONOLITHIC_PROXIES,
    PACKET_PROXIES,
    TWO_LEVEL_PROXIES,
    WAVEFRONT_MIN_RAYS,
    PacketResult,
    PacketTracer,
    fallback_reason,
    packet_config_supported,
    packet_fallback_count,
    packet_supported,
    reset_packet_fallbacks,
    resolve_engine,
)
from repro.rt.wavefront import (
    WAVEFRONT_RAY_CHUNK,
    WavefrontTracer,
    wavefront_supported,
)
from repro.rt.predictor import PredictorReport, RayPredictor, analyze_predictor
from repro.rt.shading import SceneShading
from repro.rt.tracer import RayOutcome, TraceConfig, Tracer

__all__ = [
    "ACCEPT",
    "DepthPayload",
    "EvictionBuffer",
    "FETCH_INTERNAL",
    "FETCH_LEAF",
    "Hit",
    "IGNORE",
    "KBuffer",
    "KBufferEntry",
    "PRIM_CUSTOM",
    "PRIM_NONE",
    "PRIM_SPHERE",
    "PRIM_TRANSFORM",
    "PRIM_TRI",
    "PacketResult",
    "PacketTracer",
    "PredictorReport",
    "RayOutcome",
    "RayTrace",
    "RayPredictor",
    "RayTracingPipeline",
    "RoundTrace",
    "SceneShading",
    "ShadowPayload",
    "TERMINATE",
    "TraceConfig",
    "Tracer",
    "WavefrontTracer",
    "MONOLITHIC_PROXIES",
    "PACKET_PROXIES",
    "TWO_LEVEL_PROXIES",
    "WAVEFRONT_MIN_RAYS",
    "WAVEFRONT_RAY_CHUNK",
    "analyze_predictor",
    "depth_pipeline",
    "fallback_reason",
    "packet_config_supported",
    "packet_fallback_count",
    "packet_supported",
    "reset_packet_fallbacks",
    "resolve_engine",
    "shadow_pipeline",
    "wavefront_supported",
]
