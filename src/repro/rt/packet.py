"""Vectorized ray-packet tracing over the flattened structure layout.

The scalar :class:`~repro.rt.tracer.Tracer` walks acceleration
structures one ray at a time in pure Python — the throughput bottleneck
of the whole reproduction.  Primary rays inside a tile are highly
coherent, so this module traces a whole tile's bundle *together* over
the one flattened layout every structure lowers to
(:func:`repro.bvh.flatten.flatten`):

* **batched slab tests** — each node of a flattened level is visited at
  most once per packet; its (up to ``width``) child boxes are slab-tested
  against every ray still active at that node in one numpy broadcast,
  and children are descended with the surviving ray subset;
* **two-level traversal** — TLAS leaves gather their instance records
  (Gaussian id, world->object transform, shared-BLAS slot), the live
  (ray, instance) bundle is transformed into BLAS object space in one
  batch, and each shared BLAS is traversed *once* for its whole instance
  group: the unit-sphere BLAS is a batched root-box test, the template
  mesh BLAS reuses the same generic level traversal with the pair bundle
  as its rays;
* **masked Möller–Trumbore** — all (ray, triangle) candidate pairs
  produced by the leaf visits (monolithic leaves or template-BLAS
  leaves) are intersected in one vectorized batch;
* **vectorized front-to-back blending** — per-ray hit lists are sorted
  by ``(t, gaussian_id)``, transmittance is a row-wise ``cumprod``, and
  early ray termination is a monotone cutoff on the running
  transmittance, exactly mirroring the scalar blend loop's arithmetic.

Parity is the contract: for every supported configuration the packet
engine renders the same image as the scalar tracer to within 1e-9 per
channel, and the functional counters that stay meaningful without
per-round traversal — ``n_rays``, ``blended_total``,
``rays_terminated_early`` — agree exactly.  The equivalence rests on two
properties of the (tie-fixed) multi-round algorithm: each round's
k-buffer holds exactly the k closest remaining hits, so the blend
sequence across rounds is the globally ``(t, gid)``-sorted hit list
capped at ``max_rounds * k`` entries; and early termination is a
monotone threshold on the running transmittance, so it commutes with
computing all hits first.

Scope: every structure the repo builds — monolithic (triangle and
custom proxies) *and* two-level (``tlas+sphere`` / ``tlas+*-tri``) — in
``multiround`` and ``singleround`` modes, including ``record_blended``
(per-ray blend lists extracted from the vectorized blend) and per-ray
fetch traces (:meth:`PacketTracer.trace_packet_recorded`, backed by
:mod:`repro.rt.tracerecord`: batched geometry passes plus a per-ray
control-flow reconstruction that emits scalar-identical
:class:`~repro.rt.recorder.RayTrace` streams).  GRTX-HW checkpointing
stays scalar-engine-only; :func:`packet_supported` tells callers when
to fall back, and :func:`resolve_engine` / :func:`packet_fallback_count`
make the fallback observable instead of silent.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.obs import get_registry, span
from repro.obs import events as obs_events
from repro.obs import flight

from repro.bvh.flatten import (
    BLAS_SPHERE,
    PRIMS_GAUSSIANS,
    PRIMS_TRIANGLES,
    FlatBVH,
    flatten,
    flattenable,
)
from repro.bvh.node import KIND_INTERNAL
from repro.gaussians.sh import sh_basis
from repro.rt.shading import ALPHA_MAX, ALPHA_MIN, SceneShading
from repro.rt.tracer import TraceConfig

#: Rays per internal traversal chunk; bounds the (rays, width, 3)
#: broadcast temporaries and the dense per-ray blend matrix to tens of
#: MB even for hit-heavy scenes.
_MAX_PACKET = 8192

_INF = float("inf")


#: Proxy labels that build monolithic structures.
MONOLITHIC_PROXIES = ("20-tri", "80-tri", "custom")

#: Proxy labels that build two-level (GRTX-SW) structures.
TWO_LEVEL_PROXIES = ("tlas+sphere", "tlas+20-tri", "tlas+80-tri")

#: Every proxy label the packet engine covers — the single source for
#: request-level engine resolution, so the serving layer can never
#: drift from :func:`packet_supported`.
PACKET_PROXIES = MONOLITHIC_PROXIES + TWO_LEVEL_PROXIES


def packet_config_supported(config: TraceConfig) -> bool:
    """The config half of :func:`packet_supported`: GRTX-HW
    checkpointing stays on the scalar engine (``record_blended`` is
    packetized — the blend stage extracts per-ray blend lists)."""
    return not config.checkpointing


def packet_supported(structure, config: TraceConfig) -> bool:
    """Whether the packet engine covers this (structure, config) pair.

    Structural support is :func:`repro.bvh.flatten.flattenable` — the
    same predicate the scalar tracer's table setup uses — so both
    engines agree by construction on what a structure is.
    """
    return flattenable(structure) and packet_config_supported(config)


def fallback_reason(structure, config: TraceConfig) -> str | None:
    """Why this (structure, config) pair needs the scalar engine
    (``None`` when the packet engine covers it)."""
    if not flattenable(structure):
        return f"unsupported structure type {type(structure).__name__}"
    if config.checkpointing:
        return "checkpointing (GRTX-HW) is scalar-engine-only"
    return None


# ---------------------------------------------------------------------------
# Fallback observability: a process-wide counter plus a one-time warning
# per distinct reason, so an engine="packet" request silently degrading
# to the scalar tracer is visible to callers (the render server surfaces
# the counter as a gauge in its metric snapshots).

_fallback_lock = threading.Lock()
_fallback_count = 0
_warned_reasons: set[str] = set()


def note_packet_fallback(reason: str) -> None:
    """Record one packet->scalar degrade; warns once per reason."""
    global _fallback_count
    with _fallback_lock:
        _fallback_count += 1
        first = reason not in _warned_reasons
        _warned_reasons.add(reason)
    # Mirror into the obs registry: inside a pool worker the global
    # counter above dies with the process, but the registry delta rides
    # back to the parent with the task result (satellite fix — worker
    # fallbacks used to be silently lost).
    get_registry().add("rt.packet_fallbacks")
    # And into the flight ring with the *reason* — a counter says how
    # often, the black box says why and when relative to the incident.
    flight.record(obs_events.FALLBACK, "rt.packet_fallback", reason=reason)
    if first:
        warnings.warn(
            f"packet engine unavailable ({reason}); falling back to the "
            "scalar tracer", RuntimeWarning, stacklevel=3)


def packet_fallback_count() -> int:
    """Process-wide count of packet->scalar fallbacks so far."""
    with _fallback_lock:
        return _fallback_count


def reset_packet_fallbacks() -> None:
    """Reset the counter and re-arm the one-time warnings (tests)."""
    global _fallback_count
    with _fallback_lock:
        _fallback_count = 0
        _warned_reasons.clear()


def resolve_engine(engine: str, structure, config: TraceConfig) -> str:
    """The concrete engine a (structure, config) pair will trace with.

    ``"auto"`` picks the packet engine whenever it covers the pair and
    the scalar tracer otherwise, silently — that is its contract.  An
    explicit ``"packet"`` that cannot be honored *degrades* to scalar:
    the degrade is counted (:func:`packet_fallback_count`) and warned
    about once per reason, because the caller asked for something they
    are not getting.
    """
    if engine == "scalar":
        return "scalar"
    if engine not in ("packet", "auto"):
        raise ValueError(
            f"unknown engine {engine!r}; expected scalar, packet or auto")
    reason = fallback_reason(structure, config)
    if reason is None:
        return "packet"
    if engine == "packet":
        note_packet_fallback(reason)
    return "scalar"


@dataclass
class PacketResult:
    """Per-ray outcome arrays for one traced packet.

    ``colors`` is aligned with the input ray order.  ``rounds`` is the
    number of k-sized blend chunks the scalar multiround algorithm
    would need for the blended hits (1 for singleround) — an equivalent
    work measure, not a claim of per-round parity.
    """

    colors: np.ndarray
    transmittance: np.ndarray
    blended: np.ndarray
    terminated: np.ndarray
    rounds: np.ndarray
    #: Candidate (ray, gaussian) pairs that passed the canonical
    #: any-hit evaluation (each pair evaluated exactly once).
    anyhit_calls: int = 0
    #: Candidate pairs rejected by the canonical evaluation (proxy
    #: false positives, negligible alpha, entry behind the origin).
    false_positives: int = 0
    #: Per-ray ``(gaussian_id, alpha, t)`` blend lists in blend order,
    #: populated when ``TraceConfig.record_blended`` is set — the same
    #: lists the scalar tracer's ``RayOutcome.blend_records`` carries
    #: (the training substrate's backward pass consumes them).
    blend_records: list[list[tuple[int, float, float]]] | None = None

    @property
    def n_rays(self) -> int:
        return self.colors.shape[0]

    @classmethod
    def concatenate(cls, parts: list["PacketResult"],
                    record_blended: bool) -> "PacketResult":
        """Merge chunked results back into one, in chunk order (shared
        by the plain and recorded tracing paths, so a new field cannot
        be merged in one and dropped in the other)."""
        records = None
        if record_blended:
            records = []
            for p in parts:
                records.extend(p.blend_records or [])
        return cls(
            colors=np.concatenate([p.colors for p in parts]),
            transmittance=np.concatenate([p.transmittance for p in parts]),
            blended=np.concatenate([p.blended for p in parts]),
            terminated=np.concatenate([p.terminated for p in parts]),
            rounds=np.concatenate([p.rounds for p in parts]),
            anyhit_calls=sum(p.anyhit_calls for p in parts),
            false_positives=sum(p.false_positives for p in parts),
            blend_records=records,
        )


class _Level:
    """Contiguous traversal arrays for one flattened BVH level."""

    __slots__ = ("child_lo", "child_hi", "child_kind", "child_ref",
                 "leaf_start", "leaf_count")

    def __init__(self, bvh: FlatBVH) -> None:
        self.child_lo = np.ascontiguousarray(bvh.child_lo)
        self.child_hi = np.ascontiguousarray(bvh.child_hi)
        self.child_kind = bvh.child_kind
        self.child_ref = bvh.child_ref
        self.leaf_start = bvh.leaf_start
        self.leaf_count = bvh.leaf_count


class PacketTracer:
    """Traces ray packets through one flattened scene structure.

    Built once per (structure, shading, config) like the scalar
    :class:`~repro.rt.tracer.Tracer`; carries no per-packet state, so a
    single instance may trace any number of packets.  Accepts raw
    structures (flattened on construction, memoized) or an
    already-flattened :class:`~repro.bvh.flatten.FlatStructure`.
    """

    def __init__(
        self,
        structure,
        shading: SceneShading,
        config: TraceConfig | None = None,
    ) -> None:
        config = config or TraceConfig()
        if not packet_supported(structure, config):
            raise ValueError(
                "packet engine supports flattenable structures without "
                "checkpointing; use the scalar Tracer "
                f"({fallback_reason(structure, config)})")
        flat = flatten(structure)
        self.structure = structure
        self.flat = flat
        self.shading = shading
        self.config = config
        self._recorder = None
        self._root = _Level(flat.root)
        self._prims = flat.root_prims
        if flat.root_prims == PRIMS_TRIANGLES:
            mesh = flat.mesh
            self._v0, self._e1, self._e2 = mesh.v0, mesh.e1, mesh.e2
            self._owner = mesh.owner
        else:
            # Custom primitives or instances: leaf-ordered Gaussian ids.
            self._gids = flat.prim_gid
        if flat.two_level:
            # The instance table (leaf-ordered, aligned with prim_gid) —
            # bit-equal to the shading tables by construction, which the
            # test suite guards, so consuming it preserves scalar parity.
            self._inst_lin = flat.inst_w2o_linear
            self._inst_off = flat.inst_w2o_offset
            self._inst_blas = flat.inst_blas
            self._blas = flat.blas
            self._blas_levels = [
                _Level(b.bvh) if b.bvh is not None else None
                for b in flat.blas
            ]
            self._blas_roots = [
                b.bvh.root_box() if b.bvh is not None else None
                for b in flat.blas
            ]

    @property
    def triangle_proxy(self) -> bool:
        return self._prims == PRIMS_TRIANGLES

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def trace_packet(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_clip: np.ndarray | None = None,
    ) -> PacketResult:
        """Trace a bundle of rays to completion.

        ``t_clip`` optionally bounds each ray's traced segment (analytic
        scene objects truncating primaries), per ray; ``None`` means
        unbounded.
        """
        o = np.ascontiguousarray(origins, dtype=np.float64)
        d = np.ascontiguousarray(directions, dtype=np.float64)
        n = o.shape[0]
        if t_clip is None:
            t_clip = np.full(n, _INF)
        else:
            t_clip = np.asarray(t_clip, dtype=np.float64)
        if n == 0:
            return self._empty_result(0)
        with span("rt.packet.trace", rays=n):
            if n <= _MAX_PACKET:
                return self._trace_chunk(o, d, t_clip)
            parts = [
                self._trace_chunk(o[i:i + _MAX_PACKET], d[i:i + _MAX_PACKET],
                                  t_clip[i:i + _MAX_PACKET])
                for i in range(0, n, _MAX_PACKET)
            ]
            return PacketResult.concatenate(parts, self.config.record_blended)

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def _empty_result(self, n: int) -> PacketResult:
        return PacketResult(
            colors=np.zeros((n, 3)),
            transmittance=np.ones(n),
            blended=np.zeros(n, dtype=np.int64),
            terminated=np.zeros(n, dtype=bool),
            rounds=np.ones(n, dtype=np.int64),
            blend_records=([[] for _ in range(n)]
                           if self.config.record_blended else None),
        )

    def _trace_chunk(self, o, d, t_clip) -> PacketResult:
        # Same degenerate-direction guard as the scalar tracer, so slab
        # tests agree bit-for-bit.
        safe = np.where(np.abs(d) < 1e-12, 1e-12, d)
        inv_d = 1.0 / safe

        # Per-phase timing at chunk granularity (one perf_counter pair
        # per stage, thousands of rays each — far off the hot path).
        # The same three-way split the scalar tracer reports, so the
        # rt.phase.* histograms compare engines directly.
        registry = get_registry()
        t_start = time.perf_counter()
        leaf_rays, leaf_refs = self._traverse(self._root, o, inv_d, t_clip)
        t_traversal = time.perf_counter()
        o2 = d2 = None
        if self._prims == PRIMS_TRIANGLES:
            ray_c, gid_c, t_proxy = self._leaf_triangles(
                o, d, leaf_rays, leaf_refs)
        elif self._prims == PRIMS_GAUSSIANS:
            ray_c, gid_c = self._leaf_customs(leaf_rays, leaf_refs)
            t_proxy = None
        else:
            ray_c, gid_c, t_proxy, o2, d2 = self._leaf_instances(
                o, d, t_clip, leaf_rays, leaf_refs)
        t_intersect = time.perf_counter()
        result = self._shade_and_blend(o, d, t_clip, ray_c, gid_c, t_proxy,
                                       o2=o2, d2=d2)
        t_blend = time.perf_counter()
        registry.observe("rt.phase.traversal", t_traversal - t_start)
        registry.observe("rt.phase.intersect", t_intersect - t_traversal)
        registry.observe("rt.phase.blend", t_blend - t_intersect)
        return result

    def _traverse(
        self,
        level: _Level,
        o: np.ndarray,
        inv_d: np.ndarray,
        t_clip: np.ndarray,
    ) -> tuple[list[np.ndarray], list[int]]:
        """Packet traversal of one flattened level: every reachable node
        visited at most once.

        The "rays" are whatever bundle the level is traversed with —
        camera rays for the root level, object-space (ray, instance)
        pairs for a shared mesh BLAS.  Returns the leaf visit list as
        parallel (active-ray subset, leaf record index) sequences.
        There is no t_max pruning: the blend stage applies early
        termination after all hits are known, which yields the identical
        blended prefix (termination is a monotone cutoff on sorted
        hits).
        """
        kinds = level.child_kind
        refs = level.child_ref
        los = level.child_lo
        his = level.child_hi
        leaf_rays: list[np.ndarray] = []
        leaf_refs: list[int] = []
        stack: list[tuple[int, np.ndarray]] = [
            (0, np.arange(o.shape[0], dtype=np.int64))
        ]
        while stack:
            node, rays = stack.pop()
            ro = o[rays]
            ri = inv_d[rays]
            t0 = (los[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            t1 = (his[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            tn = np.minimum(t0, t1).max(axis=2)
            tf = np.maximum(t0, t1).min(axis=2)
            # Same accept test as the scalar slab (t_min = 0 here; there
            # is no shrinking t_max).  Empty slots are masked by kind.
            hit = (tn <= tf) & (tf >= 0.0) & (tn <= t_clip[rays, None])
            hit &= (kinds[node] != 0)[None, :]
            for slot in np.nonzero(hit.any(axis=0))[0]:
                sub = rays[hit[:, slot]]
                if kinds[node, slot] == KIND_INTERNAL:
                    stack.append((int(refs[node, slot]), sub))
                else:
                    leaf_rays.append(sub)
                    leaf_refs.append(int(refs[node, slot]))
        return leaf_rays, leaf_refs

    def _traverse_log(
        self,
        level: _Level,
        o: np.ndarray,
        inv_d: np.ndarray,
        t_clip: np.ndarray,
    ) -> tuple[list, list[np.ndarray], list[int]]:
        """Recording variant of :meth:`_traverse`.

        Identical stack discipline and leaf output, but additionally
        returns the per-node visit log ``[(node, rays, tn, tf, hit),
        ...]`` with every visiting ray's child slab results for *all*
        slots and the accept mask — the geometry the packet trace
        recorder's per-ray control-flow reconstruction replays (visits
        with ``t_min = 0`` and no ``t_max`` are a superset of every
        tracing round's visits).
        """
        kinds = level.child_kind
        refs = level.child_ref
        los = level.child_lo
        his = level.child_hi
        visits: list = []
        leaf_rays: list[np.ndarray] = []
        leaf_refs: list[int] = []
        stack: list[tuple[int, np.ndarray]] = [
            (0, np.arange(o.shape[0], dtype=np.int64))
        ]
        while stack:
            node, rays = stack.pop()
            ro = o[rays]
            ri = inv_d[rays]
            t0 = (los[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            t1 = (his[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            tn = np.minimum(t0, t1).max(axis=2)
            tf = np.maximum(t0, t1).min(axis=2)
            hit = (tn <= tf) & (tf >= 0.0) & (tn <= t_clip[rays, None])
            hit &= (kinds[node] != 0)[None, :]
            visits.append((node, rays, tn, tf, hit))
            for slot in np.nonzero(hit.any(axis=0))[0]:
                sub = rays[hit[:, slot]]
                if kinds[node, slot] == KIND_INTERNAL:
                    stack.append((int(refs[node, slot]), sub))
                else:
                    leaf_rays.append(sub)
                    leaf_refs.append(int(refs[node, slot]))
        return visits, leaf_rays, leaf_refs

    def trace_packet_recorded(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_clip: np.ndarray | None = None,
        label: str = "primary",
    ):
        """Trace a bundle *and* record per-ray fetch traces.

        Returns ``(PacketResult, traces)`` where ``traces`` is one
        :class:`~repro.rt.recorder.RayTrace` per input ray, stream- and
        counter-equal to what the scalar tracer would have recorded (the
        timing model replays either interchangeably). The result's
        ``rounds`` array carries the reconstructed exact round counts.
        See :mod:`repro.rt.tracerecord` for the recording pipeline.
        """
        from repro.rt.tracerecord import PacketTraceRecorder

        if self._recorder is None:
            self._recorder = PacketTraceRecorder(self)
        return self._recorder.record(origins, directions, t_clip, label)

    @staticmethod
    def _leaf_pairs(
        level: _Level, leaf_rays: list[np.ndarray], leaf_refs: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flatten leaf visits into (ray index, ordered-primitive index)
        pair arrays — the input of the batched primitive tests."""
        ray_parts: list[np.ndarray] = []
        prim_parts: list[np.ndarray] = []
        starts = level.leaf_start
        counts = level.leaf_count
        for rays, ref in zip(leaf_rays, leaf_refs):
            start = int(starts[ref])
            count = int(counts[ref])
            prims = np.arange(start, start + count, dtype=np.int64)
            ray_parts.append(np.repeat(rays, count))
            prim_parts.append(np.tile(prims, rays.size))
        if not ray_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(ray_parts), np.concatenate(prim_parts)

    @staticmethod
    def _entering_hits(
        op: np.ndarray,
        dp: np.ndarray,
        tp: np.ndarray,
        v0_arr: np.ndarray,
        e1_arr: np.ndarray,
        e2_arr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masked Möller–Trumbore over (ray, triangle) candidate pairs.

        ``op``/``dp`` are the per-pair ray origins and directions (world
        space for monolithic leaves, object space for a shared-BLAS
        bundle); ``tp`` indexes the leaf-ordered triangle tables.
        Returns ``(sel, t)``: indices into the input pair arrays with a
        backface-culled entering hit in front of the origin, and their
        hit distances — expression-for-expression the scalar loops'
        arithmetic.
        """
        e2 = e2_arr[tp]
        pv = np.cross(dp, e2)
        e1 = e1_arr[tp]
        det = e1[:, 0] * pv[:, 0] + e1[:, 1] * pv[:, 1] + e1[:, 2] * pv[:, 2]
        # Entering (backface-culled) hits only, as in the scalar loop.
        front = np.nonzero(det <= -1e-12)[0]
        dp, e2, pv, det = dp[front], e2[front], pv[front], det[front]
        e1 = e1[front]

        inv_det = 1.0 / det
        tv = op[front] - v0_arr[tp[front]]
        u = (tv[:, 0] * pv[:, 0] + tv[:, 1] * pv[:, 1]
             + tv[:, 2] * pv[:, 2]) * inv_det
        qv = np.cross(tv, e1)
        v = (dp[:, 0] * qv[:, 0] + dp[:, 1] * qv[:, 1]
             + dp[:, 2] * qv[:, 2]) * inv_det
        t = (e2[:, 0] * qv[:, 0] + e2[:, 1] * qv[:, 1]
             + e2[:, 2] * qv[:, 2]) * inv_det
        keep = (u >= 0.0) & (u <= 1.0) & (v >= 0.0) & (u + v <= 1.0) & (t > 0.0)
        return front[keep], t[keep]

    def _leaf_triangles(
        self,
        o: np.ndarray,
        d: np.ndarray,
        leaf_rays: list[np.ndarray],
        leaf_refs: list[int],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Monolithic triangle leaves: masked Möller–Trumbore over every
        (ray, leaf triangle) pair.

        Returns per-(ray, gaussian) candidates with the proxy entry
        depth: backface-culled entering hits, reduced to the nearest
        entering triangle per Gaussian (the proxy meshes are convex, so
        a ray has at most one entering hit per Gaussian and the
        reduction is exact).
        """
        rp, tp = self._leaf_pairs(self._root, leaf_rays, leaf_refs)
        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)

        sel, t = self._entering_hits(o[rp], d[rp], tp,
                                     self._v0, self._e1, self._e2)
        rp = rp[sel]
        gid = self._owner[tp[sel]]

        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        # Nearest entering triangle per (ray, gaussian).
        order = np.lexsort((t, gid, rp))
        rp, gid, t = rp[order], gid[order], t[order]
        first = np.ones(rp.size, dtype=bool)
        first[1:] = (rp[1:] != rp[:-1]) | (gid[1:] != gid[:-1])
        return rp[first], gid[first], t[first]

    def _leaf_customs(
        self, leaf_rays: list[np.ndarray], leaf_refs: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Custom-primitive leaves: candidates are the (ray, gaussian)
        pairs directly (each Gaussian lives in exactly one leaf)."""
        rp, pp = self._leaf_pairs(self._root, leaf_rays, leaf_refs)
        if rp.size == 0:
            return rp, pp
        return rp, self._gids[pp]

    # -- two-level -----------------------------------------------------

    @staticmethod
    def _to_object_space(lin, off, oc, dc):
        """Per-pair world->object ray transform (row-expanded 3x3
        matvec, same accumulation order as the scalar ``linear @ vec``)."""
        o2 = np.empty_like(oc)
        d2 = np.empty_like(dc)
        for axis in range(3):
            o2[:, axis] = (lin[:, axis, 0] * oc[:, 0]
                           + lin[:, axis, 1] * oc[:, 1]
                           + lin[:, axis, 2] * oc[:, 2]) + off[:, axis]
            d2[:, axis] = (lin[:, axis, 0] * dc[:, 0]
                           + lin[:, axis, 1] * dc[:, 1]
                           + lin[:, axis, 2] * dc[:, 2])
        return o2, d2

    def _leaf_instances(
        self,
        o: np.ndarray,
        d: np.ndarray,
        t_clip: np.ndarray,
        leaf_rays: list[np.ndarray],
        leaf_refs: list[int],
    ) -> tuple:
        """TLAS leaves: transform the live bundle through each instance
        and intersect every shared BLAS once with its instance group.

        Returns ``(ray_c, gid_c, t_proxy, o2, d2)``.  Candidates for the
        sphere BLAS carry no proxy depth (the exact ellipsoid entry
        distance is the sort key, as in the scalar instance path);
        mesh-BLAS candidates carry the nearest entering template-triangle
        depth (NaN marks exact-depth entries when BLAS kinds mix).
        ``o2``/``d2`` are the surviving candidates' object-space rays,
        handed to the shade stage so it does not re-transform.
        """
        empty = np.empty(0, dtype=np.int64)
        rp, pp = self._leaf_pairs(self._root, leaf_rays, leaf_refs)
        if rp.size == 0:
            return empty, empty, None, None, None
        gid = self._gids[pp]
        # Gather transforms from the flat instance table (leaf-ordered,
        # so `pp` indexes it directly) — bit-equal to the scalar
        # engine's shading tables, guarded by tests.
        o2, d2 = self._to_object_space(
            self._inst_lin[pp], self._inst_off[pp], o[rp], d[rp])

        sub_parts: list[np.ndarray] = []
        t_parts: list[np.ndarray] = []
        mesh_hit = False
        for slot, blas in enumerate(self._blas):
            if len(self._blas) > 1:
                group = np.nonzero(self._inst_blas[pp] == slot)[0]
                if group.size == 0:
                    continue
                o_s, d_s = o2[group], d2[group]
                clip_s = t_clip[rp[group]]
            else:
                # Single shared BLAS (every structure today): the whole
                # pair bundle is the group — no gather needed.
                group = None
                o_s, d_s = o2, d2
                clip_s = t_clip[rp]
            if blas.kind == BLAS_SPHERE:
                keep = self._sphere_blas_hits(o_s, d_s, clip_s)
                sub = np.nonzero(keep)[0] if group is None else group[keep]
                sub_parts.append(sub)
                t_parts.append(np.full(sub.size, np.nan))
            else:
                sel, t = self._mesh_blas_hits(slot, blas, o_s, d_s, clip_s)
                sub_parts.append(sel if group is None else group[sel])
                t_parts.append(t)
                mesh_hit = True
        if not sub_parts:
            return empty, empty, None, None, None
        sub = np.concatenate(sub_parts)
        # Sphere-only scenes carry no proxy depths (the exact ellipsoid
        # entry is the sort key); the surviving pairs' object-space rays
        # ride along so the shade stage need not re-transform them.
        t_proxy = np.concatenate(t_parts) if mesh_hit else None
        return rp[sub], gid[sub], t_proxy, o2[sub], d2[sub]

    @staticmethod
    def _sphere_blas_hits(o2, d2, clip) -> np.ndarray:
        """Batched unit-box test of the sphere BLAS root record —
        the scalar instance path's one box test, vectorized (same
        exact-zero direction guard)."""
        safe = np.where(d2 == 0.0, 1e-12, d2)  # repro: lint-ok[float-eq] exact-zero guard mirrors the scalar engine's slab divide bit-for-bit
        t0 = (-1.0 - o2) / safe
        t1 = (1.0 - o2) / safe
        tn = np.minimum(t0, t1).max(axis=1)
        tf = np.maximum(t0, t1).min(axis=1)
        return (tn <= tf) & (tf >= 0.0) & (tn <= clip)

    def _mesh_blas_hits(
        self, slot: int, blas, o2, d2, clip
    ) -> tuple[np.ndarray, np.ndarray]:
        """Traverse one shared mesh BLAS with a whole instance group.

        The pair bundle's object-space rays traverse the template BVH
        through the same generic level traversal as the root, then one
        masked Möller–Trumbore batch reduces to the nearest entering
        template triangle per pair — the scalar ``_traverse_blas``'s
        ``best``.  Returns ``(sel, t)``: indices into the input group
        with a hit, and the proxy depths (object-space t equals world t;
        the transform is affine in the ray parameter).
        """
        safe = np.where(np.abs(d2) < 1e-12, 1e-12, d2)
        inv_d2 = 1.0 / safe
        root_lo, root_hi = self._blas_roots[slot]
        t0 = (root_lo[None, :] - o2) * inv_d2
        t1 = (root_hi[None, :] - o2) * inv_d2
        tn = np.minimum(t0, t1).max(axis=1)
        tf = np.maximum(t0, t1).min(axis=1)
        live = np.nonzero((tn <= tf) & (tf >= 0.0) & (tn <= clip))[0]
        if live.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)

        level = self._blas_levels[slot]
        o_l, d_l = o2[live], d2[live]
        leaf_rays, leaf_refs = self._traverse(level, o_l, inv_d2[live],
                                              clip[live])
        pr, tp = self._leaf_pairs(level, leaf_rays, leaf_refs)
        if pr.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        mesh = blas.mesh
        sel, t = self._entering_hits(o_l[pr], d_l[pr], tp,
                                     mesh.v0, mesh.e1, mesh.e2)
        pr = pr[sel]
        if pr.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # Nearest entering template triangle per instance pair.
        order = np.lexsort((t, pr))
        pr, t = pr[order], t[order]
        first = np.ones(pr.size, dtype=bool)
        first[1:] = pr[1:] != pr[:-1]
        return live[pr[first]], t[first]

    # -- shade & blend -------------------------------------------------

    def _shade_and_blend(
        self,
        o: np.ndarray,
        d: np.ndarray,
        t_clip: np.ndarray,
        ray_c: np.ndarray,
        gid_c: np.ndarray,
        t_proxy: np.ndarray | None,
        o2: np.ndarray | None = None,
        d2: np.ndarray | None = None,
    ) -> PacketResult:
        """Canonical any-hit evaluation + front-to-back blend, batched.

        Mirrors :meth:`SceneShading.evaluate_hit` and the scalar blend
        loop expression-for-expression so the per-ray arithmetic (and
        therefore the early-termination decision) matches the scalar
        engine.  ``t_proxy`` holds proxy-geometry depths (the blend sort
        key for triangle proxies); ``None`` or NaN entries sort by the
        exact ellipsoid entry depth instead.  ``o2``/``d2`` are the
        candidates' object-space rays when the caller already computed
        them (the two-level instance path); otherwise they are derived
        here from the shading tables.
        """
        n = o.shape[0]
        config = self.config
        result = self._empty_result(n)
        if ray_c.size == 0:
            return result
        shading = self.shading

        if o2 is None:
            o2, d2 = self._to_object_space(
                shading.w2o_linear[gid_c], shading.w2o_offset[gid_c],
                o[ray_c], d[ray_c])
        dd = d2[:, 0] * d2[:, 0] + d2[:, 1] * d2[:, 1] + d2[:, 2] * d2[:, 2]
        od = o2[:, 0] * d2[:, 0] + o2[:, 1] * d2[:, 1] + o2[:, 2] * d2[:, 2]
        oo = o2[:, 0] * o2[:, 0] + o2[:, 1] * o2[:, 1] + o2[:, 2] * o2[:, 2]
        valid = dd >= 1e-30
        dd_safe = np.where(valid, dd, 1.0)
        min_sq = oo - od * od / dd_safe
        valid &= min_sq <= 1.0
        t_entry = (-od / dd_safe) - np.sqrt(
            np.maximum((1.0 - min_sq) / dd_safe, 0.0))
        valid &= t_entry > 0.0
        alpha = shading.opacities[gid_c] * np.exp(
            (-0.5 * shading.kappa_sq) * min_sq)
        valid &= alpha >= ALPHA_MIN
        false_positives = int(ray_c.size - np.count_nonzero(valid))

        if t_proxy is None:
            t_hit = t_entry
        else:
            t_hit = np.where(np.isnan(t_proxy), t_entry, t_proxy)
        valid &= t_hit <= t_clip[ray_c]
        rays = ray_c[valid]
        if rays.size == 0:
            result.false_positives = false_positives
            return result
        gids = gid_c[valid]
        ts = t_hit[valid]
        alphas = np.minimum(alpha[valid], ALPHA_MAX)

        # Global per-ray (t, gid) order — the multiround blend sequence
        # (each round's k-buffer is exactly the k closest remaining
        # hits), and literally the singleround sort.
        order = np.lexsort((gids, ts, rays))
        rays, gids, alphas, ts = (
            rays[order], gids[order], alphas[order], ts[order])
        result.anyhit_calls = int(rays.size)
        result.false_positives = false_positives
        counts = np.bincount(rays, minlength=n)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        col = np.arange(rays.size, dtype=np.int64) - starts[rays]
        if config.mode == "multiround":
            # The scalar loop runs at most max_rounds rounds of k blends.
            cap = config.max_rounds * config.k
            within = col < cap
            rays, gids, alphas, ts, col = (
                rays[within], gids[within], alphas[within], ts[within],
                col[within])
            counts = np.minimum(counts, cap)
            if rays.size == 0:
                return result

        # Pair-slice boundaries per ray (pairs are sorted by ray, so
        # each contiguous ray range maps to one contiguous pair slice).
        pair_starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=pair_starts[1:])

        colors = np.zeros((n, 3))
        transmittance = np.ones(n)
        blended = np.zeros(n, dtype=np.int64)
        records = result.blend_records  # per-ray lists when recording
        basis = sh_basis(d, shading._sh_degree)
        # The blend works on dense (rays, max hits) matrices; process
        # contiguous ray ranges whose matrix stays under the element
        # budget so a hit-heavy (especially uncapped singleround) scene
        # cannot balloon the allocation.
        r0 = 0
        while r0 < n:
            r1 = self._blend_range_end(counts, r0)
            p0, p1 = int(pair_starts[r0]), int(pair_starts[r1])
            if p0 == p1:
                r0 = r1
                continue
            rr = rays[p0:p1] - r0
            cc = col[p0:p1]
            aa = alphas[p0:p1]
            rows = r1 - r0
            width = int(counts[r0:r1].max())
            one_minus = np.ones((rows, width))
            one_minus[rr, cc] = 1.0 - aa
            # Row-wise cumprod = the scalar loop's sequential
            # `transmittance *= 1 - alpha`, bit for bit.
            t_cum = np.cumprod(one_minus, axis=1)
            prev_t = np.empty_like(t_cum)
            prev_t[:, 0] = 1.0
            prev_t[:, 1:] = t_cum[:, :-1]
            prev_pair = prev_t[rr, cc]
            # Entry i blends iff no earlier entry dropped transmittance
            # below the threshold; the running product is monotone
            # decreasing, so the blended prefix is a simple cutoff.
            blend = prev_pair >= config.transmittance_min
            rr_b = rr[blend]
            aa_b, prev_b = aa[blend], prev_pair[blend]
            if records is not None:
                # Pairs are sorted by (ray, t, gid): appends land in the
                # scalar tracer's exact blend order.
                slice_rays = rays[p0:p1][blend]
                slice_gids = gids[p0:p1][blend]
                slice_ts = ts[p0:p1][blend]
                for ray_i, gid_i, a_i, t_i in zip(
                        slice_rays.tolist(), slice_gids.tolist(),
                        aa_b.tolist(), slice_ts.tolist()):
                    records[ray_i].append((gid_i, a_i, t_i))

            color = np.einsum("pc,pcd->pd", basis[rays[p0:p1][blend]],
                              shading.sh[gids[p0:p1][blend]]) + 0.5
            np.clip(color, 0.0, None, out=color)
            contrib = (prev_b * aa_b)[:, None] * color
            # np.add.at accumulates in pair order (sorted by ray, then
            # t): the same sequential color accumulation as the scalar
            # loop.
            np.add.at(colors[r0:r1], rr_b, contrib)

            n_blend = np.bincount(rr_b, minlength=rows)
            blended[r0:r1] = n_blend
            idx = np.nonzero(n_blend)[0]
            transmittance[r0 + idx] = t_cum[idx, n_blend[idx] - 1]
            r0 = r1

        result.colors = colors
        result.transmittance = transmittance
        result.blended = blended
        result.terminated = transmittance < config.transmittance_min
        if config.mode == "multiround":
            result.rounds = np.maximum(-(-blended // config.k), 1)
        else:
            result.rounds = np.ones(n, dtype=np.int64)
        return result

    @staticmethod
    def _blend_range_end(counts: np.ndarray, r0: int,
                         budget: int = 2_000_000) -> int:
        """End (exclusive) of the largest contiguous ray range starting
        at ``r0`` whose dense blend matrix — rows x the range's max hit
        count — stays within ``budget`` elements (16 MB of float64).
        Always includes at least one ray so progress is guaranteed."""
        n = counts.shape[0]
        width = 0
        r = r0
        while r < n:
            w = int(counts[r])
            if w > width:
                if r > r0 and (r - r0 + 1) * w > budget:
                    break
                width = w
            elif width and (r - r0 + 1) * width > budget:
                break
            r += 1
        return r
